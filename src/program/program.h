#ifndef NMCDR_PROGRAM_PROGRAM_H_
#define NMCDR_PROGRAM_PROGRAM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autograd/op_stream.h"
#include "autograd/tensor.h"
#include "tensor/arena.h"
#include "tensor/backend.h"
#include "util/thread_annotations.h"

namespace nmcdr {

class CsrMatrix;

namespace prog {

/// Whether graph-program fusion is enabled by the environment: NMCDR_FUSION
/// unset or any value other than "0"/"false"/"off" means on. Callers AND
/// this with their own flag (TrainConfig::fusion, --no-fusion).
bool FusionEnvEnabled();

/// Counters describing one compiled program and its replay history.
struct ProgramStats {
  bool compiled = false;        ///< recording produced a usable program
  bool uncompilable = false;    ///< recording saw ops it cannot model
  bool dead = false;            ///< a replay diverged; permanent eager mode
  int instrs = 0;               ///< recorded op count per step
  int fusion_groups = 0;        ///< fused regions found by the compiler
  int fused_ops = 0;            ///< instrs covered by fusion groups
  int spmm_plans = 0;           ///< adjacency ops with static gather plans
  int64_t arena_reserved_bytes = 0;
  int64_t arena_peak_bytes = 0;
  /// Arena reserve misses after compile; steady state must stay at 0.
  int64_t arena_growth_events = 0;
  int64_t replay_steps = 0;     ///< steps replayed through the program
  int64_t fallback_steps = 0;   ///< replays that diverged mid-step
};

/// A per-model training-step program: the op stream recorded from one
/// eager step, compiled once into fusion groups + an arena plan + static
/// SpMM gather plans, then replayed every subsequent step.
///
/// Life cycle (single-threaded; one program serves one Trainer run):
///
///   GraphProgram prog;
///   { GraphProgram::RecordScope rec(&prog); model->TrainStep(...); }
///   // rec's destructor compiled the tape; prog.usable() says whether
///   // replay is worthwhile.
///   while (training) {
///     GraphProgram::ReplayScope rep(&prog);   // no-op when !usable()
///     model->TrainStep(...);
///   }
///
/// Replay intercepts only fusion groups and SpMM; every other op runs its
/// normal eager body while the program verifies the op-kind stream
/// positionally. Any divergence from the recorded stream materializes the
/// in-flight group (keeping numerics exact), finishes the step eagerly,
/// and permanently retires the program — fused mode degrades to eager,
/// never to wrong answers.
///
/// Lifetime: backward closures installed on fused nodes point into this
/// program's group table, so the program must outlive every step tape it
/// replayed — which the scope pattern above guarantees (tapes die inside
/// TrainStep, the program after the loop).
class GraphProgram final : public ag::OpStreamHandler {
 public:
  GraphProgram();
  ~GraphProgram() override;
  GraphProgram(const GraphProgram&) = delete;
  GraphProgram& operator=(const GraphProgram&) = delete;

  /// True once recording compiled successfully.
  bool compiled() const { return compiled_; }
  /// True when replaying is still worthwhile (compiled and not retired).
  bool usable() const { return compiled_ && !dead_; }

  ProgramStats stats() const;

  /// Per-op-kind instruction counts of the recorded step (op name ->
  /// count), for the verifier's program-vs-eager shape audit.
  std::map<std::string, int> OpCounts() const;
  /// Sum of output elements over all recorded instructions.
  int64_t TotalOutputElements() const;
  /// Human-readable fusion-group summary, one group per line.
  std::string DescribeGroups() const;

  /// Publishes program gauges ("program.instrs", "program.fusion_groups",
  /// "program.fused_ops", "program.arena_reserved_bytes",
  /// "program.arena_peak_bytes", "program.replay_steps",
  /// "program.fallback_steps") to the global metrics registry.
  void PublishMetrics() const;

  /// Records the op stream of the step executed inside the scope; the
  /// destructor compiles it. Recording runs fully eager with no arena so
  /// every tensor built during the step owns heap storage.
  class RecordScope {
   public:
    explicit RecordScope(GraphProgram* program);
    ~RecordScope();
    RecordScope(const RecordScope&) = delete;
    RecordScope& operator=(const RecordScope&) = delete;

   private:
    GraphProgram* program_;
    ag::OpStreamScope stream_;
  };

  /// Replays the compiled program for the step executed inside the scope:
  /// installs the bump arena (reset at entry) and the replay handler. A
  /// no-op pass-through when the program is not usable().
  class ReplayScope {
   public:
    explicit ReplayScope(GraphProgram* program);
    ~ReplayScope();
    ReplayScope(const ReplayScope&) = delete;
    ReplayScope& operator=(const ReplayScope&) = delete;

    /// Whether this step replayed the full program without divergence.
    bool replayed() const;

   private:
    GraphProgram* program_;
    bool active_;
    ArenaScope arena_;
    ag::OpStreamScope stream_;
  };

  // OpStreamHandler interface (dispatches on record/replay mode).
  bool OnOpEntry(ag::OpKind kind, const ag::Tensor* const* in, int num_in,
                 const float* scalars, int num_scalars,
                 ag::Tensor* out) override NMCDR_HOT;
  bool OnSpMM(const std::shared_ptr<const CsrMatrix>& a, const ag::Tensor& x,
              ag::Tensor* out) override NMCDR_HOT;
  void OnNodeCreated(const char* op, const ag::Tensor& result,
                     const std::vector<ag::Tensor>& parents) override
      NMCDR_HOT;

 private:
  enum class Mode { kIdle, kRecording, kReplaying };

  /// One recorded op of the step.
  struct Instr {
    ag::OpKind kind = ag::OpKind::kMatMul;
    int rows = 0;
    int cols = 0;
    int num_in = 0;
    bool requires_grad = false;
    bool has_scalar = false;
    float scalar = 0.f;
    /// Record-time identities for consumer analysis (never dereferenced).
    const void* in_nodes[2] = {nullptr, nullptr};
    const void* out_node = nullptr;
    /// Adjacency operand of a kSpMM instr; keys the static gather plan.
    std::shared_ptr<const CsrMatrix> csr;
    /// Compiler output: fusion group covering this instr (-1 = eager) and
    /// this instr's member index within it.
    int group = -1;
    int member = -1;
  };

  /// One instr's role inside an eltwise chain.
  struct ChainMember {
    ag::OpKind kind = ag::OpKind::kAdd;
    /// Which arg carries the chain value (-1 for the leader).
    int chain_arg = -1;
    bool has_side = false;
    bool has_scalar = false;
  };

  struct FusionGroup {
    enum class Kind { kMatMulEpilogue, kEltwiseChain };
    Kind kind = Kind::kEltwiseChain;
    int first_pc = 0;
    int size = 0;
    // MatMul-epilogue shape.
    bool has_bias = false;
    FusedAct act = FusedAct::kNone;
    // Eltwise-chain shape; members[0] is the leader.
    std::vector<ChainMember> members;
  };

  /// Precomputed CSR^T in gather form: backward becomes a per-output-row
  /// gather whose accumulation order matches CsrMatrix::MultiplyTransposed
  /// bit for bit. Held by shared_ptr so backward closures on live tape
  /// nodes capture it without copying (and survive a plan rebuild).
  struct SpMMPlan {
    const void* csr_key = nullptr;
    int cols = 0;
    std::vector<int64_t> t_row_ptr;
    std::vector<int> t_src_row;
    std::vector<float> t_val;
  };

  /// Replay-time state of the fusion group currently in flight.
  struct GroupRun {
    int group = -1;
    int next_member = 0;             ///< members consumed so far
    ag::Tensor placeholder;          ///< last handed-out pending tensor
    std::vector<ag::Tensor> inputs;  ///< external inputs, epilogue order
    std::vector<ag::Tensor> sides;   ///< chain: per-member side (or null)
    std::vector<float> scalars;      ///< chain: per-member scalar

    /// Rewinds for the next group, keeping vector capacity so steady-state
    /// replay never reallocates this bookkeeping.
    void Reset() {
      group = -1;
      next_member = 0;
      placeholder = ag::Tensor();
      inputs.clear();
      sides.clear();
      scalars.clear();
    }
  };

  // Recording (one-time per program; cold by construction).
  bool RecordOpEntry(ag::OpKind kind, const ag::Tensor* const* in, int num_in,
                     const float* scalars, int num_scalars) NMCDR_COLD;
  void RecordNodeCreated(const char* op, const ag::Tensor& result) NMCDR_COLD;
  void MarkUncompilable(const char* why);
  void Compile();
  void CompileGroups();

  // Replay.
  bool ReplayOpEntry(ag::OpKind kind, const ag::Tensor* const* in, int num_in,
                     const float* scalars, int num_scalars, ag::Tensor* out)
      NMCDR_HOT;
  bool ReplaySpMM(const std::shared_ptr<const CsrMatrix>& a,
                  const ag::Tensor& x, ag::Tensor* out) NMCDR_HOT;
  /// Group-leader interception: opens a GroupRun, returns the pending
  /// placeholder tensor.
  void BeginGroup(int group_idx, const ag::Tensor* const* in, int num_in,
                  const float* scalars, int num_scalars, ag::Tensor* out)
      NMCDR_HOT;
  /// Group-member interception. Returns false when the live call does not
  /// match the recorded link (caller falls back to eager for this op).
  bool ContinueGroup(ag::OpKind kind, const ag::Tensor* const* in, int num_in,
                     const float* scalars, int num_scalars, ag::Tensor* out)
      NMCDR_HOT;
  /// Computes the fused value for members [0, upto) of the in-flight
  /// group and turns `target` into a real op node (value + parents +
  /// backward), bitwise-equal to the eager op sequence it replaces.
  void MaterializeGroup(int upto, ag::Tensor* target) NMCDR_HOT;
  /// Divergence: materialize any in-flight group, finish the step eagerly
  /// and retire the program.
  void Die(const char* why);
  void BeginReplay();
  void EndReplay();

  static ag::Tensor MakePlaceholder(int rows, int cols, bool requires_grad);
  /// Fast path: returns the cached plan for the kSpMM instr at `pc` when
  /// the live adjacency matches its key; otherwise (re)builds via
  /// BuildPlan.
  std::shared_ptr<const SpMMPlan> PlanFor(
      int pc, const std::shared_ptr<const CsrMatrix>& a) NMCDR_HOT;
  std::shared_ptr<const SpMMPlan> BuildPlan(
      int idx, const std::shared_ptr<const CsrMatrix>& a) NMCDR_COLD;

  Mode mode_ = Mode::kIdle;
  bool compiled_ = false;
  bool uncompilable_ = false;
  bool dead_ = false;

  std::vector<Instr> instrs_;
  std::vector<FusionGroup> groups_;
  std::vector<std::shared_ptr<SpMMPlan>> spmm_plans_;
  std::map<int, int> spmm_plan_by_pc_;  ///< kSpMM pc -> spmm_plans_ index

  BumpArena arena_;

  // Recording state.
  struct Pending {
    bool valid = false;
    ag::OpKind kind = ag::OpKind::kMatMul;
    int num_in = 0;
    const void* in_nodes[2] = {nullptr, nullptr};
    bool has_scalar = false;
    float scalar = 0.f;
    std::shared_ptr<const CsrMatrix> csr;
  };
  Pending pending_;
  std::vector<ag::Tensor> keepalive_;  ///< pins record-step node addresses
  int64_t recorded_value_bytes_ = 0;

  // Replay state.
  int pc_ = 0;
  bool step_ok_ = false;
  GroupRun run_;
  /// Reusable kernel-step scratch for MaterializeGroup (capacity reserved
  /// at compile time; never grows in steady state).
  std::vector<EltwiseStep> eltwise_scratch_;
  int64_t replay_steps_ = 0;
  int64_t fallback_steps_ = 0;
};

}  // namespace prog
}  // namespace nmcdr

#endif  // NMCDR_PROGRAM_PROGRAM_H_
