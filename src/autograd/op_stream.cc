#include "autograd/op_stream.h"

namespace nmcdr {
namespace ag {
namespace {

thread_local OpStreamHandler* tl_op_stream = nullptr;

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kAdd: return "Add";
    case OpKind::kSub: return "Sub";
    case OpKind::kHadamard: return "Hadamard";
    case OpKind::kAddRowBroadcast: return "AddRowBroadcast";
    case OpKind::kScale: return "Scale";
    case OpKind::kAddScalar: return "AddScalar";
    case OpKind::kOneMinus: return "OneMinus";
    case OpKind::kExp: return "Exp";
    case OpKind::kRelu: return "Relu";
    case OpKind::kSigmoid: return "Sigmoid";
    case OpKind::kTanh: return "Tanh";
    case OpKind::kSoftplus: return "Softplus";
    case OpKind::kSoftmaxRows: return "SoftmaxRows";
    case OpKind::kConcatCols: return "ConcatCols";
    case OpKind::kSliceCols: return "SliceCols";
    case OpKind::kEmbedding: return "Embedding";
    case OpKind::kTranspose: return "Transpose";
    case OpKind::kSegmentMeanRows: return "SegmentMeanRows";
    case OpKind::kSpMM: return "SpMM";
    case OpKind::kSum: return "Sum";
    case OpKind::kMean: return "Mean";
    case OpKind::kSumSquares: return "SumSquares";
    case OpKind::kColMean: return "ColMean";
    case OpKind::kTileRows: return "TileRows";
    case OpKind::kRowDot: return "RowDot";
    case OpKind::kScaleRows: return "ScaleRows";
    case OpKind::kBceWithLogits: return "BceWithLogits";
    case OpKind::kBprLoss: return "BprLoss";
    case OpKind::kNeighborAttention: return "NeighborAttention";
  }
  return "?";
}

OpStreamHandler* ActiveOpStream() { return tl_op_stream; }

OpStreamScope::OpStreamScope(OpStreamHandler* handler)
    : saved_(tl_op_stream), active_(handler != nullptr) {
  if (active_) tl_op_stream = handler;
}

OpStreamScope::~OpStreamScope() {
  if (active_) tl_op_stream = saved_;
}

}  // namespace ag
}  // namespace nmcdr
