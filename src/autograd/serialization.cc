#include "autograd/serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.h"

namespace nmcdr {
namespace ag {
namespace {

constexpr char kMagic[8] = {'N', 'M', 'C', 'D', 'R', 'C', 'K', '1'};

/// Dimension cap for ReadMatrix/ReadIntVector: corrupt streams must fail
/// fast instead of attempting multi-gigabyte allocations.
constexpr uint32_t kMaxDim = 1u << 24;

}  // namespace

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s, uint32_t max_len) {
  uint32_t len = 0;
  if (!ReadU32(in, &len) || len > max_len) return false;
  s->assign(len, '\0');
  in.read(s->data(), len);
  return in.good() || len == 0;
}

void WriteMatrix(std::ostream& out, const Matrix& m) {
  WriteU32(out, static_cast<uint32_t>(m.rows()));
  WriteU32(out, static_cast<uint32_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(sizeof(float) * m.size()));
}

bool ReadMatrix(std::istream& in, Matrix* m) {
  uint32_t rows = 0, cols = 0;
  if (!ReadU32(in, &rows) || !ReadU32(in, &cols)) return false;
  if (rows > kMaxDim || cols > kMaxDim) return false;
  Matrix value(static_cast<int>(rows), static_cast<int>(cols));
  in.read(reinterpret_cast<char*>(value.data()),
          static_cast<std::streamsize>(sizeof(float) * value.size()));
  if (!in.good() && value.size() > 0) return false;
  *m = std::move(value);
  return true;
}

void WriteIntVector(std::ostream& out, const std::vector<int>& v) {
  WriteU32(out, static_cast<uint32_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(sizeof(int32_t) * v.size()));
}

bool ReadIntVector(std::istream& in, std::vector<int>* v) {
  uint32_t count = 0;
  if (!ReadU32(in, &count) || count > kMaxDim) return false;
  v->assign(count, 0);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(sizeof(int32_t) * count));
  return in.good() || count == 0;
}

bool SaveCheckpoint(const ParameterStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    LOG_ERROR << "SaveCheckpoint: cannot open " << path;
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, static_cast<uint32_t>(store.params().size()));
  for (size_t i = 0; i < store.params().size(); ++i) {
    WriteString(out, store.names()[i]);
    WriteMatrix(out, store.params()[i].value());
  }
  if (!out.good()) {
    LOG_ERROR << "SaveCheckpoint: write failure for " << path;
    return false;
  }
  return true;
}

bool LoadCheckpoint(const std::string& path, ParameterStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LOG_ERROR << "LoadCheckpoint: cannot open " << path;
    return false;
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    LOG_ERROR << "LoadCheckpoint: bad magic in " << path;
    return false;
  }
  uint32_t count = 0;
  if (!ReadU32(in, &count) ||
      count != static_cast<uint32_t>(store->params().size())) {
    LOG_ERROR << "LoadCheckpoint: parameter count mismatch in " << path;
    return false;
  }
  // Stage into a snapshot first so a truncated file cannot leave the store
  // half-updated.
  std::vector<Matrix> staged;
  staged.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!ReadString(in, &name)) {
      LOG_ERROR << "LoadCheckpoint: truncated header in " << path;
      return false;
    }
    if (name != store->names()[i]) {
      LOG_ERROR << "LoadCheckpoint: parameter name mismatch at index " << i
                << ": file has '" << name << "', store has '"
                << store->names()[i] << "'";
      return false;
    }
    Matrix value;
    if (!ReadMatrix(in, &value)) {
      LOG_ERROR << "LoadCheckpoint: truncated data in " << path;
      return false;
    }
    if (!value.SameShape(store->params()[i].value())) {
      LOG_ERROR << "LoadCheckpoint: shape mismatch for '" << name << "'";
      return false;
    }
    staged.push_back(std::move(value));
  }
  store->RestoreValues(staged);
  return true;
}

}  // namespace ag
}  // namespace nmcdr
