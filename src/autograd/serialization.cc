#include "autograd/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace nmcdr {
namespace ag {
namespace {

constexpr char kMagic[8] = {'N', 'M', 'C', 'D', 'R', 'C', 'K', '1'};

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

bool SaveCheckpoint(const ParameterStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    LOG_ERROR << "SaveCheckpoint: cannot open " << path;
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, static_cast<uint32_t>(store.params().size()));
  for (size_t i = 0; i < store.params().size(); ++i) {
    const std::string& name = store.names()[i];
    const Matrix& value = store.params()[i].value();
    WriteU32(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WriteU32(out, static_cast<uint32_t>(value.rows()));
    WriteU32(out, static_cast<uint32_t>(value.cols()));
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(sizeof(float) * value.size()));
  }
  if (!out.good()) {
    LOG_ERROR << "SaveCheckpoint: write failure for " << path;
    return false;
  }
  return true;
}

bool LoadCheckpoint(const std::string& path, ParameterStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LOG_ERROR << "LoadCheckpoint: cannot open " << path;
    return false;
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    LOG_ERROR << "LoadCheckpoint: bad magic in " << path;
    return false;
  }
  uint32_t count = 0;
  if (!ReadU32(in, &count) ||
      count != static_cast<uint32_t>(store->params().size())) {
    LOG_ERROR << "LoadCheckpoint: parameter count mismatch in " << path;
    return false;
  }
  // Stage into a snapshot first so a truncated file cannot leave the store
  // half-updated.
  std::vector<Matrix> staged;
  staged.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(in, &name_len) || name_len > 4096) {
      LOG_ERROR << "LoadCheckpoint: bad name length in " << path;
      return false;
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rows = 0, cols = 0;
    if (!in.good() || !ReadU32(in, &rows) || !ReadU32(in, &cols)) {
      LOG_ERROR << "LoadCheckpoint: truncated header in " << path;
      return false;
    }
    if (name != store->names()[i]) {
      LOG_ERROR << "LoadCheckpoint: parameter name mismatch at index " << i
                << ": file has '" << name << "', store has '"
                << store->names()[i] << "'";
      return false;
    }
    const Matrix& current = store->params()[i].value();
    if (static_cast<int>(rows) != current.rows() ||
        static_cast<int>(cols) != current.cols()) {
      LOG_ERROR << "LoadCheckpoint: shape mismatch for '" << name << "'";
      return false;
    }
    Matrix value(static_cast<int>(rows), static_cast<int>(cols));
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(sizeof(float) * value.size()));
    if (!in.good()) {
      LOG_ERROR << "LoadCheckpoint: truncated data in " << path;
      return false;
    }
    staged.push_back(std::move(value));
  }
  store->RestoreValues(staged);
  return true;
}

}  // namespace ag
}  // namespace nmcdr
