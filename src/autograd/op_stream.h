#ifndef NMCDR_AUTOGRAD_OP_STREAM_H_
#define NMCDR_AUTOGRAD_OP_STREAM_H_

#include <memory>
#include <vector>

#include "autograd/tensor.h"

namespace nmcdr {

class CsrMatrix;

namespace ag {

/// Stable identity of each eager op, used by the graph-program layer
/// (src/program) to record and verify the per-step op stream. Order is
/// arbitrary but must not be reused across versions of a recorded program
/// (programs never outlive the process, so no serialization concerns).
enum class OpKind : int {
  kMatMul,
  kAdd,
  kSub,
  kHadamard,
  kAddRowBroadcast,
  kScale,
  kAddScalar,
  kOneMinus,
  kExp,
  kRelu,
  kSigmoid,
  kTanh,
  kSoftplus,
  kSoftmaxRows,
  kConcatCols,
  kSliceCols,
  kEmbedding,
  kTranspose,
  kSegmentMeanRows,
  kSpMM,
  kSum,
  kMean,
  kSumSquares,
  kColMean,
  kTileRows,
  kRowDot,
  kScaleRows,
  kBceWithLogits,
  kBprLoss,
  kNeighborAttention,
};

/// Static-storage name for diagnostics.
const char* OpKindName(OpKind kind);

/// Interception seam between the eager ops (autograd/ops.cc) and the
/// graph-program compiler/replayer (src/program). Autograd sits below
/// src/program in the include order, so the program layer implements this
/// interface and installs it with an OpStreamScope; the ops only know the
/// abstract handler.
///
/// Every op calls OnOpEntry (or OnSpMM) right after its meta branch. A
/// `true` return means the handler produced the result (`*out`) — a fused
/// kernel output or a deferred placeholder — and the eager body is
/// skipped. `false` runs the eager body unchanged, whose MakeOpNode then
/// reports the created node through OnNodeCreated.
class OpStreamHandler {
 public:
  virtual ~OpStreamHandler() = default;

  /// `in` are the op's tensor arguments in signature order; `scalars` are
  /// its float attributes (only Scale / AddScalar carry one). Returns true
  /// when the handler produced `*out` itself.
  virtual bool OnOpEntry(OpKind kind, const Tensor* const* in, int num_in,
                         const float* scalars, int num_scalars,
                         Tensor* out) = 0;

  /// SpMM carries its adjacency operand separately so the handler can key
  /// static gather/scatter plans on the CSR identity.
  virtual bool OnSpMM(const std::shared_ptr<const CsrMatrix>& a,
                      const Tensor& x, Tensor* out) = 0;

  /// Called by MakeOpNode for every eagerly executed op (i.e. whenever
  /// OnOpEntry returned false), with the finished result tensor.
  virtual void OnNodeCreated(const char* op, const Tensor& result,
                             const std::vector<Tensor>& parents) = 0;
};

/// The handler receiving this thread's op stream (nullptr = none, the
/// default: ops run fully eager with zero overhead beyond a TLS read).
OpStreamHandler* ActiveOpStream();

/// RAII scope binding `handler` as this thread's op-stream handler. Scopes
/// nest; the innermost wins. nullptr is a no-op scope.
class OpStreamScope {
 public:
  explicit OpStreamScope(OpStreamHandler* handler);
  ~OpStreamScope();
  OpStreamScope(const OpStreamScope&) = delete;
  OpStreamScope& operator=(const OpStreamScope&) = delete;

 private:
  OpStreamHandler* saved_;
  bool active_;
};

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_OP_STREAM_H_
