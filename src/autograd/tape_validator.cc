#include "autograd/tape_validator.h"

#include <string>
#include <unordered_map>

#include "util/check.h"

namespace nmcdr {
namespace ag {

namespace {

[[noreturn]] void TapeFail(const std::string& what, const char* op) {
  internal_check::CheckFail(
      "autograd/tape_validator.cc", 0, "TAPE_VALIDATION",
      what + " (op: " + (op != nullptr ? op : "leaf") + ")");
}

bool IsConsumedOpNode(const Node* n) {
  // Leaves (parameters, detached values) have no backward closure and are
  // never consumed; only executed op nodes are.
  return n->consumed && n->backward != nullptr;
}

}  // namespace

void ValidateTapeForBackward(Node* root) {
  // Iterative DFS over the full parent graph with gray/black coloring:
  // meeting a gray node again means a parent cycle; meeting a consumed op
  // node means this tape already ran Backward.
  enum : int { kGray = 1, kBlack = 2 };
  std::unordered_map<const Node*, int> color;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;

  if (IsConsumedOpNode(root)) {
    TapeFail("double-backward: loss graph was already consumed by Backward",
             root->op);
  }
  stack.push_back({root, 0});
  color[root] = kGray;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* parent = f.node->parents[f.next_parent++].get();
      auto it = color.find(parent);
      if (it == color.end()) {
        if (IsConsumedOpNode(parent)) {
          TapeFail(
              "double-backward: reachable op node was already consumed by "
              "Backward",
              parent->op);
        }
        color[parent] = kGray;
        stack.push_back({parent, 0});
      } else if (it->second == kGray) {
        TapeFail("cycle detected in autograd parent graph", parent->op);
      }
    } else {
      color[f.node] = kBlack;
      stack.pop_back();
    }
  }
}

void MarkTapeConsumed(const std::vector<Node*>& order) {
  for (Node* n : order) {
    if (n->backward != nullptr) n->consumed = true;
  }
}

void ValidateOpParents(const char* op, const std::vector<Tensor>& parents) {
  for (const Tensor& p : parents) {
    if (p.defined() && IsConsumedOpNode(p.raw())) {
      TapeFail(std::string("use-after-Backward: op '") +
                   (op != nullptr ? op : "?") +
                   "' consumes an intermediate whose tape already ran "
                   "Backward; Detach() it or rebuild the graph",
               p.raw()->op);
    }
  }
}

}  // namespace ag
}  // namespace nmcdr
