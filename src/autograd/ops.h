#ifndef NMCDR_AUTOGRAD_OPS_H_
#define NMCDR_AUTOGRAD_OPS_H_

#include <memory>
#include <vector>

#include "autograd/tensor.h"
#include "tensor/matrix_ops.h"

namespace nmcdr {
namespace ag {

/// Differentiable ops over Tensor handles. Each records the backward
/// closure needed for exact reverse-mode gradients (verified against finite
/// differences in tests/autograd_grad_check_test.cc).

/// [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Elementwise (shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Hadamard(const Tensor& a, const Tensor& b);

/// Adds a [1,c] row vector to every row of a [r,c] matrix (bias add).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

/// Scalar ops.
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
/// 1 - a, used by the gating fusions of Eqs. 10 and 16.
Tensor OneMinus(const Tensor& a);

/// Nonlinearities.
Tensor Exp(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Softplus(const Tensor& a);

/// Row-wise softmax.
Tensor SoftmaxRows(const Tensor& a);

/// Horizontal concatenation (Eq. 20's [u || v]).
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Columns [start, start+len) of `a` -> [rows, len]. Used by the
/// mixture-of-experts gates to address one expert's weight column.
Tensor SliceCols(const Tensor& a, int start, int len);

/// Gathers rows of an embedding table; gradient scatter-adds (Eq. 1 lookup).
Tensor Embedding(const Tensor& table, const std::vector<int>& ids);

/// Matrix transpose.
Tensor Transpose(const Tensor& a);

/// Per-row mean of table rows selected by `lists[i]` -> [lists.size(), d];
/// empty lists produce zero rows. Used for history pooling (MiNet's
/// interest vectors, PTUPCDR's characteristic encoder).
Tensor SegmentMeanRows(
    const Tensor& table,
    std::shared_ptr<const std::vector<std::vector<int>>> lists);

/// Sparse-dense product A*x with fixed (non-differentiable) adjacency A:
/// the message-construction kernels of Eqs. 3, 8, 13. `a` must outlive use
/// of the result's backward, hence shared ownership.
Tensor SpMM(std::shared_ptr<const CsrMatrix> a, const Tensor& x);

/// Full reductions -> [1,1].
Tensor Sum(const Tensor& a);
Tensor Mean(const Tensor& a);
/// Sum of squared entries -> [1,1]; L2 regularizer.
Tensor SumSquares(const Tensor& a);

/// Column mean -> [1,c]: the sampled fully-connected matching-pool
/// aggregation (mean message over a sampled user pool).
Tensor ColMean(const Tensor& a);

/// Tiles a [1,c] row n times -> [n,c].
Tensor TileRows(const Tensor& a, int n);

/// Per-row dot product -> [r,1] (scoring u.v).
Tensor RowDot(const Tensor& a, const Tensor& b);

/// Scales row r of `a` by scalar s[r,0] (broadcast over columns).
Tensor ScaleRows(const Tensor& a, const Tensor& s);

/// Mean binary cross entropy on logits (Eq. 21): labels in {0,1},
/// numerically stable log-sum-exp form. logits must be [B,1].
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& labels);

/// Mean BPR pairwise loss: -log sigmoid(pos - neg); inputs [B,1].
Tensor BprLoss(const Tensor& pos_scores, const Tensor& neg_scores);

/// The intra-node-complementing attention of Eqs. 18-19:
/// for every user row i, alpha_ij = softmax_j(u_i . v_j) over the candidate
/// item list `candidates[i]`, output_i = sum_j alpha_ij * v_j. Users with an
/// empty candidate list get a zero row. Gradients flow into both `users`
/// and `items`.
Tensor NeighborAttention(
    const Tensor& users, const Tensor& items,
    std::shared_ptr<const std::vector<std::vector<int>>> candidates);

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_OPS_H_
