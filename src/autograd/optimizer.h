#ifndef NMCDR_AUTOGRAD_OPTIMIZER_H_
#define NMCDR_AUTOGRAD_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "autograd/nn.h"

namespace nmcdr {
namespace ag {

/// First-order optimizer interface. Step() consumes the gradients currently
/// accumulated in the store's parameters and zeroes them afterwards.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients, then zeroes them.
  virtual void Step() = 0;

  /// Current learning rate.
  float learning_rate() const { return lr_; }
  /// Adjusts the learning rate (for decay schedules).
  void set_learning_rate(float lr) { lr_ = lr; }

 protected:
  Optimizer(ParameterStore* store, float lr) : store_(store), lr_(lr) {}

  ParameterStore* store_;
  float lr_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(ParameterStore* store, float lr, float weight_decay = 0.f);
  void Step() override;

 private:
  float weight_decay_;
};

/// Adam (Kingma & Ba) — the optimizer used for all paper experiments
/// ("The Adam optimizer is used to update all parameters", §III.A.4).
class Adam : public Optimizer {
 public:
  Adam(ParameterStore* store, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.f);
  void Step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// Factory by name ("sgd" | "adam"); checks the name is known.
std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name,
                                         ParameterStore* store, float lr);

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_OPTIMIZER_H_
