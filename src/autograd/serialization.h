#ifndef NMCDR_AUTOGRAD_SERIALIZATION_H_
#define NMCDR_AUTOGRAD_SERIALIZATION_H_

#include <string>

#include "autograd/nn.h"

namespace nmcdr {
namespace ag {

/// Binary checkpoint format for a ParameterStore: a magic header followed
/// by (name, rows, cols, float data) records for every parameter in
/// registration order. Checkpoints are loadable only into a store with the
/// same parameter names and shapes (checked, with a readable error), which
/// catches config drift between save and load.

/// Writes every parameter value to `path`. Returns false (and logs) on
/// I/O failure.
bool SaveCheckpoint(const ParameterStore& store, const std::string& path);

/// Loads parameter values from `path` into `store`. Returns false (and
/// logs the mismatch) if the file is unreadable, truncated, or its
/// parameter names/shapes do not match the store.
bool LoadCheckpoint(const std::string& path, ParameterStore* store);

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_SERIALIZATION_H_
