#ifndef NMCDR_AUTOGRAD_SERIALIZATION_H_
#define NMCDR_AUTOGRAD_SERIALIZATION_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "autograd/nn.h"

namespace nmcdr {
namespace ag {

/// Binary checkpoint format for a ParameterStore: a magic header followed
/// by (name, rows, cols, float data) records for every parameter in
/// registration order. Checkpoints are loadable only into a store with the
/// same parameter names and shapes (checked, with a readable error), which
/// catches config drift between save and load.

/// Writes every parameter value to `path`. Returns false (and logs) on
/// I/O failure.
bool SaveCheckpoint(const ParameterStore& store, const std::string& path);

/// Loads parameter values from `path` into `store`. Returns false (and
/// logs the mismatch) if the file is unreadable, truncated, or its
/// parameter names/shapes do not match the store.
bool LoadCheckpoint(const std::string& path, ParameterStore* store);

/// Low-level record primitives shared by the checkpoint format above and
/// the serving snapshot format (src/serving/model_snapshot): raw
/// little-endian u32 fields, length-prefixed strings, shape-prefixed
/// float payloads, and count-prefixed int32 vectors. Every Read* returns
/// false on a truncated or malformed stream without consuming past the
/// bad record.
void WriteU32(std::ostream& out, uint32_t v);
bool ReadU32(std::istream& in, uint32_t* v);

/// Strings are length-prefixed; ReadString rejects lengths > `max_len`
/// (corrupt streams must not trigger huge allocations).
void WriteString(std::ostream& out, const std::string& s);
bool ReadString(std::istream& in, std::string* s, uint32_t max_len = 4096);

/// Matrices are (rows, cols, row-major float payload).
void WriteMatrix(std::ostream& out, const Matrix& m);
bool ReadMatrix(std::istream& in, Matrix* m);

/// Int vectors are (count, raw int32 payload).
void WriteIntVector(std::ostream& out, const std::vector<int>& v);
bool ReadIntVector(std::istream& in, std::vector<int>* v);

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_SERIALIZATION_H_
