#include "autograd/meta.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace nmcdr {
namespace ag {
namespace {

bool& MetaEnabledFlag() {
  thread_local bool enabled = false;
  return enabled;
}

MetaTraceScope*& ActiveTrace() {
  thread_local MetaTraceScope* active = nullptr;
  return active;
}

std::string ShapeList(const std::vector<MetaShape>& shapes) {
  std::string s;
  for (size_t i = 0; i < shapes.size(); ++i) {
    if (i > 0) s += " x ";
    s += shapes[i].ToString();
  }
  return s;
}

// ---------------------------------------------------------------------------
// Built-in shape rules, one per op in autograd/ops.cc. Each rule documents
// the MetaAttrs convention its op's meta branch uses. Helper combinators
// keep the table readable.
// ---------------------------------------------------------------------------

std::string ExpectArity(const char* op, const std::vector<MetaShape>& in,
                        size_t n) {
  if (in.size() == n) return "";
  return std::string(op) + " expects " + std::to_string(n) + " inputs, got " +
         std::to_string(in.size());
}

/// Unary elementwise: out = in.
ShapeRule Elementwise1(const char* op) {
  return [op](const std::vector<MetaShape>& in, const MetaAttrs&,
              MetaShape* out) -> std::string {
    if (std::string err = ExpectArity(op, in, 1); !err.empty()) return err;
    *out = in[0];
    return "";
  };
}

/// Binary elementwise: shapes must match, out = in[0].
ShapeRule Elementwise2(const char* op) {
  return [op](const std::vector<MetaShape>& in, const MetaAttrs&,
              MetaShape* out) -> std::string {
    if (std::string err = ExpectArity(op, in, 2); !err.empty()) return err;
    if (in[0].rows != in[1].rows || in[0].cols != in[1].cols) {
      return std::string(op) + "(" + ShapeList(in) +
             "): elementwise operands must have identical shapes";
    }
    *out = in[0];
    return "";
  };
}

/// Full reduction to a [1,1] scalar; the input must be non-empty (Mean
/// divides by the element count).
ShapeRule ReduceToScalar(const char* op) {
  return [op](const std::vector<MetaShape>& in, const MetaAttrs&,
              MetaShape* out) -> std::string {
    if (std::string err = ExpectArity(op, in, 1); !err.empty()) return err;
    if (in[0].rows <= 0 || in[0].cols <= 0) {
      return std::string(op) + "(" + in[0].ToString() +
             "): reduction over an empty tensor";
    }
    *out = {1, 1};
    return "";
  };
}

/// [B,1] pairwise-loss operand check.
std::string CheckColumnVector(const char* op, const MetaShape& s) {
  if (s.cols != 1 || s.rows <= 0) {
    return std::string(op) + ": operand " + s.ToString() +
           " must be a non-empty [B,1] column";
  }
  return "";
}

/// Checks gathered ids against a table's row count. attrs carries
/// {count, min_id, max_id}; max_id < 0 encodes "no ids at all".
std::string CheckIdBounds(const char* op, const MetaAttrs& attrs,
                          int table_rows, const char* what) {
  if (attrs.ints.size() < 3) {
    return std::string(op) + ": meta branch passed no id-bound attrs";
  }
  const int64_t min_id = attrs.ints[1];
  const int64_t max_id = attrs.ints[2];
  if (max_id < 0) return "";  // empty id set
  if (min_id < 0 || max_id >= table_rows) {
    return std::string(op) + ": " + what + " id range [" +
           std::to_string(min_id) + ", " + std::to_string(max_id) +
           "] exceeds table rows " + std::to_string(table_rows);
  }
  return "";
}

struct RuleEntry {
  std::unordered_map<std::string, ShapeRule> rules;

  void Add(const char* op, ShapeRule rule) { rules[op] = std::move(rule); }
};

RuleEntry BuildBuiltinRules() {
  RuleEntry r;

  r.Add("MatMul", [](const std::vector<MetaShape>& in, const MetaAttrs&,
                     MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("MatMul", in, 2); !err.empty())
      return err;
    if (in[0].cols != in[1].rows) {
      return "MatMul(" + ShapeList(in) + "): inner dimensions " +
             std::to_string(in[0].cols) + " vs " + std::to_string(in[1].rows) +
             " do not agree";
    }
    *out = {in[0].rows, in[1].cols};
    return "";
  });

  r.Add("Add", Elementwise2("Add"));
  r.Add("Sub", Elementwise2("Sub"));
  r.Add("Hadamard", Elementwise2("Hadamard"));

  r.Add("AddRowBroadcast",
        [](const std::vector<MetaShape>& in, const MetaAttrs&,
           MetaShape* out) -> std::string {
          if (std::string err = ExpectArity("AddRowBroadcast", in, 2);
              !err.empty()) {
            return err;
          }
          if (in[1].rows != 1 || in[1].cols != in[0].cols) {
            return "AddRowBroadcast(" + ShapeList(in) +
                   "): bias must be [1," + std::to_string(in[0].cols) + "]";
          }
          *out = in[0];
          return "";
        });

  r.Add("Scale", Elementwise1("Scale"));
  r.Add("AddScalar", Elementwise1("AddScalar"));
  r.Add("OneMinus", Elementwise1("OneMinus"));
  r.Add("Exp", Elementwise1("Exp"));
  r.Add("Relu", Elementwise1("Relu"));
  r.Add("Sigmoid", Elementwise1("Sigmoid"));
  r.Add("Tanh", Elementwise1("Tanh"));
  r.Add("Softplus", Elementwise1("Softplus"));
  r.Add("SoftmaxRows", Elementwise1("SoftmaxRows"));

  r.Add("ConcatCols", [](const std::vector<MetaShape>& in, const MetaAttrs&,
                         MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("ConcatCols", in, 2); !err.empty())
      return err;
    if (in[0].rows != in[1].rows) {
      return "ConcatCols(" + ShapeList(in) + "): row counts " +
             std::to_string(in[0].rows) + " vs " + std::to_string(in[1].rows) +
             " differ";
    }
    *out = {in[0].rows, in[0].cols + in[1].cols};
    return "";
  });

  // attrs: {start, len}.
  r.Add("SliceCols", [](const std::vector<MetaShape>& in,
                        const MetaAttrs& attrs, MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("SliceCols", in, 1); !err.empty())
      return err;
    if (attrs.ints.size() < 2) return "SliceCols: missing {start,len} attrs";
    const int64_t start = attrs.ints[0];
    const int64_t len = attrs.ints[1];
    if (start < 0 || len <= 0 || start + len > in[0].cols) {
      return "SliceCols(" + in[0].ToString() + ", start=" +
             std::to_string(start) + ", len=" + std::to_string(len) +
             "): slice exceeds " + std::to_string(in[0].cols) + " columns";
    }
    *out = {in[0].rows, static_cast<int>(len)};
    return "";
  });

  // attrs: {num_ids, min_id, max_id}.
  r.Add("Embedding", [](const std::vector<MetaShape>& in,
                        const MetaAttrs& attrs, MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("Embedding", in, 1); !err.empty())
      return err;
    if (std::string err = CheckIdBounds("Embedding", attrs, in[0].rows, "row");
        !err.empty()) {
      return err + " of table " + in[0].ToString();
    }
    *out = {static_cast<int>(attrs.ints[0]), in[0].cols};
    return "";
  });

  r.Add("Transpose", [](const std::vector<MetaShape>& in, const MetaAttrs&,
                        MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("Transpose", in, 1); !err.empty())
      return err;
    *out = {in[0].cols, in[0].rows};
    return "";
  });

  // attrs: {num_lists, min_id, max_id}.
  r.Add("SegmentMeanRows",
        [](const std::vector<MetaShape>& in, const MetaAttrs& attrs,
           MetaShape* out) -> std::string {
          if (std::string err = ExpectArity("SegmentMeanRows", in, 1);
              !err.empty()) {
            return err;
          }
          if (std::string err =
                  CheckIdBounds("SegmentMeanRows", attrs, in[0].rows, "list");
              !err.empty()) {
            return err + " of table " + in[0].ToString();
          }
          *out = {static_cast<int>(attrs.ints[0]), in[0].cols};
          return "";
        });

  // attrs: {adj_rows, adj_cols} of the fixed sparse operand.
  r.Add("SpMM", [](const std::vector<MetaShape>& in, const MetaAttrs& attrs,
                   MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("SpMM", in, 1); !err.empty()) return err;
    if (attrs.ints.size() < 2) return "SpMM: missing {adj_rows,adj_cols} attrs";
    const int64_t a_rows = attrs.ints[0];
    const int64_t a_cols = attrs.ints[1];
    if (a_cols != in[0].rows) {
      return "SpMM(adj [" + std::to_string(a_rows) + "x" +
             std::to_string(a_cols) + "] x " + in[0].ToString() +
             "): adjacency columns " + std::to_string(a_cols) +
             " vs dense rows " + std::to_string(in[0].rows) + " do not agree";
    }
    *out = {static_cast<int>(a_rows), in[0].cols};
    return "";
  });

  r.Add("Sum", ReduceToScalar("Sum"));
  r.Add("Mean", ReduceToScalar("Mean"));
  r.Add("SumSquares", ReduceToScalar("SumSquares"));

  r.Add("ColMean", [](const std::vector<MetaShape>& in, const MetaAttrs&,
                      MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("ColMean", in, 1); !err.empty())
      return err;
    if (in[0].rows <= 0) {
      return "ColMean(" + in[0].ToString() + "): mean over zero rows";
    }
    *out = {1, in[0].cols};
    return "";
  });

  // attrs: {n}.
  r.Add("TileRows", [](const std::vector<MetaShape>& in, const MetaAttrs& attrs,
                       MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("TileRows", in, 1); !err.empty())
      return err;
    if (attrs.ints.empty()) return "TileRows: missing {n} attr";
    if (in[0].rows != 1) {
      return "TileRows(" + in[0].ToString() + "): input must be a [1,c] row";
    }
    if (attrs.ints[0] <= 0) {
      return "TileRows: tile count " + std::to_string(attrs.ints[0]) +
             " must be positive";
    }
    *out = {static_cast<int>(attrs.ints[0]), in[0].cols};
    return "";
  });

  r.Add("RowDot", [](const std::vector<MetaShape>& in, const MetaAttrs&,
                     MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("RowDot", in, 2); !err.empty())
      return err;
    if (in[0].rows != in[1].rows || in[0].cols != in[1].cols) {
      return "RowDot(" + ShapeList(in) + "): operands must match row-for-row";
    }
    *out = {in[0].rows, 1};
    return "";
  });

  r.Add("ScaleRows", [](const std::vector<MetaShape>& in, const MetaAttrs&,
                        MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("ScaleRows", in, 2); !err.empty())
      return err;
    if (in[1].cols != 1 || in[1].rows != in[0].rows) {
      return "ScaleRows(" + ShapeList(in) + "): scales must be [" +
             std::to_string(in[0].rows) + ",1]";
    }
    *out = in[0];
    return "";
  });

  // attrs: {num_labels}.
  r.Add("BceWithLogits",
        [](const std::vector<MetaShape>& in, const MetaAttrs& attrs,
           MetaShape* out) -> std::string {
          if (std::string err = ExpectArity("BceWithLogits", in, 1);
              !err.empty()) {
            return err;
          }
          if (std::string err = CheckColumnVector("BceWithLogits", in[0]);
              !err.empty()) {
            return err;
          }
          if (!attrs.ints.empty() && attrs.ints[0] != in[0].rows) {
            return "BceWithLogits(" + in[0].ToString() + "): " +
                   std::to_string(attrs.ints[0]) + " labels for " +
                   std::to_string(in[0].rows) + " logits";
          }
          *out = {1, 1};
          return "";
        });

  r.Add("BprLoss", [](const std::vector<MetaShape>& in, const MetaAttrs&,
                      MetaShape* out) -> std::string {
    if (std::string err = ExpectArity("BprLoss", in, 2); !err.empty())
      return err;
    if (std::string err = CheckColumnVector("BprLoss", in[0]); !err.empty())
      return err;
    if (in[1].rows != in[0].rows || in[1].cols != in[0].cols) {
      return "BprLoss(" + ShapeList(in) +
             "): positive and negative score columns must match";
    }
    *out = {1, 1};
    return "";
  });

  // attrs: {num_candidate_lists, min_item_id, max_item_id}.
  r.Add("NeighborAttention",
        [](const std::vector<MetaShape>& in, const MetaAttrs& attrs,
           MetaShape* out) -> std::string {
          if (std::string err = ExpectArity("NeighborAttention", in, 2);
              !err.empty()) {
            return err;
          }
          if (in[0].cols != in[1].cols) {
            return "NeighborAttention(" + ShapeList(in) +
                   "): user and item dimensions " +
                   std::to_string(in[0].cols) + " vs " +
                   std::to_string(in[1].cols) + " differ";
          }
          if (!attrs.ints.empty() && attrs.ints[0] != in[0].rows) {
            return "NeighborAttention(" + ShapeList(in) + "): " +
                   std::to_string(attrs.ints[0]) + " candidate lists for " +
                   std::to_string(in[0].rows) + " users";
          }
          if (std::string err = CheckIdBounds("NeighborAttention", attrs,
                                              in[1].rows, "candidate");
              !err.empty()) {
            return err + " of items " + in[1].ToString();
          }
          *out = {in[0].rows, in[0].cols};
          return "";
        });

  return r;
}

std::unordered_map<std::string, ShapeRule>& Registry() {
  // NMCDR_LINT_ALLOW(naked-new): intentional leaky singleton; shape rules
  // registered at static init must outlive every client.
  static RuleEntry* entry = new RuleEntry(BuildBuiltinRules());
  return entry->rules;
}

std::string NodeLabel(const Node* node) {
  std::string label = node->op;
  if (!node->name.empty()) label += " '" + node->name + "'";
  label += "[" + std::to_string(node->value.rows()) + "x" +
           std::to_string(node->value.cols()) + "]";
  return label;
}

}  // namespace

std::string MetaShape::ToString() const {
  return "[" + std::to_string(rows) + "x" + std::to_string(cols) + "]";
}

void RegisterShapeRule(const std::string& op, ShapeRule rule) {
  Registry()[op] = std::move(rule);
}

bool HasShapeRule(const std::string& op) {
  return Registry().find(op) != Registry().end();
}

std::vector<std::string> RegisteredShapeRuleOps() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, rule] : Registry()) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::string ApplyShapeRule(const std::string& op,
                           const std::vector<MetaShape>& in,
                           const MetaAttrs& attrs, MetaShape* out) {
  const auto it = Registry().find(op);
  if (it == Registry().end()) {
    return "no shape rule registered for op '" + op + "'";
  }
  return it->second(in, attrs, out);
}

bool MetaEnabled() { return MetaEnabledFlag(); }

MetaModeGuard::MetaModeGuard() : previous_(MetaEnabledFlag()) {
  MetaEnabledFlag() = true;
}

MetaModeGuard::~MetaModeGuard() { MetaEnabledFlag() = previous_; }

MetaTraceScope::MetaTraceScope() : previous_(ActiveTrace()) {
  ActiveTrace() = this;
}

MetaTraceScope::~MetaTraceScope() { ActiveTrace() = previous_; }

void MetaTraceScope::RecordOp(const char* op, int64_t output_elements) {
  ++op_counts_[op];
  total_output_elements_ += output_elements;
}

void MetaTraceScope::RecordUnregistered(const char* op) {
  unregistered_ops_.push_back(op);
}

std::string ProvenanceChain(const Node* node, int max_depth) {
  std::string chain;
  const Node* cur = node;
  for (int depth = 0; cur != nullptr && depth < max_depth; ++depth) {
    if (depth > 0) chain += " <- ";
    chain += NodeLabel(cur);
    if (cur->parents.size() > 1) {
      chain += " (+" + std::to_string(cur->parents.size() - 1) + " more)";
    }
    cur = cur->parents.empty() ? nullptr : cur->parents[0].get();
  }
  if (cur != nullptr) chain += " <- ...";
  return chain;
}

Tensor MetaOp(const char* op, const std::vector<Tensor>& parents,
              MetaAttrs attrs) {
  std::vector<MetaShape> in;
  in.reserve(parents.size());
  for (const Tensor& p : parents) {
    NMCDR_CHECK(p.defined());
    in.push_back({p.rows(), p.cols()});
  }

  const auto it = Registry().find(op);
  if (it == Registry().end()) {
    throw MetaError(MetaErrorKind::kUnregisteredOp, op,
                    std::string("op '") + op +
                        "' has no registered shape rule (add one via "
                        "ag::RegisterShapeRule or to the builtin table in "
                        "autograd/meta.cc); inputs: " +
                        ShapeList(in));
  }

  MetaShape out_shape;
  const std::string err = it->second(in, attrs, &out_shape);
  if (!err.empty()) {
    std::string message = std::string("shape contradiction at op '") + op +
                          "': " + err;
    for (size_t i = 0; i < parents.size(); ++i) {
      message += "\n  input " + std::to_string(i) + ": " +
                 ProvenanceChain(parents[i].raw());
    }
    throw MetaError(MetaErrorKind::kShapeMismatch, op, std::move(message));
  }

  if (MetaTraceScope* trace = ActiveTrace()) {
    trace->RecordOp(op, static_cast<int64_t>(out_shape.rows) * out_shape.cols);
  }

  // Shape-only output: zero storage of the derived shape, no kernel FLOPs.
  // Parents are recorded unconditionally (provenance must survive
  // NoGradGuard scoring paths); no backward closure is attached — in meta
  // mode Backward() is a structural no-op and the closures' captured
  // values would be meaningless anyway.
  const bool record =
      GradEnabled() &&
      std::any_of(parents.begin(), parents.end(),
                  [](const Tensor& t) { return t.requires_grad(); });
  Tensor out{Matrix(out_shape.rows, out_shape.cols), /*requires_grad=*/record};
  out.node()->op = op;
  out.node()->parents.reserve(parents.size());
  for (const Tensor& p : parents) out.node()->parents.push_back(p.node());
  return out;
}

namespace internal_meta {

void NoteKernelOpInMetaMode(const char* op, const Matrix& out,
                            const std::vector<Tensor>& parents) {
  MetaTraceScope* trace = ActiveTrace();
  if (trace != nullptr) {
    trace->RecordOp(op, static_cast<int64_t>(out.rows()) * out.cols());
  }
  const auto it = Registry().find(op);
  if (it == Registry().end()) {
    if (trace != nullptr) trace->RecordUnregistered(op);
    return;
  }
  // Defense in depth: the kernel already produced a concrete shape; check
  // it against the rule so a stale rule is caught by the same trace.
  std::vector<MetaShape> in;
  in.reserve(parents.size());
  for (const Tensor& p : parents) in.push_back({p.rows(), p.cols()});
  MetaShape predicted;
  const std::string err = it->second(in, {}, &predicted);
  if (err.empty() &&
      (predicted.rows != out.rows() || predicted.cols != out.cols())) {
    throw MetaError(
        MetaErrorKind::kShapeMismatch, op,
        std::string("shape rule for '") + op + "' predicts " +
            predicted.ToString() + " but the kernel produced [" +
            std::to_string(out.rows()) + "x" + std::to_string(out.cols()) +
            "]");
  }
}

}  // namespace internal_meta

}  // namespace ag
}  // namespace nmcdr
