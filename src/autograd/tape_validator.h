#ifndef NMCDR_AUTOGRAD_TAPE_VALIDATOR_H_
#define NMCDR_AUTOGRAD_TAPE_VALIDATOR_H_

#include <vector>

#include "autograd/tensor.h"

namespace nmcdr {
namespace ag {

/// Tape-integrity validation, active when TapeValidationEnabled() (see
/// debug.h). Three failure modes of a reverse-mode tape are caught at the
/// point of misuse instead of corrupting gradients silently:
///
///  - double-backward: Backward() over a graph whose op nodes were already
///    consumed by a previous Backward() would re-accumulate gradients
///    through stale closures;
///  - use-after-Backward: feeding a consumed intermediate into a new op
///    splices a dead subgraph into a fresh tape (its backward closures
///    still point at the old graph's nodes);
///  - parent cycles: a cycle in the parent graph (only constructible by
///    mutating Node::parents through raw handles) would make the
///    topological order — and therefore every gradient — undefined.
///
/// All three abort via NMCDR_CHECK-style diagnostics naming the op.

/// Pre-Backward sweep over the graph rooted at `root`: aborts on a parent
/// cycle or on an already-consumed op node (double-backward).
void ValidateTapeForBackward(Node* root);

/// Post-Backward sweep: marks every op node in `order` (the executed
/// reverse-topological order) consumed. Leaves are never marked, so
/// parameters survive across training steps.
void MarkTapeConsumed(const std::vector<Node*>& order);

/// Per-op check used by MakeOpNode: aborts if any parent is a consumed op
/// node (use-after-Backward).
void ValidateOpParents(const char* op, const std::vector<Tensor>& parents);

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_TAPE_VALIDATOR_H_
