#include "autograd/debug.h"

#include <atomic>
#include <sstream>

#include "util/check.h"

namespace nmcdr {
namespace ag {

namespace {

constexpr bool kDefaultOn =
#ifdef NMCDR_DEBUG_CHECKS
    true;
#else
    false;
#endif

std::atomic<bool>& TapeValidationFlag() {
  static std::atomic<bool> enabled{kDefaultOn};
  return enabled;
}

std::atomic<bool>& NanGuardFlag() {
  static std::atomic<bool> enabled{kDefaultOn};
  return enabled;
}

NanTraceScope*& ActiveScope() {
  thread_local NanTraceScope* scope = nullptr;
  return scope;
}

}  // namespace

bool SetTapeValidation(bool enabled) {
  return TapeValidationFlag().exchange(enabled, std::memory_order_relaxed);
}

bool TapeValidationEnabled() {
  return TapeValidationFlag().load(std::memory_order_relaxed);
}

bool SetNanGuard(bool enabled) {
  return NanGuardFlag().exchange(enabled, std::memory_order_relaxed);
}

bool NanGuardEnabled() {
  return NanGuardFlag().load(std::memory_order_relaxed);
}

std::string NanTraceEvent::ToString() const {
  if (!found) return "no non-finite op output observed";
  std::ostringstream oss;
  oss << op << " produced " << bad_value << " at [" << bad_row << ","
      << bad_col << "] of output [" << rows << "," << cols << "]";
  if (!input_shapes.empty()) oss << "; inputs: " << input_shapes;
  return oss.str();
}

NanTraceScope::NanTraceScope() : previous_(ActiveScope()) {
  ActiveScope() = this;
}

NanTraceScope::~NanTraceScope() { ActiveScope() = previous_; }

/// Out-of-line friend giving the tracer hook write access to the scope.
struct NanTraceAccess {
  static NanTraceEvent* MutableEvent(NanTraceScope* scope) {
    return &scope->event_;
  }
};

namespace internal_debug {

void TraceOpOutput(const char* op, const Matrix& out,
                   const std::vector<Tensor>& parents) {
  NanTraceScope* scope = ActiveScope();
  const bool guard = NanGuardEnabled();
  if (scope == nullptr && !guard) return;
  // Only the first (origin) event per scope is interesting; everything
  // downstream is propagation.
  if (scope != nullptr && scope->found()) return;

  const NonFiniteEntry bad = FindFirstNonFinite(out);
  if (!bad.found) return;

  std::ostringstream inputs;
  bool parents_finite = true;
  for (size_t i = 0; i < parents.size(); ++i) {
    const Matrix& v = parents[i].value();
    const bool finite = AllFinite(v);
    parents_finite = parents_finite && finite;
    if (i > 0) inputs << " ";
    inputs << "[" << v.rows() << "," << v.cols() << "]";
    if (!finite) inputs << "(non-finite)";
  }
  // A non-finite input means this op merely propagated the poison; the
  // origin was (or will be) reported where it first appeared.
  if (!parents_finite) return;

  NanTraceEvent event;
  event.found = true;
  event.op = op != nullptr ? op : "leaf";
  event.rows = out.rows();
  event.cols = out.cols();
  event.bad_row = bad.row;
  event.bad_col = bad.col;
  event.bad_value = bad.value;
  event.input_shapes = inputs.str();

  if (scope != nullptr) {
    *NanTraceAccess::MutableEvent(scope) = std::move(event);
    return;
  }
  internal_check::CheckFail("autograd/debug.cc", 0, "NAN_GUARD",
                            "first non-finite op output: " + event.ToString());
}

}  // namespace internal_debug

}  // namespace ag
}  // namespace nmcdr
