#ifndef NMCDR_AUTOGRAD_DEBUG_H_
#define NMCDR_AUTOGRAD_DEBUG_H_

#include <string>
#include <vector>

#include "autograd/tensor.h"
#include "tensor/finite.h"

namespace nmcdr {
namespace ag {

/// Debug invariant layer for the autograd engine. Two facilities:
///
///  1. Tape validation (see tape_validator.h) — catches use-after-Backward,
///     double-backward, and parent-graph cycles.
///  2. NaN/Inf propagation tracing — pins the *first* op whose output
///     contains a non-finite value while all of its inputs were finite,
///     with full shape provenance, instead of letting the NaN surface
///     twenty ops later in a loss.
///
/// Both are runtime-toggleable so tests can exercise them in any build;
/// compiling with -DNMCDR_DEBUG_CHECKS=1 (cmake -DNMCDR_DEBUG_CHECKS=ON)
/// only flips the defaults to on.

/// Globally enables/disables tape validation. Default: on iff the build
/// defines NMCDR_DEBUG_CHECKS. Returns the previous value.
bool SetTapeValidation(bool enabled);
bool TapeValidationEnabled();

/// Globally enables/disables the hard NaN guard: with it on and no
/// NanTraceScope active on the thread, the first op producing a non-finite
/// output from finite inputs aborts with provenance. Default: on iff the
/// build defines NMCDR_DEBUG_CHECKS. Returns the previous value.
bool SetNanGuard(bool enabled);
bool NanGuardEnabled();

/// What the tracer recorded about the first non-finite-producing op.
struct NanTraceEvent {
  bool found = false;
  /// Name of the op ("Exp", "MatMul", ...; "leaf" for leaf construction).
  std::string op;
  /// Output shape and the first offending entry within it.
  int rows = 0;
  int cols = 0;
  int bad_row = 0;
  int bad_col = 0;
  float bad_value = 0.f;
  /// Shapes (and finiteness) of the op's inputs, e.g. "[4,8] [8,2]".
  std::string input_shapes;

  /// One-line human-readable report, e.g.
  ///   "Exp produced inf at [0,3] of output [4,8]; inputs: [4,8]".
  std::string ToString() const;
};

/// RAII scope that arms non-finite tracing on the current thread: while
/// alive, the first op whose output goes non-finite (with finite inputs) is
/// recorded into the scope instead of aborting, and subsequent events are
/// ignored (only the origin matters). Scopes nest; the innermost records.
class NanTraceScope {
 public:
  NanTraceScope();
  ~NanTraceScope();
  NanTraceScope(const NanTraceScope&) = delete;
  NanTraceScope& operator=(const NanTraceScope&) = delete;

  bool found() const { return event_.found; }
  const NanTraceEvent& event() const { return event_; }

 private:
  friend struct NanTraceAccess;
  NanTraceScope* previous_;
  NanTraceEvent event_;
};

namespace internal_debug {

/// Hook called by MakeOpNode on every op output. Cheap no-op unless a
/// trace scope is active or the NaN guard is on.
void TraceOpOutput(const char* op, const Matrix& out,
                   const std::vector<Tensor>& parents);

}  // namespace internal_debug

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_DEBUG_H_
