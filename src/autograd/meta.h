#ifndef NMCDR_AUTOGRAD_META_H_
#define NMCDR_AUTOGRAD_META_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "autograd/tensor.h"

namespace nmcdr {
namespace ag {

/// Meta-tensor abstract interpretation for the autograd engine.
///
/// Inside a MetaModeGuard, every op in autograd/ops.cc short-circuits its
/// forward kernel: instead of computing values, the op consults a per-op
/// *shape rule* (keyed on the same op-name strings MakeOpNode threads
/// through the tape) that validates the dimension contract of the call and
/// derives the output shape. The output tensor carries a zero-initialized
/// matrix of that shape — shape and storage layout only, no FLOPs — so
/// downstream non-op code (loss-value reads, score extraction) keeps
/// working while the whole graph is checked symbolically.
///
/// This is how the verifier (src/verify) proves, before any training step
/// runs, that a model's entire computation graph is dimension-consistent:
/// a shape contradiction surfaces as a MetaError carrying the op name and
/// a provenance chain through the graph, thrown at graph-construction
/// time — before any Backward() call, and 40 epochs before it would have
/// surfaced numerically.
///
/// In meta mode Backward() is a structural no-op (there are no values to
/// differentiate) and the tape validator / NaN tracer are bypassed.

/// A symbolic tensor shape (this engine is float-only, so shape is the
/// whole abstract value).
struct MetaShape {
  int rows = 0;
  int cols = 0;

  std::string ToString() const;
};

/// Scalar attributes of an op call that shape rules need: the sizes and id
/// bounds of non-tensor arguments, in the op's argument order. Each op's
/// convention is documented next to its rule in meta.cc.
struct MetaAttrs {
  std::vector<int64_t> ints;
};

/// What went wrong during a meta-mode op.
enum class MetaErrorKind {
  kShapeMismatch,    // a shape rule rejected the call's dimension contract
  kUnregisteredOp,   // no shape rule registered under the op's name
};

/// Thrown by MetaOp at graph-construction time. `what()` contains the op
/// name, the violated contract, and a provenance chain naming the ops (and
/// parameter names) that produced each offending input.
class MetaError : public std::exception {
 public:
  MetaError(MetaErrorKind kind, std::string op, std::string message)
      : kind_(kind), op_(std::move(op)), message_(std::move(message)) {}

  const char* what() const noexcept override { return message_.c_str(); }
  MetaErrorKind kind() const { return kind_; }
  const std::string& op() const { return op_; }

 private:
  MetaErrorKind kind_;
  std::string op_;
  std::string message_;
};

/// A shape rule: validates input shapes (+ attrs) and derives the output
/// shape. Returns an empty string on success, else a human-readable
/// description of the violated contract ("inner dimensions 16 vs 8").
using ShapeRule = std::function<std::string(
    const std::vector<MetaShape>& in, const MetaAttrs& attrs, MetaShape* out)>;

/// Registers `rule` under `op` (replaces any previous rule). Rules for
/// every built-in op in ops.cc are registered automatically; call this for
/// new custom ops. `op` must match the name string the op passes to
/// MakeOpNode.
void RegisterShapeRule(const std::string& op, ShapeRule rule);

bool HasShapeRule(const std::string& op);

/// All op names with a registered shape rule, sorted.
std::vector<std::string> RegisteredShapeRuleOps();

/// Runs the shape rule registered for `op` directly (no tensors involved);
/// used by the snapshot shape validator to check frozen weight chains
/// against the same contracts as the training graph. Returns the rule's
/// error string ("" on success).
std::string ApplyShapeRule(const std::string& op,
                           const std::vector<MetaShape>& in,
                           const MetaAttrs& attrs, MetaShape* out);

/// True while a MetaModeGuard is alive on this thread.
bool MetaEnabled();

/// RAII scope that switches this thread's op execution to abstract
/// interpretation (see file comment).
class MetaModeGuard {
 public:
  MetaModeGuard();
  ~MetaModeGuard();
  MetaModeGuard(const MetaModeGuard&) = delete;
  MetaModeGuard& operator=(const MetaModeGuard&) = delete;

 private:
  bool previous_;
};

/// RAII scope that collects per-op statistics from every meta-mode op
/// executed on this thread while it is alive (scopes nest; the innermost
/// records). The verifier audits one model trace per scope.
class MetaTraceScope {
 public:
  MetaTraceScope();
  ~MetaTraceScope();
  MetaTraceScope(const MetaTraceScope&) = delete;
  MetaTraceScope& operator=(const MetaTraceScope&) = delete;

  /// Op name -> number of times it executed in this scope.
  const std::map<std::string, int>& op_counts() const { return op_counts_; }

  /// Sum of output elements over all ops: an activation-footprint
  /// estimate for one pass of the traced graph.
  int64_t total_output_elements() const { return total_output_elements_; }

  /// Ops that reached MakeOpNode in meta mode without a shape rule (a
  /// future op missing its registration; the real kernel already supplied
  /// the shape, so the trace survives and the gap is reported).
  const std::vector<std::string>& unregistered_ops() const {
    return unregistered_ops_;
  }

  /// Internal recording hooks used by MetaOp / MakeOpNode; not for users.
  void RecordOp(const char* op, int64_t output_elements);
  void RecordUnregistered(const char* op);

 private:
  MetaTraceScope* previous_;
  std::map<std::string, int> op_counts_;
  int64_t total_output_elements_ = 0;
  std::vector<std::string> unregistered_ops_;
};

/// Executes `op` abstractly: looks up its shape rule, validates the
/// contract, and returns a tensor of the derived shape whose node records
/// `parents` (always, even under NoGradGuard) so shape errors carry full
/// provenance. Throws MetaError on a missing rule or violated contract.
/// Only meaningful in meta mode; ops.cc calls this from each op's
/// meta branch.
Tensor MetaOp(const char* op, const std::vector<Tensor>& parents,
              MetaAttrs attrs = {});

/// Formats the chain of ops that produced `node`, innermost first:
///   "MatMul[80x8] <- Embedding[80x16] <- leaf 'z.user_emb'[100x16]".
/// Multi-parent ops follow their first parent and annotate "(+N more)".
std::string ProvenanceChain(const Node* node, int max_depth = 12);

namespace internal_meta {

/// Hook for MakeOpNode: records `op` into the active trace scope and
/// cross-checks its shape rule (if any) against the kernel-computed output
/// shape. Reached only when an op without a meta branch runs in meta mode.
void NoteKernelOpInMetaMode(const char* op, const Matrix& out,
                            const std::vector<Tensor>& parents);

}  // namespace internal_meta

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_META_H_
