#ifndef NMCDR_AUTOGRAD_TENSOR_H_
#define NMCDR_AUTOGRAD_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace nmcdr {
namespace ag {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// One vertex of the dynamically built computation graph. Users interact
/// with Tensor handles; Node is the shared state behind them.
class Node {
 public:
  /// Forward value.
  Matrix value;
  /// Accumulated gradient; empty until first accumulation.
  Matrix grad;
  /// Whether gradients should flow into (and out of) this node.
  bool requires_grad = false;
  /// Inputs of the op that produced this node (empty for leaves).
  std::vector<NodePtr> parents;
  /// Propagates this node's grad into its parents. Null for leaves.
  std::function<void(Node*)> backward;
  /// Optional name (parameters set it) for debugging.
  std::string name;
  /// Static-storage name of the op that produced this node ("leaf" for
  /// leaves); used by the NaN tracer and tape validator diagnostics.
  const char* op = "leaf";
  /// Set once Backward has executed this node's closure; the tape
  /// validator (tape_validator.h) uses it to catch double-backward and
  /// use-after-Backward. Never set on leaves.
  bool consumed = false;

  /// Adds `g` into this node's gradient if it requires grad.
  void AccumulateGrad(const Matrix& g);
};

/// Value-semantics handle to a graph node. Copying a Tensor aliases the
/// same node. A default-constructed Tensor is null (defined()==false).
class Tensor {
 public:
  Tensor() = default;

  /// Leaf tensor holding `value`. Pass requires_grad=true for parameters.
  explicit Tensor(Matrix value, bool requires_grad = false);

  /// Wraps an existing node.
  explicit Tensor(NodePtr node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }

  const Matrix& value() const;
  Matrix& mutable_value();

  /// Gradient matrix; zero-shaped until backward has touched this node.
  const Matrix& grad() const;

  bool requires_grad() const;

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Clears the accumulated gradient (keeps shape allocation).
  void ZeroGrad();

  /// Returns a leaf view of this tensor's value that does not propagate
  /// gradients (shares no graph history; the value matrix is copied).
  Tensor Detach() const;

  NodePtr node() const { return node_; }
  Node* raw() const { return node_.get(); }

 private:
  NodePtr node_;
};

/// Runs reverse-mode accumulation from `loss`, which must be a defined
/// 1x1 tensor. Gradients accumulate into every reachable node with
/// requires_grad; call ZeroGrad between steps (optimizers do this).
void Backward(const Tensor& loss);

/// True when ops record history. Toggled by NoGradGuard for evaluation.
bool GradEnabled();

/// RAII scope that disables graph recording (evaluation / scoring paths):
/// ops executed inside produce leaf tensors with no parents.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Internal helper for op implementations: creates a node computing
/// `value` from `parents` with the given backward fn. If grad recording is
/// off or no parent requires grad, the result is a plain leaf. `op` must
/// be a static-storage string naming the op (shown by the NaN tracer,
/// tape-validation diagnostics, and the meta-tensor shape verifier — see
/// autograd/meta.h; under a MetaModeGuard, ops short-circuit to their
/// registered shape rule instead of running kernels).
Tensor MakeOpNode(const char* op, Matrix value,
                  const std::vector<Tensor>& parents,
                  std::function<void(Node*)> backward);

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_TENSOR_H_
