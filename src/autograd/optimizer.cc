#include "autograd/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace nmcdr {
namespace ag {

Sgd::Sgd(ParameterStore* store, float lr, float weight_decay)
    : Optimizer(store, lr), weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (Tensor& p : const_cast<std::vector<Tensor>&>(store_->params())) {
    Matrix& w = p.mutable_value();
    const Matrix& g = p.grad();
    if (g.empty()) continue;
    for (int i = 0; i < w.size(); ++i) {
      const float grad = g.data()[i] + weight_decay_ * w.data()[i];
      w.data()[i] -= lr_ * grad;
    }
  }
  store_->ZeroGrad();
}

Adam::Adam(ParameterStore* store, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(store, lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(store->params().size());
  v_.reserve(store->params().size());
  for (const Tensor& p : store->params()) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  // New parameters must not be registered after optimizer construction.
  NMCDR_CHECK_EQ(m_.size(), store_->params().size());
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < store_->params().size(); ++pi) {
    Tensor p = store_->params()[pi];
    Matrix& w = p.mutable_value();
    const Matrix& g = p.grad();
    if (g.empty()) continue;
    Matrix& m = m_[pi];
    Matrix& v = v_[pi];
    for (int i = 0; i < w.size(); ++i) {
      const float grad = g.data()[i] + weight_decay_ * w.data()[i];
      m.data()[i] = beta1_ * m.data()[i] + (1.f - beta1_) * grad;
      v.data()[i] = beta2_ * v.data()[i] + (1.f - beta2_) * grad * grad;
      const float mhat = m.data()[i] / bc1;
      const float vhat = v.data()[i] / bc2;
      w.data()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  store_->ZeroGrad();
}

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name,
                                         ParameterStore* store, float lr) {
  if (name == "sgd") return std::make_unique<Sgd>(store, lr);
  if (name == "adam") return std::make_unique<Adam>(store, lr);
  NMCDR_CHECK(false);
  return nullptr;
}

}  // namespace ag
}  // namespace nmcdr
