#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "autograd/meta.h"
#include "autograd/op_stream.h"
#include "obs/trace.h"
#include "util/check.h"

namespace nmcdr {
namespace ag {

// Op-stream interception prologue (see autograd/op_stream.h): gives the
// active handler — the graph-program recorder/replayer — a chance to
// produce the result itself (fused kernel or deferred placeholder) before
// the eager body runs. A nullptr handler costs one TLS read.
#define NMCDR_OP_STREAM_ENTRY(kind, ...)                                     \
  if (OpStreamHandler* hdl = ActiveOpStream()) {                             \
    const Tensor* ins[] = {__VA_ARGS__};                                     \
    Tensor strm_out;                                                         \
    if (hdl->OnOpEntry(kind, ins, sizeof(ins) / sizeof(ins[0]), nullptr, 0,  \
                       &strm_out)) {                                         \
      return strm_out;                                                       \
    }                                                                        \
  }

// Same, for ops carrying one float attribute (Scale / AddScalar).
#define NMCDR_OP_STREAM_ENTRY_S(kind, scalar, ...)                          \
  if (OpStreamHandler* hdl = ActiveOpStream()) {                            \
    const Tensor* ins[] = {__VA_ARGS__};                                    \
    const float scl[] = {scalar};                                           \
    Tensor strm_out;                                                        \
    if (hdl->OnOpEntry(kind, ins, sizeof(ins) / sizeof(ins[0]), scl, 1,     \
                       &strm_out)) {                                        \
      return strm_out;                                                      \
    }                                                                       \
  }

namespace {

// Shorthand: the dense kernels live in ::nmcdr.
namespace k = ::nmcdr;

// Every op below opens with a meta branch: under a MetaModeGuard
// (autograd/meta.h) the call is interpreted abstractly — its shape rule
// validates the dimension contract and derives the output shape — and the
// kernel never runs. The branch must come before any eager NMCDR_CHECK so
// contract violations surface as catchable MetaErrors with provenance
// instead of aborting the verifier.

/// {count, min_id, max_id} attrs for gathered-id ops; max_id = -1 when
/// there are no ids.
MetaAttrs IdBoundsAttrs(const std::vector<int>& ids) {
  MetaAttrs attrs;
  attrs.ints = {static_cast<int64_t>(ids.size()), 0, -1};
  if (!ids.empty()) {
    const auto [lo, hi] = std::minmax_element(ids.begin(), ids.end());
    attrs.ints[1] = *lo;
    attrs.ints[2] = *hi;
  }
  return attrs;
}

/// Same for a list-of-lists argument: {num_lists, min_id, max_id}.
MetaAttrs ListBoundsAttrs(const std::vector<std::vector<int>>& lists) {
  MetaAttrs attrs;
  attrs.ints = {static_cast<int64_t>(lists.size()), 0, -1};
  bool any = false;
  for (const std::vector<int>& ids : lists) {
    for (const int id : ids) {
      if (!any) {
        attrs.ints[1] = id;
        attrs.ints[2] = id;
        any = true;
      } else {
        attrs.ints[1] = std::min<int64_t>(attrs.ints[1], id);
        attrs.ints[2] = std::max<int64_t>(attrs.ints[2], id);
      }
    }
  }
  return attrs;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (MetaEnabled()) return MetaOp("MatMul", {a, b});
  NMCDR_OBS_OP_SCOPE("MatMul");
  NMCDR_OP_STREAM_ENTRY(OpKind::kMatMul, &a, &b);
  Matrix out = k::MatMul(a.value(), b.value());
  return MakeOpNode("MatMul", std::move(out), {a, b}, [a, b](Node* self) {
    a.raw()->AccumulateGrad(k::MatMulTransB(self->grad, b.value()));
    b.raw()->AccumulateGrad(k::MatMulTransA(a.value(), self->grad));
  });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  if (MetaEnabled()) return MetaOp("Add", {a, b});
  NMCDR_OBS_OP_SCOPE("Add");
  NMCDR_OP_STREAM_ENTRY(OpKind::kAdd, &a, &b);
  return MakeOpNode("Add", k::Add(a.value(), b.value()), {a, b}, [a, b](Node* self) {
    a.raw()->AccumulateGrad(self->grad);
    b.raw()->AccumulateGrad(self->grad);
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  if (MetaEnabled()) return MetaOp("Sub", {a, b});
  NMCDR_OBS_OP_SCOPE("Sub");
  NMCDR_OP_STREAM_ENTRY(OpKind::kSub, &a, &b);
  return MakeOpNode("Sub", k::Sub(a.value(), b.value()), {a, b}, [a, b](Node* self) {
    a.raw()->AccumulateGrad(self->grad);
    b.raw()->AccumulateGrad(k::Scale(self->grad, -1.f));
  });
}

Tensor Hadamard(const Tensor& a, const Tensor& b) {
  if (MetaEnabled()) return MetaOp("Hadamard", {a, b});
  NMCDR_OBS_OP_SCOPE("Hadamard");
  NMCDR_OP_STREAM_ENTRY(OpKind::kHadamard, &a, &b);
  return MakeOpNode("Hadamard", k::Hadamard(a.value(), b.value()), {a, b},
                    [a, b](Node* self) {
                      a.raw()->AccumulateGrad(k::Hadamard(self->grad, b.value()));
                      b.raw()->AccumulateGrad(k::Hadamard(self->grad, a.value()));
                    });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  if (MetaEnabled()) return MetaOp("AddRowBroadcast", {a, bias});
  NMCDR_OBS_OP_SCOPE("AddRowBroadcast");
  NMCDR_OP_STREAM_ENTRY(OpKind::kAddRowBroadcast, &a, &bias);
  return MakeOpNode("AddRowBroadcast", k::AddRowBroadcast(a.value(), bias.value()), {a, bias},
                    [a, bias](Node* self) {
                      a.raw()->AccumulateGrad(self->grad);
                      bias.raw()->AccumulateGrad(k::ColSum(self->grad));
                    });
}

Tensor Scale(const Tensor& a, float s) {
  if (MetaEnabled()) return MetaOp("Scale", {a});
  NMCDR_OBS_OP_SCOPE("Scale");
  NMCDR_OP_STREAM_ENTRY_S(OpKind::kScale, s, &a);
  return MakeOpNode("Scale", k::Scale(a.value(), s), {a}, [a, s](Node* self) {
    a.raw()->AccumulateGrad(k::Scale(self->grad, s));
  });
}

Tensor AddScalar(const Tensor& a, float s) {
  if (MetaEnabled()) return MetaOp("AddScalar", {a});
  NMCDR_OBS_OP_SCOPE("AddScalar");
  NMCDR_OP_STREAM_ENTRY_S(OpKind::kAddScalar, s, &a);
  return MakeOpNode("AddScalar", k::AddScalar(a.value(), s), {a}, [a](Node* self) {
    a.raw()->AccumulateGrad(self->grad);
  });
}

Tensor OneMinus(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("OneMinus", {a});
  NMCDR_OBS_OP_SCOPE("OneMinus");
  NMCDR_OP_STREAM_ENTRY(OpKind::kOneMinus, &a);
  Matrix out(a.rows(), a.cols());
  for (int i = 0; i < out.size(); ++i) out.data()[i] = 1.f - a.value().data()[i];
  return MakeOpNode("OneMinus", std::move(out), {a}, [a](Node* self) {
    a.raw()->AccumulateGrad(k::Scale(self->grad, -1.f));
  });
}

Tensor Exp(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("Exp", {a});
  NMCDR_OBS_OP_SCOPE("Exp");
  NMCDR_OP_STREAM_ENTRY(OpKind::kExp, &a);
  return MakeOpNode("Exp", k::Exp(a.value()), {a}, [a](Node* self) {
    a.raw()->AccumulateGrad(k::Hadamard(self->grad, self->value));
  });
}

Tensor Relu(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("Relu", {a});
  NMCDR_OBS_OP_SCOPE("Relu");
  NMCDR_OP_STREAM_ENTRY(OpKind::kRelu, &a);
  return MakeOpNode("Relu", k::Relu(a.value()), {a}, [a](Node* self) {
    Matrix da(self->grad.rows(), self->grad.cols());
    for (int i = 0; i < da.size(); ++i) {
      da.data()[i] = self->value.data()[i] > 0.f ? self->grad.data()[i] : 0.f;
    }
    a.raw()->AccumulateGrad(da);
  });
}

Tensor Sigmoid(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("Sigmoid", {a});
  NMCDR_OBS_OP_SCOPE("Sigmoid");
  NMCDR_OP_STREAM_ENTRY(OpKind::kSigmoid, &a);
  return MakeOpNode("Sigmoid", k::Sigmoid(a.value()), {a}, [a](Node* self) {
    Matrix da(self->grad.rows(), self->grad.cols());
    for (int i = 0; i < da.size(); ++i) {
      const float y = self->value.data()[i];
      da.data()[i] = self->grad.data()[i] * y * (1.f - y);
    }
    a.raw()->AccumulateGrad(da);
  });
}

Tensor Tanh(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("Tanh", {a});
  NMCDR_OBS_OP_SCOPE("Tanh");
  NMCDR_OP_STREAM_ENTRY(OpKind::kTanh, &a);
  return MakeOpNode("Tanh", k::Tanh(a.value()), {a}, [a](Node* self) {
    Matrix da(self->grad.rows(), self->grad.cols());
    for (int i = 0; i < da.size(); ++i) {
      const float y = self->value.data()[i];
      da.data()[i] = self->grad.data()[i] * (1.f - y * y);
    }
    a.raw()->AccumulateGrad(da);
  });
}

Tensor Softplus(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("Softplus", {a});
  NMCDR_OBS_OP_SCOPE("Softplus");
  NMCDR_OP_STREAM_ENTRY(OpKind::kSoftplus, &a);
  return MakeOpNode("Softplus", k::Softplus(a.value()), {a}, [a](Node* self) {
    // d softplus(x)/dx = sigmoid(x)
    Matrix sig = k::Sigmoid(a.value());
    a.raw()->AccumulateGrad(k::Hadamard(self->grad, sig));
  });
}

Tensor SoftmaxRows(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("SoftmaxRows", {a});
  NMCDR_OBS_OP_SCOPE("SoftmaxRows");
  NMCDR_OP_STREAM_ENTRY(OpKind::kSoftmaxRows, &a);
  return MakeOpNode("SoftmaxRows", k::SoftmaxRows(a.value()), {a}, [a](Node* self) {
    const Matrix& y = self->value;
    const Matrix& g = self->grad;
    Matrix da(y.rows(), y.cols());
    for (int r = 0; r < y.rows(); ++r) {
      const float* yr = y.row(r);
      const float* gr = g.row(r);
      double dot = 0.0;
      for (int c = 0; c < y.cols(); ++c) dot += static_cast<double>(gr[c]) * yr[c];
      float* dr = da.row(r);
      for (int c = 0; c < y.cols(); ++c) {
        dr[c] = yr[c] * (gr[c] - static_cast<float>(dot));
      }
    }
    a.raw()->AccumulateGrad(da);
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  if (MetaEnabled()) return MetaOp("ConcatCols", {a, b});
  NMCDR_OBS_OP_SCOPE("ConcatCols");
  NMCDR_OP_STREAM_ENTRY(OpKind::kConcatCols, &a, &b);
  return MakeOpNode("ConcatCols",
      k::ConcatCols(a.value(), b.value()), {a, b}, [a, b](Node* self) {
        const int ca = a.cols(), cb = b.cols();
        Matrix da(a.rows(), ca), db(b.rows(), cb);
        for (int r = 0; r < self->grad.rows(); ++r) {
          const float* g = self->grad.row(r);
          float* dar = da.row(r);
          float* dbr = db.row(r);
          for (int c = 0; c < ca; ++c) dar[c] = g[c];
          for (int c = 0; c < cb; ++c) dbr[c] = g[ca + c];
        }
        a.raw()->AccumulateGrad(da);
        b.raw()->AccumulateGrad(db);
      });
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  if (MetaEnabled()) return MetaOp("SliceCols", {a}, {{start, len}});
  NMCDR_OBS_OP_SCOPE("SliceCols");
  NMCDR_OP_STREAM_ENTRY(OpKind::kSliceCols, &a);
  NMCDR_CHECK_GE(start, 0);
  NMCDR_CHECK_GT(len, 0);
  NMCDR_CHECK_LE(start + len, a.cols());
  Matrix out(a.rows(), len);
  for (int r = 0; r < a.rows(); ++r) {
    const float* src = a.value().row(r);
    float* dst = out.row(r);
    for (int c = 0; c < len; ++c) dst[c] = src[start + c];
  }
  return MakeOpNode("SliceCols", std::move(out), {a}, [a, start, len](Node* self) {
    Matrix da(a.rows(), a.cols());
    for (int r = 0; r < a.rows(); ++r) {
      const float* g = self->grad.row(r);
      float* dr = da.row(r);
      for (int c = 0; c < len; ++c) dr[start + c] = g[c];
    }
    a.raw()->AccumulateGrad(da);
  });
}

Tensor Embedding(const Tensor& table, const std::vector<int>& ids) {
  if (MetaEnabled()) return MetaOp("Embedding", {table}, IdBoundsAttrs(ids));
  NMCDR_OBS_OP_SCOPE("Embedding");
  NMCDR_OP_STREAM_ENTRY(OpKind::kEmbedding, &table);
  return MakeOpNode("Embedding", k::GatherRows(table.value(), ids), {table},
                    [table, ids](Node* self) {
                      Matrix dt(table.rows(), table.cols());
                      k::ScatterAddRows(self->grad, ids, &dt);
                      table.raw()->AccumulateGrad(dt);
                    });
}

Tensor Transpose(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("Transpose", {a});
  NMCDR_OBS_OP_SCOPE("Transpose");
  NMCDR_OP_STREAM_ENTRY(OpKind::kTranspose, &a);
  return MakeOpNode("Transpose", k::Transpose(a.value()), {a}, [a](Node* self) {
    a.raw()->AccumulateGrad(k::Transpose(self->grad));
  });
}

Tensor SegmentMeanRows(
    const Tensor& table,
    std::shared_ptr<const std::vector<std::vector<int>>> lists) {
  NMCDR_CHECK(lists != nullptr);
  if (MetaEnabled()) {
    return MetaOp("SegmentMeanRows", {table}, ListBoundsAttrs(*lists));
  }
  NMCDR_OBS_OP_SCOPE("SegmentMeanRows");
  NMCDR_OP_STREAM_ENTRY(OpKind::kSegmentMeanRows, &table);
  const int n = static_cast<int>(lists->size());
  const int d = table.cols();
  Matrix out(n, d);
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& ids = (*lists)[i];
    if (ids.empty()) continue;
    float* o = out.row(i);
    for (int id : ids) {
      NMCDR_CHECK_GE(id, 0);
      NMCDR_CHECK_LT(id, table.rows());
      const float* src = table.value().row(id);
      for (int c = 0; c < d; ++c) o[c] += src[c];
    }
    const float inv = 1.f / static_cast<float>(ids.size());
    for (int c = 0; c < d; ++c) o[c] *= inv;
  }
  return MakeOpNode("SegmentMeanRows", std::move(out), {table}, [table, lists, n, d](Node* self) {
    Matrix dt(table.rows(), d);
    for (int i = 0; i < n; ++i) {
      const std::vector<int>& ids = (*lists)[i];
      if (ids.empty()) continue;
      const float inv = 1.f / static_cast<float>(ids.size());
      const float* g = self->grad.row(i);
      for (int id : ids) {
        float* dr = dt.row(id);
        for (int c = 0; c < d; ++c) dr[c] += g[c] * inv;
      }
    }
    table.raw()->AccumulateGrad(dt);
  });
}

Tensor SpMM(std::shared_ptr<const CsrMatrix> a, const Tensor& x) {
  NMCDR_CHECK(a != nullptr);
  if (MetaEnabled()) return MetaOp("SpMM", {x}, {{a->rows(), a->cols()}});
  NMCDR_OBS_OP_SCOPE("SpMM");
  if (OpStreamHandler* hdl = ActiveOpStream()) {
    Tensor strm_out;
    if (hdl->OnSpMM(a, x, &strm_out)) return strm_out;
  }
  return MakeOpNode("SpMM", a->Multiply(x.value()), {x}, [a, x](Node* self) {
    x.raw()->AccumulateGrad(a->MultiplyTransposed(self->grad));
  });
}

Tensor Sum(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("Sum", {a});
  NMCDR_OBS_OP_SCOPE("Sum");
  NMCDR_OP_STREAM_ENTRY(OpKind::kSum, &a);
  Matrix out(1, 1);
  out.At(0, 0) = a.value().Sum();
  return MakeOpNode("Sum", std::move(out), {a}, [a](Node* self) {
    a.raw()->AccumulateGrad(
        Matrix(a.rows(), a.cols(), self->grad.At(0, 0)));
  });
}

Tensor Mean(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("Mean", {a});
  NMCDR_OBS_OP_SCOPE("Mean");
  NMCDR_OP_STREAM_ENTRY(OpKind::kMean, &a);
  const float inv = 1.f / static_cast<float>(a.value().size());
  Matrix out(1, 1);
  out.At(0, 0) = a.value().Sum() * inv;
  return MakeOpNode("Mean", std::move(out), {a}, [a, inv](Node* self) {
    a.raw()->AccumulateGrad(
        Matrix(a.rows(), a.cols(), self->grad.At(0, 0) * inv));
  });
}

Tensor SumSquares(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("SumSquares", {a});
  NMCDR_OBS_OP_SCOPE("SumSquares");
  NMCDR_OP_STREAM_ENTRY(OpKind::kSumSquares, &a);
  Matrix out(1, 1);
  double acc = 0.0;
  for (int i = 0; i < a.value().size(); ++i) {
    const float v = a.value().data()[i];
    acc += static_cast<double>(v) * v;
  }
  out.At(0, 0) = static_cast<float>(acc);
  return MakeOpNode("SumSquares", std::move(out), {a}, [a](Node* self) {
    a.raw()->AccumulateGrad(k::Scale(a.value(), 2.f * self->grad.At(0, 0)));
  });
}

Tensor ColMean(const Tensor& a) {
  if (MetaEnabled()) return MetaOp("ColMean", {a});
  NMCDR_OBS_OP_SCOPE("ColMean");
  NMCDR_OP_STREAM_ENTRY(OpKind::kColMean, &a);
  NMCDR_CHECK_GT(a.rows(), 0);
  const float inv = 1.f / static_cast<float>(a.rows());
  return MakeOpNode("ColMean", k::ColMean(a.value()), {a}, [a, inv](Node* self) {
    Matrix da(a.rows(), a.cols());
    const float* g = self->grad.row(0);
    for (int r = 0; r < a.rows(); ++r) {
      float* dr = da.row(r);
      for (int c = 0; c < a.cols(); ++c) dr[c] = g[c] * inv;
    }
    a.raw()->AccumulateGrad(da);
  });
}

Tensor TileRows(const Tensor& a, int n) {
  if (MetaEnabled()) return MetaOp("TileRows", {a}, {{n}});
  NMCDR_OBS_OP_SCOPE("TileRows");
  NMCDR_OP_STREAM_ENTRY(OpKind::kTileRows, &a);
  NMCDR_CHECK_EQ(a.rows(), 1);
  NMCDR_CHECK_GT(n, 0);
  Matrix out(n, a.cols());
  for (int r = 0; r < n; ++r) {
    const float* src = a.value().row(0);
    float* dst = out.row(r);
    for (int c = 0; c < a.cols(); ++c) dst[c] = src[c];
  }
  return MakeOpNode("TileRows", std::move(out), {a}, [a](Node* self) {
    a.raw()->AccumulateGrad(k::ColSum(self->grad));
  });
}

Tensor RowDot(const Tensor& a, const Tensor& b) {
  if (MetaEnabled()) return MetaOp("RowDot", {a, b});
  NMCDR_OBS_OP_SCOPE("RowDot");
  NMCDR_OP_STREAM_ENTRY(OpKind::kRowDot, &a, &b);
  return MakeOpNode("RowDot",
      k::RowDot(a.value(), b.value()), {a, b}, [a, b](Node* self) {
        Matrix da(a.rows(), a.cols()), db(b.rows(), b.cols());
        for (int r = 0; r < a.rows(); ++r) {
          const float g = self->grad.At(r, 0);
          const float* ar = a.value().row(r);
          const float* br = b.value().row(r);
          float* dar = da.row(r);
          float* dbr = db.row(r);
          for (int c = 0; c < a.cols(); ++c) {
            dar[c] = g * br[c];
            dbr[c] = g * ar[c];
          }
        }
        a.raw()->AccumulateGrad(da);
        b.raw()->AccumulateGrad(db);
      });
}

Tensor ScaleRows(const Tensor& a, const Tensor& s) {
  if (MetaEnabled()) return MetaOp("ScaleRows", {a, s});
  NMCDR_OBS_OP_SCOPE("ScaleRows");
  NMCDR_OP_STREAM_ENTRY(OpKind::kScaleRows, &a, &s);
  NMCDR_CHECK_EQ(s.cols(), 1);
  NMCDR_CHECK_EQ(s.rows(), a.rows());
  Matrix out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const float sv = s.value().At(r, 0);
    const float* ar = a.value().row(r);
    float* o = out.row(r);
    for (int c = 0; c < a.cols(); ++c) o[c] = sv * ar[c];
  }
  return MakeOpNode("ScaleRows", std::move(out), {a, s}, [a, s](Node* self) {
    Matrix da(a.rows(), a.cols());
    Matrix ds(s.rows(), 1);
    for (int r = 0; r < a.rows(); ++r) {
      const float sv = s.value().At(r, 0);
      const float* g = self->grad.row(r);
      const float* ar = a.value().row(r);
      float* dar = da.row(r);
      double acc = 0.0;
      for (int c = 0; c < a.cols(); ++c) {
        dar[c] = g[c] * sv;
        acc += static_cast<double>(g[c]) * ar[c];
      }
      ds.At(r, 0) = static_cast<float>(acc);
    }
    a.raw()->AccumulateGrad(da);
    s.raw()->AccumulateGrad(ds);
  });
}

Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& labels) {
  if (MetaEnabled()) {
    return MetaOp("BceWithLogits", {logits},
                  {{static_cast<int64_t>(labels.size())}});
  }
  NMCDR_OBS_OP_SCOPE("BceWithLogits");
  NMCDR_OP_STREAM_ENTRY(OpKind::kBceWithLogits, &logits);
  NMCDR_CHECK_EQ(logits.cols(), 1);
  NMCDR_CHECK_EQ(logits.rows(), static_cast<int>(labels.size()));
  const int n = logits.rows();
  NMCDR_CHECK_GT(n, 0);
  // loss_i = max(z,0) - z*y + log(1 + exp(-|z|))   (stable BCE-with-logits)
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const float z = logits.value().At(i, 0);
    const float y = labels[i];
    total += (z > 0.f ? z : 0.f) - z * y + std::log1p(std::exp(-std::fabs(z)));
  }
  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(total / n);
  return MakeOpNode("BceWithLogits", std::move(out), {logits}, [logits, labels, n](Node* self) {
    const float g = self->grad.At(0, 0) / static_cast<float>(n);
    Matrix dz(n, 1);
    Matrix p = k::Sigmoid(logits.value());
    for (int i = 0; i < n; ++i) dz.At(i, 0) = g * (p.At(i, 0) - labels[i]);
    logits.raw()->AccumulateGrad(dz);
  });
}

Tensor BprLoss(const Tensor& pos_scores, const Tensor& neg_scores) {
  if (MetaEnabled()) return MetaOp("BprLoss", {pos_scores, neg_scores});
  NMCDR_OBS_OP_SCOPE("BprLoss");
  NMCDR_OP_STREAM_ENTRY(OpKind::kBprLoss, &pos_scores, &neg_scores);
  NMCDR_CHECK_EQ(pos_scores.cols(), 1);
  NMCDR_CHECK(pos_scores.value().SameShape(neg_scores.value()));
  const int n = pos_scores.rows();
  NMCDR_CHECK_GT(n, 0);
  // loss = mean( softplus(-(pos - neg)) ) = mean( -log sigmoid(pos - neg) )
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const float d = pos_scores.value().At(i, 0) - neg_scores.value().At(i, 0);
    total += (d < 0.f ? -d : 0.f) + std::log1p(std::exp(-std::fabs(d)));
  }
  Matrix out(1, 1);
  out.At(0, 0) = static_cast<float>(total / n);
  return MakeOpNode("BprLoss",
      std::move(out), {pos_scores, neg_scores},
      [pos_scores, neg_scores, n](Node* self) {
        const float g = self->grad.At(0, 0) / static_cast<float>(n);
        Matrix dpos(n, 1), dneg(n, 1);
        for (int i = 0; i < n; ++i) {
          const float d =
              pos_scores.value().At(i, 0) - neg_scores.value().At(i, 0);
          // d/dd softplus(-d) = -sigmoid(-d)
          const float s = d >= 0.f ? std::exp(-d) / (1.f + std::exp(-d))
                                   : 1.f / (1.f + std::exp(d));
          dpos.At(i, 0) = -g * s;
          dneg.At(i, 0) = g * s;
        }
        pos_scores.raw()->AccumulateGrad(dpos);
        neg_scores.raw()->AccumulateGrad(dneg);
      });
}

Tensor NeighborAttention(
    const Tensor& users, const Tensor& items,
    std::shared_ptr<const std::vector<std::vector<int>>> candidates) {
  NMCDR_CHECK(candidates != nullptr);
  if (MetaEnabled()) {
    return MetaOp("NeighborAttention", {users, items},
                  ListBoundsAttrs(*candidates));
  }
  NMCDR_OBS_OP_SCOPE("NeighborAttention");
  NMCDR_OP_STREAM_ENTRY(OpKind::kNeighborAttention, &users, &items);
  NMCDR_CHECK_EQ(static_cast<int>(candidates->size()), users.rows());
  NMCDR_CHECK_EQ(users.cols(), items.cols());
  const int n = users.rows();
  const int d = users.cols();
  const Matrix& u = users.value();
  const Matrix& v = items.value();

  // Forward: per-user softmax attention over candidate items.
  auto alpha = std::make_shared<std::vector<std::vector<float>>>(n);
  Matrix out(n, d);
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& cand = (*candidates)[i];
    if (cand.empty()) continue;
    std::vector<float>& a = (*alpha)[i];
    a.resize(cand.size());
    const float* ur = u.row(i);
    float mx = -1e30f;
    for (size_t j = 0; j < cand.size(); ++j) {
      NMCDR_CHECK_GE(cand[j], 0);
      NMCDR_CHECK_LT(cand[j], v.rows());
      const float* vr = v.row(cand[j]);
      double s = 0.0;
      for (int c = 0; c < d; ++c) s += static_cast<double>(ur[c]) * vr[c];
      a[j] = static_cast<float>(s);
      mx = std::max(mx, a[j]);
    }
    double total = 0.0;
    for (float& s : a) {
      s = std::exp(s - mx);
      total += s;
    }
    const float inv = static_cast<float>(1.0 / total);
    float* o = out.row(i);
    for (size_t j = 0; j < cand.size(); ++j) {
      a[j] *= inv;
      const float* vr = v.row(cand[j]);
      for (int c = 0; c < d; ++c) o[c] += a[j] * vr[c];
    }
  }

  return MakeOpNode("NeighborAttention",
      std::move(out), {users, items},
      [users, items, candidates, alpha, n, d](Node* self) {
        const Matrix& u = users.value();
        const Matrix& v = items.value();
        Matrix du(u.rows(), d), dv(v.rows(), d);
        for (int i = 0; i < n; ++i) {
          const std::vector<int>& cand = (*candidates)[i];
          if (cand.empty()) continue;
          const std::vector<float>& a = (*alpha)[i];
          const float* g = self->grad.row(i);
          const float* ur = u.row(i);
          // gv_j = g . v_j for each candidate; gvbar = sum_j a_j gv_j.
          std::vector<float> gv(cand.size());
          double gvbar = 0.0;
          for (size_t j = 0; j < cand.size(); ++j) {
            const float* vr = v.row(cand[j]);
            double s = 0.0;
            for (int c = 0; c < d; ++c) s += static_cast<double>(g[c]) * vr[c];
            gv[j] = static_cast<float>(s);
            gvbar += a[j] * s;
          }
          float* dur = du.row(i);
          for (size_t j = 0; j < cand.size(); ++j) {
            // dL/ds_ij = a_j (gv_j - gvbar)
            const float ds = a[j] * (gv[j] - static_cast<float>(gvbar));
            const float* vr = v.row(cand[j]);
            float* dvr = dv.row(cand[j]);
            for (int c = 0; c < d; ++c) {
              dur[c] += ds * vr[c];
              // dv gets the score-path term plus the direct convex-mix term.
              dvr[c] += ds * ur[c] + a[j] * g[c];
            }
          }
        }
        users.raw()->AccumulateGrad(du);
        items.raw()->AccumulateGrad(dv);
      });
}

}  // namespace ag
}  // namespace nmcdr
