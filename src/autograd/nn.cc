#include "autograd/nn.h"

#include <cmath>

#include "util/check.h"

namespace nmcdr {
namespace ag {

Tensor ParameterStore::Register(const std::string& name, Matrix init) {
  NMCDR_CHECK(!Contains(name));
  Tensor t(std::move(init), /*requires_grad=*/true);
  t.node()->name = name;
  params_.push_back(t);
  names_.push_back(name);
  return t;
}

Tensor ParameterStore::Get(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return params_[i];
  }
  NMCDR_CHECK(false);
  return Tensor();
}

bool ParameterStore::Contains(const std::string& name) const {
  for (const std::string& n : names_) {
    if (n == name) return true;
  }
  return false;
}

int64_t ParameterStore::ParameterCount() const {
  int64_t total = 0;
  for (const Tensor& p : params_) total += p.value().size();
  return total;
}

void ParameterStore::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

float ParameterStore::ClipGradNorm(float max_norm) {
  double sq = 0.0;
  for (const Tensor& p : params_) {
    const Matrix& g = p.grad();
    for (int i = 0; i < g.size(); ++i) {
      sq += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.f) {
    const float scale = max_norm / norm;
    for (Tensor& p : params_) {
      Matrix& g = p.raw()->grad;
      for (int i = 0; i < g.size(); ++i) g.data()[i] *= scale;
    }
  }
  return norm;
}

std::vector<Matrix> ParameterStore::SnapshotValues() const {
  std::vector<Matrix> snapshot;
  snapshot.reserve(params_.size());
  for (const Tensor& p : params_) snapshot.push_back(p.value());
  return snapshot;
}

void ParameterStore::RestoreValues(const std::vector<Matrix>& snapshot) {
  NMCDR_CHECK_EQ(snapshot.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    NMCDR_CHECK(snapshot[i].SameShape(params_[i].value()));
    params_[i].mutable_value() = snapshot[i];
  }
}

Tensor Activate(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return Relu(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kTanh:
      return Tanh(x);
  }
  NMCDR_CHECK(false);
  return x;
}

Linear::Linear(ParameterStore* store, const std::string& name, int in,
               int out, Rng* rng)
    : w_(store->Register(name + ".W", Matrix::Xavier(in, out, rng))),
      b_(store->Register(name + ".b", Matrix(1, out))) {}

Tensor Linear::Forward(const Tensor& x) const {
  return AddRowBroadcast(MatMul(x, w_), b_);
}

Mlp::Mlp(ParameterStore* store, const std::string& name,
         const std::vector<int>& dims, Rng* rng, Activation hidden_act)
    : hidden_act_(hidden_act) {
  NMCDR_CHECK_GE(dims.size(), 2u);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(store, name + ".l" + std::to_string(i), dims[i],
                         dims[i + 1], rng);
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = Activate(h, hidden_act_);
  }
  return h;
}

}  // namespace ag
}  // namespace nmcdr
