#include "autograd/tensor.h"

#include <algorithm>
#include <unordered_set>

#include "autograd/debug.h"
#include "autograd/meta.h"
#include "autograd/op_stream.h"
#include "autograd/tape_validator.h"
#include "obs/trace.h"
#include "tensor/matrix_ops.h"
#include "util/check.h"

namespace nmcdr {
namespace ag {
namespace {

bool& GradEnabledFlag() {
  thread_local bool enabled = true;
  return enabled;
}

}  // namespace

void Node::AccumulateGrad(const Matrix& g) {
  if (!requires_grad) return;
  NMCDR_CHECK_EQ(g.rows(), value.rows());
  NMCDR_CHECK_EQ(g.cols(), value.cols());
  if (grad.empty()) grad = Matrix(value.rows(), value.cols());
  AxpyInto(g, 1.f, &grad);
}

Tensor::Tensor(Matrix value, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Matrix& Tensor::value() const {
  NMCDR_CHECK(defined());
  return node_->value;
}

Matrix& Tensor::mutable_value() {
  NMCDR_CHECK(defined());
  return node_->value;
}

const Matrix& Tensor::grad() const {
  NMCDR_CHECK(defined());
  return node_->grad;
}

bool Tensor::requires_grad() const {
  NMCDR_CHECK(defined());
  return node_->requires_grad;
}

void Tensor::ZeroGrad() {
  NMCDR_CHECK(defined());
  if (!node_->grad.empty()) node_->grad.SetZero();
}

Tensor Tensor::Detach() const {
  NMCDR_CHECK(defined());
  return Tensor(node_->value, /*requires_grad=*/false);
}

bool GradEnabled() { return GradEnabledFlag(); }

NoGradGuard::NoGradGuard() : previous_(GradEnabledFlag()) {
  GradEnabledFlag() = false;
}

NoGradGuard::~NoGradGuard() { GradEnabledFlag() = previous_; }

Tensor MakeOpNode(const char* op, Matrix value,
                  const std::vector<Tensor>& parents,
                  std::function<void(Node*)> backward) {
  const bool record =
      GradEnabled() &&
      std::any_of(parents.begin(), parents.end(),
                  [](const Tensor& t) { return t.requires_grad(); });
  if (MetaEnabled()) {
    // Abstract interpretation: ops with a meta branch never reach this
    // point; one without (a future op) already ran its kernel, so audit the
    // call against its shape rule, keep provenance, and skip the tape
    // machinery — no backward closure is attached because Backward() is a
    // structural no-op in meta mode.
    internal_meta::NoteKernelOpInMetaMode(op, value, parents);
    Tensor out{Matrix(std::move(value)), /*requires_grad=*/record};
    out.node()->op = op;
    out.node()->parents.reserve(parents.size());
    for (const Tensor& p : parents) out.node()->parents.push_back(p.node());
    return out;
  }
  if (TapeValidationEnabled()) ValidateOpParents(op, parents);
  internal_debug::TraceOpOutput(op, value, parents);
  Tensor out{Matrix(std::move(value)), /*requires_grad=*/record};
  out.node()->op = op;
  if (record) {
    out.node()->parents.reserve(parents.size());
    for (const Tensor& p : parents) out.node()->parents.push_back(p.node());
    out.node()->backward = std::move(backward);
  }
  if (OpStreamHandler* h = ActiveOpStream()) h->OnNodeCreated(op, out, parents);
  return out;
}

void Backward(const Tensor& loss) {
  NMCDR_CHECK(loss.defined());
  NMCDR_CHECK_EQ(loss.rows(), 1);
  NMCDR_CHECK_EQ(loss.cols(), 1);
  // Meta mode carries shapes, not values: the graph's dimension contracts
  // were already verified at construction time, and there is nothing to
  // differentiate.
  if (MetaEnabled()) return;
  NMCDR_CHECK(loss.requires_grad());

  if (TapeValidationEnabled()) ValidateTapeForBackward(loss.raw());

  // Iterative post-order DFS producing a reverse-topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({loss.raw(), 0});
  visited.insert(loss.raw());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* parent = f.node->parents[f.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  loss.raw()->AccumulateGrad(Matrix(1, 1, 1.f));
  // Flag sampled once per Backward: per-node wall time only under the obs
  // profiling switch, so the default tape replay stays clock-free.
  const bool profile = obs::ProfilingEnabled();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (!n->backward || n->grad.empty()) continue;
    if (profile) {
      const int64_t t0 = obs::NowNs();
      n->backward(n);
      obs::RecordBackward(n->op, obs::NowNs() - t0);
    } else {
      n->backward(n);
    }
  }
  MarkTapeConsumed(order);
}

}  // namespace ag
}  // namespace nmcdr
