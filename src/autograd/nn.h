#ifndef NMCDR_AUTOGRAD_NN_H_
#define NMCDR_AUTOGRAD_NN_H_

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tensor.h"
#include "tensor/rng.h"

namespace nmcdr {
namespace ag {

/// Owns every trainable tensor of a model. Parameters are registered once
/// at construction time and iterated by optimizers. Names must be unique
/// (checked) and stable, so experiments are reproducible and parameter
/// counts auditable.
class ParameterStore {
 public:
  /// Registers a parameter initialized with `init`; returns the handle.
  Tensor Register(const std::string& name, Matrix init);

  /// Returns the parameter registered under `name`; checks existence.
  Tensor Get(const std::string& name) const;

  /// True if `name` was registered.
  bool Contains(const std::string& name) const;

  /// All parameters in registration order.
  const std::vector<Tensor>& params() const { return params_; }
  const std::vector<std::string>& names() const { return names_; }

  /// Total scalar count across all parameters.
  int64_t ParameterCount() const;

  /// Zeroes every parameter's gradient.
  void ZeroGrad();

  /// Global gradient-norm clipping; returns the pre-clip norm. No-op
  /// (returns norm) when norm <= max_norm. Guards against the exploding
  /// updates the paper's Eq. 31 stability analysis warns about.
  float ClipGradNorm(float max_norm);

  /// Deep-copies all parameter values (best-checkpoint snapshots).
  std::vector<Matrix> SnapshotValues() const;

  /// Restores values from a snapshot taken on this store.
  void RestoreValues(const std::vector<Matrix>& snapshot);

 private:
  std::vector<Tensor> params_;
  std::vector<std::string> names_;
};

/// Activation applied between MLP layers.
enum class Activation { kNone, kRelu, kSigmoid, kTanh };

/// Applies `act` to `x`.
Tensor Activate(const Tensor& x, Activation act);

/// Affine layer y = x W + b with Xavier-initialized W and zero b.
class Linear {
 public:
  /// Registers `<name>.W` [in,out] and `<name>.b` [1,out] in `store`.
  Linear(ParameterStore* store, const std::string& name, int in, int out,
         Rng* rng);

  /// y = x W + b.
  Tensor Forward(const Tensor& x) const;

  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }
  int in_features() const { return w_.rows(); }
  int out_features() const { return w_.cols(); }

 private:
  Tensor w_;
  Tensor b_;
};

/// Stack of Linear layers with a hidden activation; the final layer is
/// linear (logit output), matching Eq. 20's "stacked MLPs" before the
/// sigmoid.
class Mlp {
 public:
  /// `dims` = {in, h1, ..., out}; must have >= 2 entries.
  Mlp(ParameterStore* store, const std::string& name,
      const std::vector<int>& dims, Rng* rng,
      Activation hidden_act = Activation::kRelu);

  /// Forward pass; returns the final linear output (no output activation).
  Tensor Forward(const Tensor& x) const;

  int in_features() const { return layers_.front().in_features(); }
  int out_features() const { return layers_.back().out_features(); }

  /// Access to individual layers (e.g. for the Eq. 31 stability bound).
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const Linear& layer(int i) const { return layers_[i]; }
  Activation hidden_activation() const { return hidden_act_; }

 private:
  std::vector<Linear> layers_;
  Activation hidden_act_;
};

}  // namespace ag
}  // namespace nmcdr

#endif  // NMCDR_AUTOGRAD_NN_H_
