#ifndef NMCDR_EVAL_METRICS_H_
#define NMCDR_EVAL_METRICS_H_

#include <vector>

namespace nmcdr {

/// Rank of the positive item among the candidate list (1-based):
/// 1 + number of negatives scored strictly higher, with ties broken
/// pessimistically (ties count against the positive, the conservative
/// convention). `positive_score` vs `negative_scores`.
int RankOfPositive(float positive_score,
                   const std::vector<float>& negative_scores);

/// HR@K for a single ranked test case: 1 if rank <= K else 0.
double HitRateAtK(int rank, int k);

/// NDCG@K for a single test case with one relevant item:
/// 1/log2(rank+1) if rank <= K else 0 (the standard leave-one-out form).
double NdcgAtK(int rank, int k);

/// Reciprocal rank 1/rank (no cutoff) — reported alongside HR/NDCG by the
/// CLI for richer comparisons.
double ReciprocalRank(int rank);

/// Aggregated ranking metrics over a set of test users.
struct RankingMetrics {
  double hr = 0.0;    // mean HR@K
  double ndcg = 0.0;  // mean NDCG@K
  double mrr = 0.0;   // mean reciprocal rank
  int num_users = 0;  // evaluated users

  /// Accumulates one test case.
  void Add(int rank, int k);
  /// Averages the accumulated sums; call once after all Add()s.
  void Finalize();
};

}  // namespace nmcdr

#endif  // NMCDR_EVAL_METRICS_H_
