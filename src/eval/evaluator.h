#ifndef NMCDR_EVAL_EVALUATOR_H_
#define NMCDR_EVAL_EVALUATOR_H_

#include <functional>

#include "core/rec_model.h"
#include "eval/metrics.h"
#include "graph/sampling.h"

namespace nmcdr {

/// Which held-out positive to rank.
enum class EvalPhase { kValidation, kTest };

/// Parameters of the §III.A.2 protocol: leave-one-out ranking of the
/// held-out positive against `num_negatives` items the user never
/// interacted with, reporting HR@k and NDCG@k.
struct EvalConfig {
  int k = 10;
  int num_negatives = 199;
  uint64_t seed = 97;
  /// Pairs scored per Score() call (memory/throughput knob).
  int score_batch = 20000;
};

/// Runs the ranking evaluation for one domain. `full_graph` must contain
/// ALL interactions of the domain (train + valid + test) so that sampled
/// negatives are true negatives. The negative sample per user is a pure
/// function of (config.seed, user), so every model ranks against the same
/// candidates — the paper's paired comparison.
RankingMetrics EvaluateRanking(RecModel* model, DomainSide side,
                               const InteractionGraph& full_graph,
                               const DomainSplit& split, EvalPhase phase,
                               const EvalConfig& config);

/// Ranking evaluation split by a user partition (e.g. head vs tail by
/// train degree — the §III.F / CH2 analysis). `group_of(user)` returns a
/// group index in [0, num_groups); each group gets its own RankingMetrics.
std::vector<RankingMetrics> EvaluateRankingGrouped(
    RecModel* model, DomainSide side, const InteractionGraph& full_graph,
    const DomainSplit& split, EvalPhase phase, const EvalConfig& config,
    const std::function<int(int user)>& group_of, int num_groups);

/// Convenience: evaluates both domains at once.
struct ScenarioMetrics {
  RankingMetrics z;
  RankingMetrics zbar;
};

ScenarioMetrics EvaluateScenario(RecModel* model,
                                 const InteractionGraph& full_graph_z,
                                 const InteractionGraph& full_graph_zbar,
                                 const DomainSplit& split_z,
                                 const DomainSplit& split_zbar,
                                 EvalPhase phase, const EvalConfig& config);

}  // namespace nmcdr

#endif  // NMCDR_EVAL_EVALUATOR_H_
