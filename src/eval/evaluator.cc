#include "eval/evaluator.h"

#include <algorithm>

#include "util/check.h"

namespace nmcdr {

RankingMetrics EvaluateRanking(RecModel* model, DomainSide side,
                               const InteractionGraph& full_graph,
                               const DomainSplit& split, EvalPhase phase,
                               const EvalConfig& config) {
  const std::vector<int>& held_out = phase == EvalPhase::kTest
                                         ? split.test_item
                                         : split.valid_item;
  NegativeSampler sampler(&full_graph);

  // Per-user candidate counts: the paper uses 199 negatives; on small item
  // spaces (smoke-scale runs) we clamp to the items actually available so
  // every test user is still ranked. All models share the same per-user
  // candidate sets (pure function of config.seed and the user id).
  struct Case {
    int user;
    int num_negatives;
  };
  std::vector<Case> cases;
  cases.reserve(held_out.size());
  for (size_t u = 0; u < held_out.size(); ++u) {
    if (held_out[u] < 0) continue;
    const int available =
        full_graph.num_items() - full_graph.UserDegree(static_cast<int>(u));
    const int negs = std::min(config.num_negatives, available);
    if (negs < 1) continue;
    cases.push_back({static_cast<int>(u), negs});
  }

  RankingMetrics metrics;
  size_t start = 0;
  while (start < cases.size()) {
    // Assemble a chunk of roughly score_batch pairs.
    std::vector<int> users, items;
    users.reserve(config.score_batch + config.num_negatives + 1);
    items.reserve(config.score_batch + config.num_negatives + 1);
    std::vector<int> chunk_negs;
    size_t end = start;
    int pairs = 0;
    while (end < cases.size() && pairs < config.score_batch) {
      const Case& c = cases[end];
      Rng rng(config.seed * 0x9E3779B9ULL +
              static_cast<uint64_t>(c.user) * 7919ULL);
      users.push_back(c.user);
      items.push_back(held_out[c.user]);
      for (int neg : sampler.SampleNegatives(c.user, c.num_negatives,
                                             /*exclude=*/{}, &rng)) {
        users.push_back(c.user);
        items.push_back(neg);
      }
      chunk_negs.push_back(c.num_negatives);
      pairs += c.num_negatives + 1;
      ++end;
    }
    const std::vector<float> scores = model->Score(side, users, items);
    NMCDR_CHECK_EQ(scores.size(), users.size());
    size_t offset = 0;
    for (int negs : chunk_negs) {
      const float pos = scores[offset];
      std::vector<float> neg_scores(scores.begin() + offset + 1,
                                    scores.begin() + offset + 1 + negs);
      metrics.Add(RankOfPositive(pos, neg_scores), config.k);
      offset += negs + 1;
    }
    start = end;
  }
  metrics.Finalize();
  return metrics;
}

std::vector<RankingMetrics> EvaluateRankingGrouped(
    RecModel* model, DomainSide side, const InteractionGraph& full_graph,
    const DomainSplit& split, EvalPhase phase, const EvalConfig& config,
    const std::function<int(int user)>& group_of, int num_groups) {
  NMCDR_CHECK_GT(num_groups, 0);
  const std::vector<int>& held_out = phase == EvalPhase::kTest
                                         ? split.test_item
                                         : split.valid_item;
  NegativeSampler sampler(&full_graph);
  std::vector<RankingMetrics> groups(num_groups);
  for (size_t u = 0; u < held_out.size(); ++u) {
    if (held_out[u] < 0) continue;
    const int user = static_cast<int>(u);
    const int negs = std::min(config.num_negatives,
                              full_graph.num_items() -
                                  full_graph.UserDegree(user));
    if (negs < 1) continue;
    Rng rng(config.seed * 0x9E3779B9ULL +
            static_cast<uint64_t>(user) * 7919ULL);
    std::vector<int> users(negs + 1, user), items;
    items.reserve(negs + 1);
    items.push_back(held_out[u]);
    for (int neg : sampler.SampleNegatives(user, negs, {}, &rng)) {
      items.push_back(neg);
    }
    const std::vector<float> scores = model->Score(side, users, items);
    const std::vector<float> neg_scores(scores.begin() + 1, scores.end());
    const int group = group_of(user);
    NMCDR_CHECK_GE(group, 0);
    NMCDR_CHECK_LT(group, num_groups);
    groups[group].Add(RankOfPositive(scores[0], neg_scores), config.k);
  }
  for (RankingMetrics& m : groups) m.Finalize();
  return groups;
}

ScenarioMetrics EvaluateScenario(RecModel* model,
                                 const InteractionGraph& full_graph_z,
                                 const InteractionGraph& full_graph_zbar,
                                 const DomainSplit& split_z,
                                 const DomainSplit& split_zbar,
                                 EvalPhase phase, const EvalConfig& config) {
  ScenarioMetrics out;
  out.z = EvaluateRanking(model, DomainSide::kZ, full_graph_z, split_z, phase,
                          config);
  out.zbar = EvaluateRanking(model, DomainSide::kZbar, full_graph_zbar,
                             split_zbar, phase, config);
  return out;
}

}  // namespace nmcdr
