#include "eval/metrics.h"

#include <cmath>

#include "util/check.h"

namespace nmcdr {

int RankOfPositive(float positive_score,
                   const std::vector<float>& negative_scores) {
  int rank = 1;
  for (float s : negative_scores) {
    if (s >= positive_score) ++rank;
  }
  return rank;
}

double HitRateAtK(int rank, int k) {
  NMCDR_CHECK_GE(rank, 1);
  return rank <= k ? 1.0 : 0.0;
}

double NdcgAtK(int rank, int k) {
  NMCDR_CHECK_GE(rank, 1);
  if (rank > k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 1.0);
}

double ReciprocalRank(int rank) {
  NMCDR_CHECK_GE(rank, 1);
  return 1.0 / rank;
}

void RankingMetrics::Add(int rank, int k) {
  hr += HitRateAtK(rank, k);
  ndcg += NdcgAtK(rank, k);
  mrr += ReciprocalRank(rank);
  ++num_users;
}

void RankingMetrics::Finalize() {
  if (num_users == 0) return;
  hr /= num_users;
  ndcg /= num_users;
  mrr /= num_users;
}

}  // namespace nmcdr
