#ifndef NMCDR_ANALYSIS_EMBEDDING_STATS_H_
#define NMCDR_ANALYSIS_EMBEDDING_STATS_H_

#include <vector>

#include "tensor/matrix.h"

namespace nmcdr {

/// Quantifies what Fig. 5 shows qualitatively: how separated the head and
/// tail user embedding distributions are at each model stage. The paper's
/// claim is that intra/inter matching and complementing progressively
/// ALIGN the tail distribution with the head distribution.
struct HeadTailSeparation {
  /// Euclidean distance between the head and tail centroids.
  double centroid_distance = 0.0;
  /// Mean distance of members to their own group centroid.
  double head_spread = 0.0;
  double tail_spread = 0.0;
  /// centroid_distance / mean spread — the dimensionless separation score
  /// reported by the Fig. 5 bench (lower = better aligned).
  double separation_score = 0.0;
  int num_head = 0;
  int num_tail = 0;
};

/// Computes the separation between rows flagged head (true) and tail
/// (false). `is_head.size()` must equal `embeddings.rows()`; both groups
/// must be non-empty.
HeadTailSeparation ComputeHeadTailSeparation(const Matrix& embeddings,
                                             const std::vector<bool>& is_head);

}  // namespace nmcdr

#endif  // NMCDR_ANALYSIS_EMBEDDING_STATS_H_
