#ifndef NMCDR_ANALYSIS_TSNE_H_
#define NMCDR_ANALYSIS_TSNE_H_

#include "tensor/matrix.h"

namespace nmcdr {

/// Exact (O(n^2)) t-SNE for the Fig. 5 embedding visualization. Suitable
/// for the <= a-few-thousand user embeddings produced by the scaled
/// scenarios.
struct TsneConfig {
  int output_dim = 2;
  double perplexity = 30.0;
  int iterations = 400;
  double learning_rate = 100.0;
  double momentum = 0.8;
  /// Early exaggeration factor applied for the first quarter of the run.
  double early_exaggeration = 4.0;
  uint64_t seed = 5;
};

/// Embeds `points` ([n, d]) into config.output_dim dimensions.
Matrix Tsne(const Matrix& points, const TsneConfig& config);

}  // namespace nmcdr

#endif  // NMCDR_ANALYSIS_TSNE_H_
