#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace nmcdr {
namespace {

/// Squared euclidean distance matrix.
std::vector<double> PairwiseSquaredDistances(const Matrix& x) {
  const int n = x.rows();
  std::vector<double> d2(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const float* a = x.row(i);
      const float* b = x.row(j);
      for (int c = 0; c < x.cols(); ++c) {
        const double diff = static_cast<double>(a[c]) - b[c];
        acc += diff * diff;
      }
      d2[static_cast<size_t>(i) * n + j] = acc;
      d2[static_cast<size_t>(j) * n + i] = acc;
    }
  }
  return d2;
}

/// Binary-searches the Gaussian bandwidth of row i to hit the target
/// perplexity; writes the conditional probabilities p_{j|i} into `row`.
void RowConditionals(const std::vector<double>& d2, int n, int i,
                     double perplexity, double* row) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_min = -1e30, beta_max = 1e30;
  for (int it = 0; it < 60; ++it) {
    double sum = 0.0, dot = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) {
        row[j] = 0.0;
        continue;
      }
      const double p = std::exp(-beta * d2[static_cast<size_t>(i) * n + j]);
      row[j] = p;
      sum += p;
      dot += p * d2[static_cast<size_t>(i) * n + j];
    }
    if (sum <= 1e-300) {
      beta /= 2.0;
      continue;
    }
    const double entropy = std::log(sum) + beta * dot / sum;
    if (std::fabs(entropy - target_entropy) < 1e-5) break;
    if (entropy > target_entropy) {
      beta_min = beta;
      beta = beta_max > 1e29 ? beta * 2.0 : 0.5 * (beta + beta_max);
    } else {
      beta_max = beta;
      beta = beta_min < -1e29 ? beta / 2.0 : 0.5 * (beta + beta_min);
    }
  }
  double sum = 0.0;
  for (int j = 0; j < n; ++j) sum += row[j];
  if (sum > 0.0) {
    for (int j = 0; j < n; ++j) row[j] /= sum;
  }
}

}  // namespace

Matrix Tsne(const Matrix& points, const TsneConfig& config) {
  const int n = points.rows();
  NMCDR_CHECK_GT(n, 1);
  const int out_dim = config.output_dim;
  const std::vector<double> d2 = PairwiseSquaredDistances(points);

  // Symmetrized joint probabilities P.
  std::vector<double> p(static_cast<size_t>(n) * n, 0.0);
  {
    std::vector<double> row(n);
    for (int i = 0; i < n; ++i) {
      RowConditionals(d2, n, i, std::min(config.perplexity, (n - 1) / 3.0),
                      row.data());
      for (int j = 0; j < n; ++j) p[static_cast<size_t>(i) * n + j] = row[j];
    }
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double v = (p[static_cast<size_t>(i) * n + j] +
                          p[static_cast<size_t>(j) * n + i]) /
                         (2.0 * n);
        p[static_cast<size_t>(i) * n + j] = std::max(v, 1e-12);
        p[static_cast<size_t>(j) * n + i] = std::max(v, 1e-12);
      }
    }
  }

  Rng rng(config.seed);
  Matrix y = Matrix::Gaussian(n, out_dim, &rng, 0.f, 1e-2f);
  Matrix velocity(n, out_dim);
  std::vector<double> q_num(static_cast<size_t>(n) * n, 0.0);

  for (int iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.iterations / 4 ? config.early_exaggeration : 1.0;
    // Student-t numerators and normalizer.
    double q_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double acc = 0.0;
        for (int c = 0; c < out_dim; ++c) {
          const double diff =
              static_cast<double>(y.At(i, c)) - y.At(j, c);
          acc += diff * diff;
        }
        const double num = 1.0 / (1.0 + acc);
        q_num[static_cast<size_t>(i) * n + j] = num;
        q_num[static_cast<size_t>(j) * n + i] = num;
        q_sum += 2.0 * num;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    for (int i = 0; i < n; ++i) {
      double grad[4] = {0, 0, 0, 0};
      NMCDR_CHECK_LE(out_dim, 4);
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const double num = q_num[static_cast<size_t>(i) * n + j];
        const double q = std::max(num / q_sum, 1e-12);
        const double coeff =
            4.0 * (exaggeration * p[static_cast<size_t>(i) * n + j] - q) *
            num;
        for (int c = 0; c < out_dim; ++c) {
          grad[c] += coeff * (static_cast<double>(y.At(i, c)) - y.At(j, c));
        }
      }
      for (int c = 0; c < out_dim; ++c) {
        velocity.At(i, c) = static_cast<float>(
            config.momentum * velocity.At(i, c) -
            config.learning_rate * grad[c]);
      }
    }
    for (int i = 0; i < n; ++i) {
      for (int c = 0; c < out_dim; ++c) y.At(i, c) += velocity.At(i, c);
    }
  }
  return y;
}

}  // namespace nmcdr
