#include "analysis/embedding_stats.h"

#include <cmath>

#include "util/check.h"

namespace nmcdr {
namespace {

double Distance(const std::vector<double>& a, const float* b, int d) {
  double acc = 0.0;
  for (int c = 0; c < d; ++c) {
    const double diff = a[c] - b[c];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

}  // namespace

HeadTailSeparation ComputeHeadTailSeparation(
    const Matrix& embeddings, const std::vector<bool>& is_head) {
  NMCDR_CHECK_EQ(static_cast<int>(is_head.size()), embeddings.rows());
  const int d = embeddings.cols();
  std::vector<double> head_centroid(d, 0.0), tail_centroid(d, 0.0);
  HeadTailSeparation out;
  for (int i = 0; i < embeddings.rows(); ++i) {
    std::vector<double>& centroid = is_head[i] ? head_centroid : tail_centroid;
    (is_head[i] ? out.num_head : out.num_tail)++;
    const float* row = embeddings.row(i);
    for (int c = 0; c < d; ++c) centroid[c] += row[c];
  }
  NMCDR_CHECK_GT(out.num_head, 0);
  NMCDR_CHECK_GT(out.num_tail, 0);
  for (int c = 0; c < d; ++c) {
    head_centroid[c] /= out.num_head;
    tail_centroid[c] /= out.num_tail;
  }
  double centroid_diff = 0.0;
  for (int c = 0; c < d; ++c) {
    const double diff = head_centroid[c] - tail_centroid[c];
    centroid_diff += diff * diff;
  }
  out.centroid_distance = std::sqrt(centroid_diff);
  for (int i = 0; i < embeddings.rows(); ++i) {
    const double dist = Distance(is_head[i] ? head_centroid : tail_centroid,
                                 embeddings.row(i), d);
    (is_head[i] ? out.head_spread : out.tail_spread) += dist;
  }
  out.head_spread /= out.num_head;
  out.tail_spread /= out.num_tail;
  const double mean_spread = 0.5 * (out.head_spread + out.tail_spread);
  out.separation_score =
      mean_spread > 1e-12 ? out.centroid_distance / mean_spread : 0.0;
  return out;
}

}  // namespace nmcdr
