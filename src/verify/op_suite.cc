#include "verify/op_suite.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <utility>

#include "tensor/rng.h"

namespace nmcdr {
namespace verify {
namespace {

using ag::Tensor;

Matrix Rand(int r, int c, uint64_t seed, float scale = 1.f) {
  Rng rng(seed);
  return Matrix::Gaussian(r, c, &rng, 0.f, scale);
}

std::vector<OpCase> BuildSuite() {
  std::vector<OpCase> suite;
  const auto add = [&suite](OpCase c) { suite.push_back(std::move(c)); };

  add({"MatMul",
       {"MatMul"},
       {Rand(3, 4, 1), Rand(4, 2, 2)},
       [](const auto& in) { return MatMul(in[0], in[1]); }});

  add({"AddSubHadamard",
       {"Add", "Sub", "Hadamard"},
       {Rand(3, 3, 1), Rand(3, 3, 2)},
       [](const auto& in) {
         return Hadamard(Sub(Add(in[0], in[1]), in[1]), in[1]);
       }});

  add({"AddRowBroadcast",
       {"AddRowBroadcast"},
       {Rand(4, 3, 1), Rand(1, 3, 2)},
       [](const auto& in) { return AddRowBroadcast(in[0], in[1]); }});

  add({"ScaleAddScalarOneMinus",
       {"Scale", "AddScalar", "OneMinus"},
       {Rand(2, 3, 1)},
       [](const auto& in) {
         return OneMinus(AddScalar(Scale(in[0], -1.7f), 0.4f));
       }});

  // Exp on inputs bounded away from overflow.
  add({"Exp",
       {"Exp"},
       {Rand(2, 3, 11, 0.5f)},
       [](const auto& in) { return Exp(in[0]); }});

  {
    // Shift inputs away from the ReLU kink so finite differences are valid.
    Matrix m = Rand(3, 3, 5);
    for (int i = 0; i < m.size(); ++i) {
      if (std::fabs(m.data()[i]) < 0.1f) m.data()[i] = 0.5f;
    }
    add({"ReluAwayFromKink",
         {"Relu"},
         {m},
         [](const auto& in) { return Relu(in[0]); }});
  }

  add({"SigmoidTanhSoftplus",
       {"Sigmoid", "Tanh", "Softplus"},
       {Rand(2, 4, 7)},
       [](const auto& in) { return Softplus(Tanh(Sigmoid(in[0]))); }});

  add({"SoftmaxRows",
       {"SoftmaxRows"},
       {Rand(3, 5, 9)},
       [](const auto& in) { return SoftmaxRows(in[0]); }});

  add({"ConcatCols",
       {"ConcatCols"},
       {Rand(3, 2, 1), Rand(3, 4, 2)},
       [](const auto& in) { return ConcatCols(in[0], in[1]); }});

  add({"SliceCols",
       {"SliceCols"},
       {Rand(3, 6, 1)},
       [](const auto& in) { return SliceCols(in[0], 2, 3); }});

  add({"EmbeddingWithRepeatedIds",
       {"Embedding"},
       {Rand(5, 3, 1)},
       [](const auto& in) { return Embedding(in[0], {4, 0, 4, 2}); }});

  add({"Transpose",
       {"Transpose"},
       {Rand(3, 4, 2)},
       [](const auto& in) { return MatMul(Transpose(in[0]), in[0]); }});

  {
    auto lists = std::make_shared<std::vector<std::vector<int>>>(
        std::vector<std::vector<int>>{{0, 2}, {}, {1, 1, 3}});
    add({"SegmentMeanRows",
         {"SegmentMeanRows"},
         {Rand(4, 3, 3)},
         [lists](const auto& in) { return SegmentMeanRows(in[0], lists); }});
  }

  {
    auto csr = std::make_shared<CsrMatrix>(
        3, 4,
        std::vector<std::vector<std::pair<int, float>>>{
            {{0, 0.5f}, {2, 0.5f}}, {}, {{1, 1.f}, {3, -2.f}}});
    add({"SpMM",
         {"SpMM"},
         {Rand(4, 3, 4)},
         [csr](const auto& in) { return SpMM(csr, in[0]); }});
  }

  add({"Reductions",
       {"Sum", "Mean", "SumSquares"},
       {Rand(3, 3, 5)},
       [](const auto& in) {
         return ConcatCols(Sum(in[0]),
                           ConcatCols(Mean(in[0]), SumSquares(in[0])));
       }});

  add({"ColMeanAndTileRows",
       {"ColMean", "TileRows"},
       {Rand(4, 3, 6)},
       [](const auto& in) { return TileRows(ColMean(in[0]), 5); }});

  add({"RowDot",
       {"RowDot"},
       {Rand(4, 3, 1), Rand(4, 3, 2)},
       [](const auto& in) { return RowDot(in[0], in[1]); }});

  add({"ScaleRows",
       {"ScaleRows"},
       {Rand(4, 3, 1), Rand(4, 1, 2)},
       [](const auto& in) { return ScaleRows(in[0], in[1]); }});

  {
    const std::vector<float> labels = {1.f, 0.f, 1.f, 0.f};
    add({"BceWithLogits",
         {"BceWithLogits"},
         {Rand(4, 1, 8)},
         [labels](const auto& in) { return BceWithLogits(in[0], labels); }});
  }

  add({"BprLoss",
       {"BprLoss"},
       {Rand(4, 1, 1), Rand(4, 1, 2)},
       [](const auto& in) { return BprLoss(in[0], in[1]); }});

  {
    auto cand = std::make_shared<std::vector<std::vector<int>>>(
        std::vector<std::vector<int>>{{0, 1, 3}, {}, {2, 4}});
    add({"NeighborAttention",
         {"NeighborAttention"},
         {Rand(3, 4, 1, 0.5f), Rand(5, 4, 2, 0.5f)},
         [cand](const auto& in) {
           return NeighborAttention(in[0], in[1], cand);
         },
         /*eps=*/5e-3f, /*tol=*/1.5e-2f});
  }

  // The Eq. 10/16 gating pattern end-to-end (composition regression).
  add({"ComposedGatingBlock",
       {"MatMul", "Add", "Hadamard", "OneMinus", "Sigmoid", "Tanh"},
       {Rand(3, 4, 1, 0.5f), Rand(3, 4, 2, 0.5f), Rand(4, 4, 3, 0.5f),
        Rand(4, 4, 4, 0.5f)},
       [](const auto& in) {
         Tensor gate =
             Sigmoid(Add(MatMul(in[0], in[2]), MatMul(in[1], in[3])));
         return Tanh(
             Add(Hadamard(OneMinus(gate), in[0]), Hadamard(gate, in[1])));
       }});

  return suite;
}

/// Rebuilds the graph from scratch and returns the weighted-sum loss value.
float LossValue(const std::vector<Matrix>& values, const OpCase& c,
                const Matrix& mix_weights) {
  std::vector<Tensor> inputs;
  inputs.reserve(values.size());
  for (const Matrix& v : values) inputs.emplace_back(v, /*requires_grad=*/true);
  Tensor out = c.build(inputs);
  Tensor loss = Sum(Hadamard(out, Tensor(mix_weights)));
  return loss.value().At(0, 0);
}

}  // namespace

const std::vector<OpCase>& OpSuite() {
  static const std::vector<OpCase> suite = BuildSuite();
  return suite;
}

std::vector<std::string> GradCheckedOps() {
  std::set<std::string> ops;
  for (const OpCase& c : OpSuite()) ops.insert(c.covers.begin(), c.covers.end());
  return {ops.begin(), ops.end()};
}

std::vector<GradCheckIssue> RunGradCheck(const OpCase& c) {
  std::vector<GradCheckIssue> issues;
  const std::vector<Matrix>& values = c.inputs;

  // Build once to learn the output shape, then fix the mixing weights that
  // reduce the op's output to a scalar loss.
  std::vector<Tensor> probe;
  probe.reserve(values.size());
  for (const Matrix& v : values) probe.emplace_back(v, true);
  Tensor probe_out = c.build(probe);
  Rng rng(99);
  Matrix mix = Matrix::Gaussian(probe_out.rows(), probe_out.cols(), &rng);

  // Analytic gradients.
  std::vector<Tensor> inputs;
  inputs.reserve(values.size());
  for (const Matrix& v : values) inputs.emplace_back(v, true);
  Tensor out = c.build(inputs);
  Tensor loss = Sum(Hadamard(out, Tensor(mix)));
  ag::Backward(loss);

  for (size_t i = 0; i < values.size(); ++i) {
    const Matrix& grad = inputs[i].grad();
    if (grad.empty()) {
      // NMCDR_LINT_ALLOW(reserve-before-growth): issues are the exceptional
      // path; a passing gradient check allocates nothing here.
      issues.push_back({c.name, "input " + std::to_string(i) +
                                    " received no gradient from Backward()"});
      continue;
    }
    for (int e = 0; e < values[i].size(); ++e) {
      std::vector<Matrix> plus = values, minus = values;
      plus[i].data()[e] += c.eps;
      minus[i].data()[e] -= c.eps;
      const float numeric =
          (LossValue(plus, c, mix) - LossValue(minus, c, mix)) / (2.f * c.eps);
      const float analytic = grad.data()[e];
      const float scale =
          std::max({1.f, std::fabs(numeric), std::fabs(analytic)});
      if (std::fabs(analytic / scale - numeric / scale) > c.tol) {
        // NMCDR_LINT_ALLOW(reserve-before-growth): exceptional path only.
        issues.push_back(
            {c.name, "input " + std::to_string(i) + " entry " +
                         std::to_string(e) + ": analytic " +
                         std::to_string(analytic) + " vs numeric " +
                         std::to_string(numeric)});
      }
    }
  }
  return issues;
}

std::vector<GradCheckIssue> RunAllGradChecks() {
  std::vector<GradCheckIssue> issues;
  for (const OpCase& c : OpSuite()) {
    std::vector<GradCheckIssue> i = RunGradCheck(c);
    issues.insert(issues.end(), i.begin(), i.end());
  }
  return issues;
}

std::vector<GradCheckIssue> RunAllGradChecks(const KernelBackend* backend) {
  BackendGuard guard(backend);
  return RunAllGradChecks();
}

}  // namespace verify
}  // namespace nmcdr
