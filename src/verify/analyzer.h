#ifndef NMCDR_VERIFY_ANALYZER_H_
#define NMCDR_VERIFY_ANALYZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/presets.h"
#include "serving/model_snapshot.h"
#include "train/experiment.h"

namespace nmcdr {
namespace verify {

/// Semantic tensor-program verifier: symbolically executes the full
/// computation graph of every registered model — one TrainStep and one
/// Score call per (model, scenario) — on meta tensors (shape only, no
/// data, no FLOPs; autograd/meta.h) and reports, before any real training
/// step runs:
///
///  - shape contradictions, with the full op-provenance chain of the
///    offending inputs;
///  - ops reaching the tape without a registered shape rule;
///  - ops used by a model whose backward pass has no finite-difference
///    coverage in the op suite (verify/op_suite.h);
///  - per-model parameter counts and an activation-footprint estimate.
///
/// The same shape rules also validate frozen serving snapshots
/// (VerifySnapshotShapes), so a stale NMCDRSV1 file whose head no longer
/// matches its tables is rejected with a precise dimension diff.

/// One verifier finding.
struct Finding {
  enum class Kind {
    kShapeContradiction,  // a shape rule rejected an op call
    kUnregisteredOp,      // an op ran with no registered shape rule
    kMissingBackward,     // op used by a model but absent from the op suite
    kMissingShapeRule,    // op covered by the suite but with no shape rule
    kModelFailure,        // model factory / audit infrastructure failed
    kSnapshotShape,       // frozen snapshot violates the head shape chain
    kProgramMismatch,     // compiled graph program diverged from eager
  };

  Kind kind = Kind::kShapeContradiction;
  std::string model;     // empty for model-independent findings
  std::string scenario;  // empty for scenario-independent findings
  std::string op;        // offending op name when applicable
  std::string message;

  std::string ToString() const;
};

/// Audit of one (model, scenario) pair.
struct ModelAudit {
  std::string model;
  std::string scenario;
  int64_t parameter_count = 0;
  /// Sum of op-output elements across the traced TrainStep + Score graphs:
  /// an activation-footprint estimate (x4 bytes) for one pass.
  int64_t activation_elements = 0;
  std::map<std::string, int> op_counts;
  std::vector<Finding> findings;

  int64_t parameter_bytes() const { return parameter_count * 4; }
  int64_t activation_bytes() const { return activation_elements * 4; }
};

/// Symbolically executes `model_name` (must be registered) against `data`:
/// builds the model, then runs one two-domain TrainStep and one Score call
/// per domain under meta mode, collecting the op trace and findings. Never
/// throws; contract violations become findings.
ModelAudit AuditModel(const std::string& model_name, const ExperimentData& data,
                      const std::string& scenario_name,
                      const CommonHyper& hyper);

/// Whole-registry report.
struct AnalyzeReport {
  std::vector<ModelAudit> audits;
  /// Registry-level coverage findings (missing backward coverage or shape
  /// rules), independent of any model.
  std::vector<Finding> coverage;

  bool clean() const;
  int finding_count() const;
  std::string ToString() const;
};

/// Runs AuditModel for every registered model over every scenario preset
/// of `scale` (data/presets.h), plus the registry-wide coverage audit.
/// Registers all models if the registry is empty.
AnalyzeReport AnalyzeAllModels(BenchScale scale);

/// Program audit of one (model, scenario): records one real training step
/// into a graph program (src/program) on a fresh model instance, replays a
/// second step, and cross-checks against an identically seeded eager twin —
/// per-op-kind counts and total output elements must match the eager op
/// stream (shape equivalence), and both step losses must be bitwise equal
/// (numeric equivalence). Also reports the compiled fusion groups and the
/// arena plan (reserved capacity / observed peak).
struct ProgramAudit {
  std::string model;
  std::string scenario;
  bool compiled = false;
  int instrs = 0;
  int fusion_groups = 0;
  int fused_ops = 0;
  int spmm_plans = 0;
  int64_t arena_reserved_bytes = 0;
  int64_t arena_peak_bytes = 0;
  /// DescribeGroups() text — one fusion group per line.
  std::string groups;
  std::vector<Finding> findings;
};

struct ProgramReport {
  std::vector<ProgramAudit> audits;

  bool clean() const;
  int finding_count() const;
  std::string ToString() const;
};

/// Runs the program audit for every registered model over every scenario
/// preset of `scale`. Respects the NMCDR_FUSION environment switch: when
/// fusion is disabled the report is empty (and says so).
ProgramReport AuditPrograms(BenchScale scale);

/// Cross-checks the shape-rule registry against the gradient-check suite:
/// every op with a shape rule needs finite-difference backward coverage
/// and vice versa. Empty result = the two tables enumerate the same ops.
std::vector<Finding> AuditOpCoverage();

/// Validates a frozen snapshot's scoring chain — user/item tables through
/// the prediction head to the [B,1] logit — against the registered shape
/// rules, mirroring FrozenPredictionHead::Forward op by op. Findings carry
/// the exact dimension diff.
std::vector<Finding> VerifySnapshotShapes(const ModelSnapshot& snapshot);

}  // namespace verify
}  // namespace nmcdr

#endif  // NMCDR_VERIFY_ANALYZER_H_
