#ifndef NMCDR_VERIFY_OP_SUITE_H_
#define NMCDR_VERIFY_OP_SUITE_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "tensor/backend.h"

namespace nmcdr {
namespace verify {

/// One entry of the auto-enumerating gradient-check suite: deterministic
/// inputs, a graph builder, and the list of autograd op names the built
/// graph exercises. The suite drives two audits at once:
///
///  - RunGradCheck: finite-difference verification of every op's backward
///    pass (the machinery behind tests/autograd_grad_check_test.cc);
///  - GradCheckedOps: the union of `covers` lists, cross-checked by the
///    analyzer against the ops a model's traced graph actually uses and
///    against the registered shape rules, so adding an op to ops.cc
///    without adding a suite entry fails the registry-completeness test.
///
/// Adding a new autograd op therefore means updating exactly one table:
/// append an OpCase here (with the op in `covers`) and register its shape
/// rule in autograd/meta.cc.
struct OpCase {
  std::string name;
  /// Op names (as passed to MakeOpNode) this case's graph exercises.
  std::vector<std::string> covers;
  std::vector<Matrix> inputs;
  std::function<ag::Tensor(const std::vector<ag::Tensor>&)> build;
  float eps = 1e-2f;
  float tol = 8e-3f;
};

/// The full suite; one case per op-cluster, every autograd op covered.
const std::vector<OpCase>& OpSuite();

/// Union of OpSuite covers lists, sorted, deduplicated.
std::vector<std::string> GradCheckedOps();

/// One finite-difference disagreement (or structural failure) from a
/// gradient check.
struct GradCheckIssue {
  std::string case_name;
  std::string detail;
};

/// Central-difference check of every input coordinate of `c` against the
/// analytic gradients from Backward(). Empty result = pass.
std::vector<GradCheckIssue> RunGradCheck(const OpCase& c);

/// Runs the whole suite; empty result = all backward passes verified.
std::vector<GradCheckIssue> RunAllGradChecks();

/// Same, but under an explicit kernel backend (BackendGuard for the run).
/// Both built-in backends must pass: the finite-difference machinery only
/// assumes the kernels are deterministic, which the bit-exactness contract
/// guarantees for any backend.
std::vector<GradCheckIssue> RunAllGradChecks(const KernelBackend* backend);

}  // namespace verify
}  // namespace nmcdr

#endif  // NMCDR_VERIFY_OP_SUITE_H_
