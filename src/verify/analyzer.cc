#include "verify/analyzer.h"

#include <cstring>
#include <exception>
#include <set>
#include <sstream>
#include <utility>

#include "autograd/meta.h"
#include "autograd/op_stream.h"
#include "program/program.h"
#include "train/registry.h"
#include "verify/op_suite.h"

namespace nmcdr {
namespace verify {
namespace {

std::string KindName(Finding::Kind kind) {
  switch (kind) {
    case Finding::Kind::kShapeContradiction:
      return "shape-contradiction";
    case Finding::Kind::kUnregisteredOp:
      return "unregistered-op";
    case Finding::Kind::kMissingBackward:
      return "missing-backward";
    case Finding::Kind::kMissingShapeRule:
      return "missing-shape-rule";
    case Finding::Kind::kModelFailure:
      return "model-failure";
    case Finding::Kind::kSnapshotShape:
      return "snapshot-shape";
    case Finding::Kind::kProgramMismatch:
      return "program-mismatch";
  }
  return "unknown";
}

/// Passive op-stream observer: counts every eagerly executed op (by node
/// creation, mirroring what GraphProgram records) without intercepting
/// anything. Used to cross-check a compiled program against the live
/// eager stream of an identically seeded twin model.
class OpCountingHandler final : public ag::OpStreamHandler {
 public:
  bool OnOpEntry(ag::OpKind, const ag::Tensor* const*, int, const float*, int,
                 ag::Tensor*) override {
    return false;
  }
  bool OnSpMM(const std::shared_ptr<const CsrMatrix>&, const ag::Tensor&,
              ag::Tensor*) override {
    return false;
  }
  void OnNodeCreated(const char* op, const ag::Tensor& result,
                     const std::vector<ag::Tensor>&) override {
    ++counts_[op];
    elements_ += static_cast<int64_t>(result.value().size());
  }

  const std::map<std::string, int>& counts() const { return counts_; }
  int64_t elements() const { return elements_; }

 private:
  std::map<std::string, int> counts_;
  int64_t elements_ = 0;
};

/// First few train positives of one domain as a labeled batch (alternating
/// positive/negative labels; ids are real, so gather bounds hold).
LabeledBatch ProbeBatch(const DomainSplit& split, int max_pairs) {
  LabeledBatch batch;
  const int n = std::min<int>(max_pairs, static_cast<int>(split.train.size()));
  batch.users.reserve(n);
  batch.items.reserve(n);
  batch.labels.reserve(n);
  for (int i = 0; i < n; ++i) {
    batch.users.push_back(split.train[i].user);
    batch.items.push_back(split.train[i].item);
    batch.labels.push_back(i % 2 == 0 ? 1.f : 0.f);
  }
  return batch;
}

void NoteMetaError(const ag::MetaError& e, const std::string& phase,
                   ModelAudit* audit) {
  Finding f;
  f.kind = e.kind() == ag::MetaErrorKind::kUnregisteredOp
               ? Finding::Kind::kUnregisteredOp
               : Finding::Kind::kShapeContradiction;
  f.model = audit->model;
  f.scenario = audit->scenario;
  f.op = e.op();
  f.message = phase + ": " + e.what();
  audit->findings.push_back(std::move(f));
}

/// One shape-rule application in the snapshot chain; false + finding on a
/// violated contract.
bool SnapshotStep(const char* op, const std::vector<ag::MetaShape>& in,
                  ag::MetaShape* out, const std::string& domain,
                  const std::string& context, std::vector<Finding>* findings) {
  const std::string err = ag::ApplyShapeRule(op, in, ag::MetaAttrs{}, out);
  if (err.empty()) return true;
  Finding f;
  f.kind = Finding::Kind::kSnapshotShape;
  f.scenario = domain;
  f.op = op;
  f.message = "domain '" + domain + "': " + context + ": " + err;
  findings->push_back(std::move(f));
  return false;
}

}  // namespace

std::string Finding::ToString() const {
  std::string s = "[" + KindName(kind) + "]";
  if (!model.empty()) s += " model=" + model;
  if (!scenario.empty()) s += " scenario=" + scenario;
  if (!op.empty()) s += " op=" + op;
  return s + ": " + message;
}

ModelAudit AuditModel(const std::string& model_name, const ExperimentData& data,
                      const std::string& scenario_name,
                      const CommonHyper& hyper) {
  ModelAudit audit;
  audit.model = model_name;
  audit.scenario = scenario_name;

  std::unique_ptr<RecModel> model;
  try {
    model = ModelRegistry::Instance().Get(model_name)(data.View(), hyper,
                                                      /*lr=*/1e-3f);
  } catch (const std::exception& e) {
    Finding f;
    f.kind = Finding::Kind::kModelFailure;
    f.model = model_name;
    f.scenario = scenario_name;
    f.message = std::string("model construction failed: ") + e.what();
    audit.findings.push_back(std::move(f));
    return audit;
  }
  audit.parameter_count = model->ParameterCount();

  const LabeledBatch batch_z = ProbeBatch(data.split_z(), /*max_pairs=*/8);
  const LabeledBatch batch_zbar = ProbeBatch(data.split_zbar(), 8);

  {
    ag::MetaModeGuard meta;
    ag::MetaTraceScope trace;
    try {
      model->TrainStep(batch_z, batch_zbar);
    } catch (const ag::MetaError& e) {
      NoteMetaError(e, "TrainStep", &audit);
    }
    for (const DomainSide side : {DomainSide::kZ, DomainSide::kZbar}) {
      const LabeledBatch& b = side == DomainSide::kZ ? batch_z : batch_zbar;
      if (b.empty()) continue;
      try {
        model->Score(side, b.users, b.items);
      } catch (const ag::MetaError& e) {
        NoteMetaError(e, "Score", &audit);
      }
    }
    audit.op_counts = trace.op_counts();
    audit.activation_elements = trace.total_output_elements();
    std::set<std::string> seen;
    audit.findings.reserve(audit.findings.size() +
                           trace.unregistered_ops().size());
    for (const std::string& op : trace.unregistered_ops()) {
      if (!seen.insert(op).second) continue;
      Finding f;
      f.kind = Finding::Kind::kUnregisteredOp;
      f.model = model_name;
      f.scenario = scenario_name;
      f.op = op;
      f.message = "op reached the tape with no registered shape rule; "
                  "register one in autograd/meta.cc";
      audit.findings.push_back(std::move(f));
    }
  }

  const std::vector<std::string> checked = GradCheckedOps();
  const std::set<std::string> checked_set(checked.begin(), checked.end());
  audit.findings.reserve(audit.findings.size() + audit.op_counts.size());
  for (const auto& [op, count] : audit.op_counts) {
    if (checked_set.count(op) != 0) continue;
    Finding f;
    f.kind = Finding::Kind::kMissingBackward;
    f.model = model_name;
    f.scenario = scenario_name;
    f.op = op;
    f.message =
        "model uses op with no finite-difference backward coverage; add an "
        "OpCase to verify/op_suite.cc (used " +
        std::to_string(count) + "x)";
    audit.findings.push_back(std::move(f));
  }
  return audit;
}

bool AnalyzeReport::clean() const { return finding_count() == 0; }

int AnalyzeReport::finding_count() const {
  int n = static_cast<int>(coverage.size());
  for (const ModelAudit& a : audits) n += static_cast<int>(a.findings.size());
  return n;
}

std::string AnalyzeReport::ToString() const {
  std::ostringstream out;
  out << "nmcdr_analyze: semantic tensor-program verification\n";
  std::string scenario;
  for (const ModelAudit& a : audits) {
    if (a.scenario != scenario) {
      scenario = a.scenario;
      out << "\nscenario " << scenario << "\n";
    }
    int64_t distinct_ops = static_cast<int64_t>(a.op_counts.size());
    out << "  " << a.model << ": " << a.parameter_count << " params ("
        << a.parameter_bytes() / 1024 << " KiB), " << distinct_ops
        << " distinct ops, ~" << a.activation_bytes() / 1024
        << " KiB activations/pass";
    out << (a.findings.empty() ? " .. OK\n" : "\n");
    for (const Finding& f : a.findings) out << "    " << f.ToString() << "\n";
  }
  out << "\nregistry coverage: "
      << (coverage.empty() ? "every shape-rule op has backward coverage\n"
                           : "\n");
  for (const Finding& f : coverage) out << "  " << f.ToString() << "\n";
  out << "\ntotal findings: " << finding_count() << "\n";
  return out.str();
}

AnalyzeReport AnalyzeAllModels(BenchScale scale) {
  if (ModelRegistry::Instance().Names().empty()) RegisterAllModels();
  AnalyzeReport report;
  const CommonHyper hyper;
  report.audits.reserve(AllScenarioSpecs(scale).size() *
                        ModelRegistry::Instance().Names().size());
  for (const SyntheticScenarioSpec& spec : AllScenarioSpecs(scale)) {
    ExperimentData data(GenerateScenario(spec), /*seed=*/spec.seed + 1);
    for (const std::string& name : ModelRegistry::Instance().Names()) {
      report.audits.push_back(AuditModel(name, data, spec.name, hyper));
    }
  }
  report.coverage = AuditOpCoverage();
  return report;
}

namespace {

void NoteProgramMismatch(const std::string& message, ProgramAudit* audit) {
  Finding f;
  f.kind = Finding::Kind::kProgramMismatch;
  f.model = audit->model;
  f.scenario = audit->scenario;
  f.message = message;
  audit->findings.push_back(std::move(f));
}

bool BitwiseEqual(float a, float b) {
  return std::memcmp(&a, &b, sizeof(float)) == 0;
}

ProgramAudit AuditProgram(const std::string& model_name,
                          const ExperimentData& data,
                          const std::string& scenario_name,
                          const CommonHyper& hyper) {
  ProgramAudit audit;
  audit.model = model_name;
  audit.scenario = scenario_name;

  std::unique_ptr<RecModel> eager;
  std::unique_ptr<RecModel> fused;
  try {
    const auto& factory = ModelRegistry::Instance().Get(model_name);
    eager = factory(data.View(), hyper, /*lr=*/1e-3f);
    fused = factory(data.View(), hyper, /*lr=*/1e-3f);
  } catch (const std::exception& e) {
    NoteProgramMismatch(std::string("model construction failed: ") + e.what(),
                        &audit);
    return audit;
  }

  const LabeledBatch batch_z = ProbeBatch(data.split_z(), /*max_pairs=*/8);
  const LabeledBatch batch_zbar = ProbeBatch(data.split_zbar(), 8);

  // Eager twin: the first step runs under a passive op counter so its live
  // op stream can be compared against what the program recorded.
  OpCountingHandler counter;
  float eager_loss0 = 0.f;
  {
    ag::OpStreamScope scope(&counter);
    eager_loss0 = eager->TrainStep(batch_z, batch_zbar);
  }
  const float eager_loss1 = eager->TrainStep(batch_z, batch_zbar);

  // Fused twin: record the first step, replay the second.
  prog::GraphProgram program;
  float fused_loss0 = 0.f;
  float fused_loss1 = 0.f;
  bool replayed = false;
  {
    prog::GraphProgram::RecordScope record(&program);
    fused_loss0 = fused->TrainStep(batch_z, batch_zbar);
  }
  {
    prog::GraphProgram::ReplayScope replay(&program);
    fused_loss1 = fused->TrainStep(batch_z, batch_zbar);
    replayed = replay.replayed();
  }

  const prog::ProgramStats stats = program.stats();
  audit.compiled = stats.compiled;
  audit.instrs = stats.instrs;
  audit.fusion_groups = stats.fusion_groups;
  audit.fused_ops = stats.fused_ops;
  audit.spmm_plans = stats.spmm_plans;
  audit.arena_reserved_bytes = stats.arena_reserved_bytes;
  audit.arena_peak_bytes = stats.arena_peak_bytes;
  audit.groups = program.DescribeGroups();

  // Shape equivalence: the recorded program must enumerate exactly the ops
  // (and output elements) the eager twin executed.
  if (audit.compiled) {
    if (program.OpCounts() != counter.counts()) {
      NoteProgramMismatch("recorded op-kind counts differ from the eager "
                          "twin's op stream",
                          &audit);
    }
    if (program.TotalOutputElements() != counter.elements()) {
      NoteProgramMismatch("recorded output elements differ from the eager "
                          "twin's op stream",
                          &audit);
    }
    if (!replayed) {
      NoteProgramMismatch("replay of the second step diverged from the "
                          "recorded program",
                          &audit);
    }
  }
  // Numeric equivalence holds whether or not the program compiled: an
  // uncompilable or diverged step must still fall back to exact eager.
  if (!BitwiseEqual(eager_loss0, fused_loss0) ||
      !BitwiseEqual(eager_loss1, fused_loss1)) {
    std::ostringstream os;
    os << "fused losses (" << fused_loss0 << ", " << fused_loss1
       << ") are not bitwise equal to eager losses (" << eager_loss0 << ", "
       << eager_loss1 << ")";
    NoteProgramMismatch(os.str(), &audit);
  }
  return audit;
}

}  // namespace

bool ProgramReport::clean() const { return finding_count() == 0; }

int ProgramReport::finding_count() const {
  int n = 0;
  for (const ProgramAudit& a : audits) n += static_cast<int>(a.findings.size());
  return n;
}

std::string ProgramReport::ToString() const {
  std::ostringstream out;
  out << "program audit: " << audits.size() << " (model, scenario) pairs, "
      << finding_count() << " findings\n";
  if (audits.empty()) {
    out << "  (fusion disabled via NMCDR_FUSION; nothing to audit)\n";
    return out.str();
  }
  for (const ProgramAudit& a : audits) {
    out << "  [" << a.scenario << "] " << a.model << ": ";
    if (!a.compiled) {
      out << "uncompilable (eager fallback)\n";
    } else {
      out << a.instrs << " instrs, " << a.fusion_groups << " fusion groups ("
          << a.fused_ops << " fused ops), " << a.spmm_plans
          << " spmm plans, arena reserved " << a.arena_reserved_bytes / 1024
          << " KiB peak " << a.arena_peak_bytes / 1024 << " KiB\n";
      std::istringstream lines(a.groups);
      std::string line;
      while (std::getline(lines, line)) out << "      " << line << "\n";
    }
    for (const Finding& f : a.findings) out << "    " << f.ToString() << "\n";
  }
  return out.str();
}

ProgramReport AuditPrograms(BenchScale scale) {
  ProgramReport report;
  if (!prog::FusionEnvEnabled()) return report;
  if (ModelRegistry::Instance().Names().empty()) RegisterAllModels();
  const CommonHyper hyper;
  report.audits.reserve(AllScenarioSpecs(scale).size() *
                        ModelRegistry::Instance().Names().size());
  for (const SyntheticScenarioSpec& spec : AllScenarioSpecs(scale)) {
    ExperimentData data(GenerateScenario(spec), /*seed=*/spec.seed + 1);
    for (const std::string& name : ModelRegistry::Instance().Names()) {
      report.audits.push_back(AuditProgram(name, data, spec.name, hyper));
    }
  }
  return report;
}

std::vector<Finding> AuditOpCoverage() {
  std::vector<Finding> findings;
  const std::vector<std::string> rules = ag::RegisteredShapeRuleOps();
  const std::vector<std::string> checked = GradCheckedOps();
  const std::set<std::string> rule_set(rules.begin(), rules.end());
  const std::set<std::string> checked_set(checked.begin(), checked.end());
  findings.reserve(rules.size() + checked.size());
  for (const std::string& op : rules) {
    if (checked_set.count(op) != 0) continue;
    Finding f;
    f.kind = Finding::Kind::kMissingBackward;
    f.op = op;
    f.message =
        "op has a shape rule but no gradient-check coverage; add an OpCase "
        "to verify/op_suite.cc";
    findings.push_back(std::move(f));
  }
  for (const std::string& op : checked) {
    if (rule_set.count(op) != 0) continue;
    Finding f;
    f.kind = Finding::Kind::kMissingShapeRule;
    f.op = op;
    f.message =
        "op has gradient-check coverage but no shape rule; register one in "
        "autograd/meta.cc";
    findings.push_back(std::move(f));
  }
  return findings;
}

std::vector<Finding> VerifySnapshotShapes(const ModelSnapshot& snapshot) {
  std::vector<Finding> findings;
  // Worst case one finding per verified step per domain (~14 steps).
  findings.reserve(static_cast<size_t>(snapshot.num_domains()) * 14);
  // Symbolic candidate batch; any B works, the rules carry it through.
  constexpr int kBatch = 2;
  for (int d = 0; d < snapshot.num_domains(); ++d) {
    const SnapshotDomain& dom = snapshot.domain(d);
    const FrozenPredictionHead& head = dom.frozen.head;
    const ag::MetaShape users{kBatch, dom.frozen.user_reps.cols()};
    const ag::MetaShape items{kBatch, dom.frozen.item_reps.cols()};
    const auto shape_of = [](const Matrix& m) {
      return ag::MetaShape{m.rows(), m.cols()};
    };

    // MLP path of FrozenPredictionHead::Forward: the first layer is split
    // at the [u || v] boundary, so h0 = u*w0_user + v*w0_item + b0.
    ag::MetaShape hu, hi, h;
    bool ok =
        SnapshotStep("MatMul", {users, shape_of(head.w0_user)}, &hu, dom.name,
                     "user_reps" + users.ToString() + " x head.w0_user" +
                         shape_of(head.w0_user).ToString(),
                     &findings) &&
        SnapshotStep("MatMul", {items, shape_of(head.w0_item)}, &hi, dom.name,
                     "item_reps" + items.ToString() + " x head.w0_item" +
                         shape_of(head.w0_item).ToString(),
                     &findings) &&
        SnapshotStep("Add", {hu, hi}, &h, dom.name,
                     "user half " + hu.ToString() + " + item half " +
                         hi.ToString() + " of the split first layer",
                     &findings) &&
        SnapshotStep("AddRowBroadcast", {h, shape_of(head.b0)}, &h, dom.name,
                     "first-layer bias head.b0" + shape_of(head.b0).ToString(),
                     &findings);
    for (size_t i = 0; ok && i < head.w.size(); ++i) {
      const std::string layer = "head.w[" + std::to_string(i) + "]";
      ok = SnapshotStep("MatMul", {h, shape_of(head.w[i])}, &h, dom.name,
                        "hidden " + h.ToString() + " x " + layer +
                            shape_of(head.w[i]).ToString(),
                        &findings) &&
           SnapshotStep("AddRowBroadcast", {h, shape_of(head.b[i])}, &h,
                        dom.name,
                        "bias head.b[" + std::to_string(i) + "]" +
                            shape_of(head.b[i]).ToString(),
                        &findings);
    }

    // GMF path: logit += (u (.) v) . gmf_w + gmf_b.
    ag::MetaShape prod, dot;
    bool gmf_ok =
        SnapshotStep("Hadamard", {users, items}, &prod, dom.name,
                     "user_reps" + users.ToString() + " (.) item_reps" +
                         items.ToString(),
                     &findings) &&
        SnapshotStep("MatMul", {prod, shape_of(head.gmf_w)}, &dot, dom.name,
                     "product " + prod.ToString() + " x head.gmf_w" +
                         shape_of(head.gmf_w).ToString(),
                     &findings) &&
        SnapshotStep("AddRowBroadcast", {dot, shape_of(head.gmf_b)}, &dot,
                     dom.name,
                     "gmf bias head.gmf_b" + shape_of(head.gmf_b).ToString(),
                     &findings);

    if (ok && gmf_ok) {
      ag::MetaShape logit;
      ok = SnapshotStep("Add", {h, dot}, &logit, dom.name,
                        "mlp logits " + h.ToString() + " + gmf logits " +
                            dot.ToString(),
                        &findings);
      if (ok && (logit.rows != kBatch || logit.cols != 1)) {
        Finding f;
        f.kind = Finding::Kind::kSnapshotShape;
        f.scenario = dom.name;
        f.op = "Add";
        f.message = "domain '" + dom.name + "': scoring chain ends at " +
                    logit.ToString() + ", expected " +
                    ag::MetaShape{kBatch, 1}.ToString() +
                    " logits; the head's last layer does not reduce to one "
                    "column";
        findings.push_back(std::move(f));
      }
    }
  }
  return findings;
}

}  // namespace verify
}  // namespace nmcdr
