#include "train/registry.h"

#include "baselines/cross_domain.h"
#include "baselines/multi_task.h"
#include "baselines/partial_overlap.h"
#include "baselines/single_domain.h"
#include "core/nmcdr_model.h"
#include "util/check.h"

namespace nmcdr {
namespace {

template <typename Model>
void RegisterModel(const std::string& name) {
  ModelRegistry::Instance().Register(
      name, [](const ScenarioView& view, const CommonHyper& hyper, float lr) {
        return std::make_unique<Model>(view, hyper, lr);
      });
}

}  // namespace

ModelRegistry& ModelRegistry::Instance() {
  // NMCDR_LINT_ALLOW(naked-new): intentional leaky singleton; model
  // factories registered at static init must outlive every client.
  static ModelRegistry* registry = new ModelRegistry();
  return *registry;
}

void ModelRegistry::Register(const std::string& name, ModelFactory factory) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      factories_[i] = std::move(factory);
      return;
    }
  }
  names_.push_back(name);
  factories_.push_back(std::move(factory));
}

ModelFactory ModelRegistry::Get(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return factories_[i];
  }
  NMCDR_CHECK(false);
  return nullptr;
}

bool ModelRegistry::Contains(const std::string& name) const {
  for (const std::string& n : names_) {
    if (n == name) return true;
  }
  return false;
}

std::vector<std::string> ModelRegistry::Names() const { return names_; }

void RegisterAllModels() {
  RegisterModel<LrModel>("LR");
  RegisterModel<BprModel>("BPR");
  RegisterModel<NeuMfModel>("NeuMF");
  RegisterModel<MmoeModel>("MMoE");
  RegisterModel<PleModel>("PLE");
  RegisterModel<ConetModel>("CoNet");
  RegisterModel<MinetModel>("MiNet");
  RegisterModel<GaDtcdrModel>("GA-DTCDR");
  RegisterModel<DmlModel>("DML");
  RegisterModel<HeroGraphModel>("HeroGraph");
  RegisterModel<PtupcdrModel>("PTUPCDR");
  RegisterNmcdrModel();
}

std::vector<std::string> PaperModelOrder() {
  return {"LR",    "BPR",      "NeuMF", "MMoE",      "PLE",
          "CoNet", "MiNet",    "GA-DTCDR", "DML",    "HeroGraph",
          "PTUPCDR", "NMCDR"};
}

void RegisterNmcdrModel() {
  ModelRegistry::Instance().Register(
      "NMCDR",
      [](const ScenarioView& view, const CommonHyper& hyper, float lr) {
        NmcdrConfig config;
        config.hidden_dim = hyper.embed_dim;
        config.mlp_hidden = hyper.mlp_hidden;
        return std::make_unique<NmcdrModel>(view, config, hyper.seed, lr);
      });
}

}  // namespace nmcdr
