#include "train/registry.h"

#include "core/nmcdr_model.h"
#include "util/check.h"

namespace nmcdr {

ModelRegistry& ModelRegistry::Instance() {
  // NMCDR_LINT_ALLOW(naked-new): intentional leaky singleton; model
  // factories registered at static init must outlive every client.
  static ModelRegistry* registry = new ModelRegistry();
  return *registry;
}

void ModelRegistry::Register(const std::string& name, ModelFactory factory) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      factories_[i] = std::move(factory);
      return;
    }
  }
  names_.push_back(name);
  factories_.push_back(std::move(factory));
}

ModelFactory ModelRegistry::Get(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return factories_[i];
  }
  NMCDR_CHECK(false);
  return nullptr;
}

bool ModelRegistry::Contains(const std::string& name) const {
  for (const std::string& n : names_) {
    if (n == name) return true;
  }
  return false;
}

std::vector<std::string> ModelRegistry::Names() const { return names_; }

void RegisterNmcdrModel() {
  ModelRegistry::Instance().Register(
      "NMCDR",
      [](const ScenarioView& view, const CommonHyper& hyper, float lr) {
        NmcdrConfig config;
        config.hidden_dim = hyper.embed_dim;
        config.mlp_hidden = hyper.mlp_hidden;
        return std::make_unique<NmcdrModel>(view, config, hyper.seed, lr);
      });
}

}  // namespace nmcdr
