#ifndef NMCDR_TRAIN_EXPERIMENT_H_
#define NMCDR_TRAIN_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>

#include "core/rec_model.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

namespace nmcdr {

/// Builds a RecModel for a prepared scenario. `lr` is the learning rate
/// the model's internal optimizer should use.
using ModelFactory = std::function<std::unique_ptr<RecModel>(
    const ScenarioView& view, const CommonHyper& hyper, float lr)>;

/// Owns everything derived from a scenario that an experiment needs:
/// the (K_u/D_s-adjusted) scenario, leave-one-out splits, train-only
/// graphs for message passing, and full graphs for negative sampling.
class ExperimentData {
 public:
  /// Splits `scenario` (deterministically from `seed`) and builds graphs.
  ExperimentData(CdrScenario scenario, uint64_t seed);

  ExperimentData(const ExperimentData&) = delete;
  ExperimentData& operator=(const ExperimentData&) = delete;

  /// Borrow-view handed to models and the trainer; valid while this
  /// object lives.
  ScenarioView View() const;

  const CdrScenario& scenario() const { return scenario_; }
  const DomainSplit& split_z() const { return split_z_; }
  const DomainSplit& split_zbar() const { return split_zbar_; }
  const InteractionGraph& full_graph_z() const { return *full_graph_z_; }
  const InteractionGraph& full_graph_zbar() const { return *full_graph_zbar_; }
  const InteractionGraph& train_graph_z() const { return *train_graph_z_; }
  const InteractionGraph& train_graph_zbar() const {
    return *train_graph_zbar_;
  }

 private:
  CdrScenario scenario_;
  DomainSplit split_z_;
  DomainSplit split_zbar_;
  std::unique_ptr<InteractionGraph> train_graph_z_;
  std::unique_ptr<InteractionGraph> train_graph_zbar_;
  std::unique_ptr<InteractionGraph> full_graph_z_;
  std::unique_ptr<InteractionGraph> full_graph_zbar_;
};

/// Outcome of one (model, scenario) run.
struct ExperimentResult {
  std::string model_name;
  ScenarioMetrics test;
  TrainSummary training;
  int64_t parameter_count = 0;
};

/// Trains a fresh model from `factory` on `data` and evaluates the test
/// split of both domains: one cell-group of the paper's Tables II-V.
ExperimentResult RunExperiment(const ExperimentData& data,
                               const ModelFactory& factory,
                               const CommonHyper& hyper,
                               const TrainConfig& train_config,
                               const EvalConfig& eval_config);

}  // namespace nmcdr

#endif  // NMCDR_TRAIN_EXPERIMENT_H_
