#include "train/multi_seed.h"

#include <cmath>

#include "util/check.h"

namespace nmcdr {

MeanStd Aggregate(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / values.size();
  if (values.size() < 2) return out;
  double sq = 0.0;
  for (double v : values) sq += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(sq / (values.size() - 1));
  return out;
}

MultiSeedResult RunExperimentMultiSeed(const ExperimentData& data,
                                       const ModelFactory& factory,
                                       const CommonHyper& hyper,
                                       const TrainConfig& train_config,
                                       const EvalConfig& eval_config,
                                       const std::vector<uint64_t>& seeds) {
  NMCDR_CHECK(!seeds.empty());
  std::vector<double> hr_z, ndcg_z, hr_zbar, ndcg_zbar;
  hr_z.reserve(seeds.size());
  ndcg_z.reserve(seeds.size());
  hr_zbar.reserve(seeds.size());
  ndcg_zbar.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    CommonHyper seeded_hyper = hyper;
    seeded_hyper.seed = seed;
    TrainConfig seeded_train = train_config;
    seeded_train.seed = seed;
    const ExperimentResult result =
        RunExperiment(data, factory, seeded_hyper, seeded_train, eval_config);
    hr_z.push_back(result.test.z.hr);
    ndcg_z.push_back(result.test.z.ndcg);
    hr_zbar.push_back(result.test.zbar.hr);
    ndcg_zbar.push_back(result.test.zbar.ndcg);
  }
  MultiSeedResult out;
  out.hr_z = Aggregate(hr_z);
  out.ndcg_z = Aggregate(ndcg_z);
  out.hr_zbar = Aggregate(hr_zbar);
  out.ndcg_zbar = Aggregate(ndcg_zbar);
  out.num_seeds = static_cast<int>(seeds.size());
  return out;
}

}  // namespace nmcdr
