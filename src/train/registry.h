#ifndef NMCDR_TRAIN_REGISTRY_H_
#define NMCDR_TRAIN_REGISTRY_H_

#include <string>
#include <vector>

#include "train/experiment.h"

namespace nmcdr {

/// Process-wide model registry mapping table row names ("NMCDR", "PLE",
/// "PTUPCDR", ...) to factories. Registration is explicit (call
/// RegisterBaselineModels() / RegisterNmcdrModel() from main) — no static
/// initialization order games.
class ModelRegistry {
 public:
  /// The singleton registry.
  static ModelRegistry& Instance();

  /// Registers `factory` under `name`; re-registering a name replaces the
  /// previous factory (used by tests to stub models).
  void Register(const std::string& name, ModelFactory factory);

  /// Returns the factory for `name`; CHECK-fails if unknown.
  ModelFactory Get(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// All registered names in registration order.
  std::vector<std::string> Names() const;

 private:
  ModelRegistry() = default;
  std::vector<std::string> names_;
  std::vector<ModelFactory> factories_;
};

/// Registers NMCDR (with default NmcdrConfig scaled to the hyper's
/// embed_dim) under "NMCDR".
void RegisterNmcdrModel();

/// Registers the 11 baselines of §III.A.3 plus NMCDR in the model
/// registry. Call once from main() before using the registry.
void RegisterAllModels();

/// All model names in the paper's table row order:
/// LR, BPR, NeuMF | MMoE, PLE | CoNet, MiNet, GA-DTCDR | DML, HeroGraph,
/// PTUPCDR | NMCDR.
std::vector<std::string> PaperModelOrder();

}  // namespace nmcdr

#endif  // NMCDR_TRAIN_REGISTRY_H_
