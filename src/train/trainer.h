#ifndef NMCDR_TRAIN_TRAINER_H_
#define NMCDR_TRAIN_TRAINER_H_

#include "core/rec_model.h"
#include "eval/evaluator.h"
#include "graph/sampling.h"

namespace nmcdr {

/// Training-loop parameters (§III.A.4: batch 512, lr 1e-4, 1 negative per
/// positive for training — scaled defaults for the CPU substrate).
struct TrainConfig {
  int epochs = 10;
  /// Lower bound on total optimizer steps: tiny scenarios (few steps per
  /// epoch) get their epoch count raised so every model sees at least this
  /// many updates. 0 disables.
  int min_total_steps = 0;
  int batch_size = 256;
  float learning_rate = 1e-3f;
  int negatives_per_positive = 1;
  uint64_t seed = 7;
  /// Evaluate on validation every `eval_every` epochs and snapshot the
  /// best parameters (restored at the end — the stand-in for the paper's
  /// best-of-5-runs selection). 0 = never, -1 = auto (~8 evaluations).
  int eval_every = 0;
  /// With eval_every active, stop after this many non-improving
  /// evaluations (0 = never stop early).
  int early_stop_patience = 0;
  /// Kernel threads for this run: 0 = inherit the process-wide backend,
  /// 1 = force the serial backend, >1 = the parallel backend over the
  /// shared pool. Results are bit-identical at any setting — backends are
  /// bit-exact by contract (tensor/backend.h).
  int threads = 0;
  /// Compile the first training step into a graph program (src/program)
  /// and replay it — fused kernels + arena-planned buffers — for the rest
  /// of the run. Bitwise-identical to eager by contract; ANDed with the
  /// NMCDR_FUSION environment switch. Any unfusable op stream falls back
  /// to eager deterministically.
  bool fusion = true;
  bool verbose = false;
};

/// Summary of a training run.
struct TrainSummary {
  int epochs_run = 0;
  float final_loss = 0.f;
  double train_seconds = 0.0;
  /// Mean validation HR@10 over the two domains at the best evaluation
  /// (only populated when eval_every > 0).
  double best_valid_hr = 0.0;
};

/// Mini-batch trainer over both domains simultaneously: each step draws a
/// batch of positives from each domain's train split (cycling with
/// reshuffle) and pairs every positive with sampled negatives.
class Trainer {
 public:
  /// Graphs for validation-time negative sampling must be the FULL graphs
  /// (all interactions) of each domain; pass nullptr to disable eval.
  Trainer(const ScenarioView& view, const TrainConfig& config,
          const InteractionGraph* full_graph_z = nullptr,
          const InteractionGraph* full_graph_zbar = nullptr);

  /// Runs the configured number of epochs on `model`.
  TrainSummary Train(RecModel* model);

 private:
  LabeledBatch NextBatch(DomainSide side, Rng* rng);

  struct DomainCursor {
    std::vector<Interaction> order;
    size_t next = 0;
  };

  ScenarioView view_;
  TrainConfig config_;
  const InteractionGraph* full_graph_z_;
  const InteractionGraph* full_graph_zbar_;
  NegativeSampler sampler_z_;
  NegativeSampler sampler_zbar_;
  DomainCursor cursor_z_;
  DomainCursor cursor_zbar_;
};

}  // namespace nmcdr

#endif  // NMCDR_TRAIN_TRAINER_H_
