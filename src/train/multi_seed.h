#ifndef NMCDR_TRAIN_MULTI_SEED_H_
#define NMCDR_TRAIN_MULTI_SEED_H_

#include <vector>

#include "train/experiment.h"

namespace nmcdr {

/// Mean and sample standard deviation of a metric across seeds.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

/// Computes mean/std (sample std; 0 for n < 2) of `values`.
MeanStd Aggregate(const std::vector<double>& values);

/// Per-domain aggregated metrics across seeds.
struct MultiSeedResult {
  MeanStd hr_z, ndcg_z, hr_zbar, ndcg_zbar;
  int num_seeds = 0;
};

/// Runs the same (model, scenario) experiment once per seed — re-seeding
/// model initialization and the training stream, keeping the data split
/// fixed — and aggregates the test metrics. The paper reports the best of
/// 5 runs; this reports mean ± std, the variance-honest alternative used
/// by EXPERIMENTS.md when quantifying cell noise.
MultiSeedResult RunExperimentMultiSeed(const ExperimentData& data,
                                       const ModelFactory& factory,
                                       const CommonHyper& hyper,
                                       const TrainConfig& train_config,
                                       const EvalConfig& eval_config,
                                       const std::vector<uint64_t>& seeds);

}  // namespace nmcdr

#endif  // NMCDR_TRAIN_MULTI_SEED_H_
