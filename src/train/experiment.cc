#include "train/experiment.h"

namespace nmcdr {

ExperimentData::ExperimentData(CdrScenario scenario, uint64_t seed)
    : scenario_(std::move(scenario)) {
  scenario_.CheckConsistency();
  Rng rng(seed);
  split_z_ = LeaveOneOutSplit(scenario_.z, &rng);
  split_zbar_ = LeaveOneOutSplit(scenario_.zbar, &rng);
  train_graph_z_ = std::make_unique<InteractionGraph>(
      scenario_.z.num_users, scenario_.z.num_items, split_z_.train);
  train_graph_zbar_ = std::make_unique<InteractionGraph>(
      scenario_.zbar.num_users, scenario_.zbar.num_items, split_zbar_.train);
  full_graph_z_ = std::make_unique<InteractionGraph>(
      scenario_.z.num_users, scenario_.z.num_items, scenario_.z.interactions);
  full_graph_zbar_ = std::make_unique<InteractionGraph>(
      scenario_.zbar.num_users, scenario_.zbar.num_items,
      scenario_.zbar.interactions);
}

ScenarioView ExperimentData::View() const {
  ScenarioView view;
  view.scenario = &scenario_;
  view.split_z = &split_z_;
  view.split_zbar = &split_zbar_;
  view.train_graph_z = train_graph_z_.get();
  view.train_graph_zbar = train_graph_zbar_.get();
  return view;
}

ExperimentResult RunExperiment(const ExperimentData& data,
                               const ModelFactory& factory,
                               const CommonHyper& hyper,
                               const TrainConfig& train_config,
                               const EvalConfig& eval_config) {
  const ScenarioView view = data.View();
  std::unique_ptr<RecModel> model =
      factory(view, hyper, train_config.learning_rate);

  Trainer trainer(view, train_config, &data.full_graph_z(),
                  &data.full_graph_zbar());
  ExperimentResult result;
  result.model_name = model->name();
  result.training = trainer.Train(model.get());
  result.parameter_count = model->ParameterCount();
  result.test = EvaluateScenario(model.get(), data.full_graph_z(),
                                 data.full_graph_zbar(), data.split_z(),
                                 data.split_zbar(), EvalPhase::kTest,
                                 eval_config);
  return result;
}

}  // namespace nmcdr
