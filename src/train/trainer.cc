#include "train/trainer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "program/program.h"
#include "tensor/backend.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace nmcdr {

Trainer::Trainer(const ScenarioView& view, const TrainConfig& config,
                 const InteractionGraph* full_graph_z,
                 const InteractionGraph* full_graph_zbar)
    : view_(view),
      config_(config),
      full_graph_z_(full_graph_z),
      full_graph_zbar_(full_graph_zbar),
      sampler_z_(view.train_graph_z),
      sampler_zbar_(view.train_graph_zbar) {
  cursor_z_.order = view.split_z->train;
  cursor_zbar_.order = view.split_zbar->train;
  NMCDR_CHECK(!cursor_z_.order.empty());
  NMCDR_CHECK(!cursor_zbar_.order.empty());
}

LabeledBatch Trainer::NextBatch(DomainSide side, Rng* rng) {
  DomainCursor& cursor =
      side == DomainSide::kZ ? cursor_z_ : cursor_zbar_;
  const NegativeSampler& sampler =
      side == DomainSide::kZ ? sampler_z_ : sampler_zbar_;
  const int negs = config_.negatives_per_positive;
  const int positives =
      std::max(1, config_.batch_size / (1 + std::max(0, negs)));
  LabeledBatch batch;
  batch.users.reserve(positives * (1 + negs));
  batch.items.reserve(positives * (1 + negs));
  batch.labels.reserve(positives * (1 + negs));
  for (int i = 0; i < positives; ++i) {
    if (cursor.next >= cursor.order.size()) {
      rng->Shuffle(&cursor.order);
      cursor.next = 0;
    }
    const Interaction pos = cursor.order[cursor.next++];
    batch.users.push_back(pos.user);
    batch.items.push_back(pos.item);
    batch.labels.push_back(1.f);
    for (int n = 0; n < negs; ++n) {
      batch.users.push_back(pos.user);
      batch.items.push_back(sampler.SampleNegative(pos.user, rng));
      batch.labels.push_back(0.f);
    }
  }
  return batch;
}

TrainSummary Trainer::Train(RecModel* model) {
  // Pin the kernel backend for the whole run (no-op when threads == 0).
  BackendGuard backend_guard(BackendForThreads(config_.threads));
  Rng rng(config_.seed);
  TrainSummary summary;
  Stopwatch watch;

  const size_t max_train = std::max(cursor_z_.order.size(),
                                    cursor_zbar_.order.size());
  const int positives_per_batch = std::max(
      1, config_.batch_size / (1 + std::max(0, config_.negatives_per_positive)));
  const int steps_per_epoch = std::max<int>(
      1, static_cast<int>((max_train + positives_per_batch - 1) /
                          positives_per_batch));
  int epochs = config_.epochs;
  if (config_.min_total_steps > 0) {
    epochs = std::max(epochs, (config_.min_total_steps + steps_per_epoch - 1) /
                                  steps_per_epoch);
  }
  int eval_every = config_.eval_every;
  if (eval_every < 0) eval_every = std::max(1, epochs / 8);

  // Graph-program fusion: the first step records the model's op stream
  // eagerly; the scope exit compiles it into fused groups + an arena plan,
  // and every later step replays the program. Replay is bitwise-identical
  // to eager (tensor/backend.h fused-kernel contract), and any divergence
  // from the recorded stream retires the program to plain eager mode.
  const bool fuse = config_.fusion && prog::FusionEnvEnabled();
  prog::GraphProgram program;
  bool recorded = false;

  double best_hr = -1.0;
  int stale_evals = 0;
  std::vector<Matrix> best_snapshot;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // "train.epoch" span: per-epoch wall time lands in histogram
    // span.train.epoch.seconds; per-epoch loss in gauge train.last_epoch_loss
    // below. Gated once here (not per step) — the step loop itself stays
    // probe-free so observability never perturbs training numerics.
    const obs::TraceSpan epoch_span("train.epoch");
    double loss_sum = 0.0;
    for (int step = 0; step < steps_per_epoch; ++step) {
      const LabeledBatch bz = NextBatch(DomainSide::kZ, &rng);
      const LabeledBatch bzbar = NextBatch(DomainSide::kZbar, &rng);
      if (!fuse) {
        loss_sum += model->TrainStep(bz, bzbar);
      } else if (!recorded) {
        prog::GraphProgram::RecordScope record(&program);
        loss_sum += model->TrainStep(bz, bzbar);
        recorded = true;
      } else if (program.usable()) {
        prog::GraphProgram::ReplayScope replay(&program);
        loss_sum += model->TrainStep(bz, bzbar);
      } else {
        loss_sum += model->TrainStep(bz, bzbar);
      }
    }
    summary.final_loss = static_cast<float>(loss_sum / steps_per_epoch);
    summary.epochs_run = epoch + 1;
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      reg.GetCounter("train.epochs").Add(1);
      reg.GetCounter("train.steps").Add(steps_per_epoch);
      reg.GetGauge("train.last_epoch_loss").Set(summary.final_loss);
    }
    if (config_.verbose) {
      LOG_INFO << model->name() << " epoch " << epoch + 1 << "/" << epochs
               << " loss " << summary.final_loss;
    }
    if (eval_every > 0 && (epoch + 1) % eval_every == 0 &&
        full_graph_z_ != nullptr && full_graph_zbar_ != nullptr) {
      EvalConfig eval_config;
      const ScenarioMetrics valid = EvaluateScenario(
          model, *full_graph_z_, *full_graph_zbar_, *view_.split_z,
          *view_.split_zbar, EvalPhase::kValidation, eval_config);
      const double hr = 0.5 * (valid.z.hr + valid.zbar.hr);
      if (config_.verbose) {
        LOG_INFO << model->name() << " epoch " << epoch + 1 << " valid HR "
                 << hr;
      }
      if (hr > best_hr + 1e-9) {
        best_hr = hr;
        stale_evals = 0;
        best_snapshot = model->params()->SnapshotValues();
      } else if (++stale_evals >= config_.early_stop_patience &&
                 config_.early_stop_patience > 0) {
        break;
      }
    }
  }
  if (!best_snapshot.empty()) {
    model->params()->RestoreValues(best_snapshot);
    model->InvalidateCaches();
  }
  summary.best_valid_hr = std::max(best_hr, 0.0);
  summary.train_seconds = watch.ElapsedSeconds();
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetGauge("train.final_loss").Set(summary.final_loss);
    reg.GetGauge("train.seconds").Set(summary.train_seconds);
    reg.GetGauge("train.best_valid_hr").Set(summary.best_valid_hr);
    if (fuse) program.PublishMetrics();
  }
  return summary;
}

}  // namespace nmcdr
