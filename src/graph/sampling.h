#ifndef NMCDR_GRAPH_SAMPLING_H_
#define NMCDR_GRAPH_SAMPLING_H_

#include <vector>

#include "graph/interaction_graph.h"
#include "tensor/rng.h"

namespace nmcdr {

/// Uniform negative-item sampler: draws items the user has NOT interacted
/// with, per the paper's protocol ("randomly sample 199 negative items ...
/// items are not interacted by the user", §III.A.2). Rejection sampling
/// against the interaction graph.
class NegativeSampler {
 public:
  /// The graph must outlive the sampler.
  explicit NegativeSampler(const InteractionGraph* graph);

  /// One negative item for `user`.
  int SampleNegative(int user, Rng* rng) const;

  /// `count` distinct negatives for `user`, excluding items in `exclude`
  /// as well. Requires enough non-interacted items to exist.
  std::vector<int> SampleNegatives(int user, int count,
                                   const std::vector<int>& exclude,
                                   Rng* rng) const;

 private:
  const InteractionGraph* graph_;
};

/// Head/tail user pools for the sampled fully-connected matching graphs
/// (intra node matching, Eq. 5-9) and the cross-domain pools (inter node
/// matching, Eq. 12-14). The paper caps fully-connected aggregation at
/// `matching_neighbors` sampled users (Fig. 3; default 512).
struct MatchingPools {
  std::vector<int> head_users;
  std::vector<int> tail_users;
};

/// Splits users of `graph` into head/tail pools by Eq. 5 (with the
/// head = degree > k_head reading; see InteractionGraph::HeadUsers).
MatchingPools BuildMatchingPools(const InteractionGraph& graph, int k_head);

/// Samples up to `count` users uniformly without replacement from `pool`.
/// Returns the whole pool when it is smaller than `count`.
std::vector<int> SamplePool(const std::vector<int>& pool, int count, Rng* rng);

}  // namespace nmcdr

#endif  // NMCDR_GRAPH_SAMPLING_H_
