#ifndef NMCDR_GRAPH_INTERACTION_GRAPH_H_
#define NMCDR_GRAPH_INTERACTION_GRAPH_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "tensor/matrix_ops.h"

namespace nmcdr {

/// One observed implicit-feedback user-item interaction (an edge of the
/// heterogeneous graph G = (U, V, E) in §II.A).
struct Interaction {
  int user = 0;
  int item = 0;

  friend bool operator==(const Interaction& a, const Interaction& b) {
    return a.user == b.user && a.item == b.item;
  }
};

/// Bipartite user-item interaction graph with CSR adjacency in both
/// directions. Backs the heterogeneous graph encoder (Eqs. 2-4), the
/// head/tail discrimination (Eq. 5), and negative sampling.
class InteractionGraph {
 public:
  /// Builds the graph; duplicate edges are collapsed. User/item ids must be
  /// in range.
  InteractionGraph(int num_users, int num_items,
                   const std::vector<Interaction>& interactions);

  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }
  int64_t num_edges() const { return num_edges_; }

  /// Item ids interacted by `user` (sorted ascending).
  const std::vector<int>& UserNeighbors(int user) const;

  /// User ids that interacted with `item` (sorted ascending).
  const std::vector<int>& ItemNeighbors(int item) const;

  /// |N_u| and |N_v|.
  int UserDegree(int user) const;
  int ItemDegree(int item) const;

  /// O(log deg) membership test.
  bool HasInteraction(int user, int item) const;

  /// Head users: |N_u| > k_head. Note: Eq. 5 as printed in the paper has
  /// the comparison inverted, but §III.E.2 states "if the historical
  /// interactions of a user is greater than K_head, then he/she is regarded
  /// as a head user" — we follow the prose (head = data-rich), which also
  /// matches the motivation in §I.
  std::vector<int> HeadUsers(int k_head) const;

  /// Tail users: |N_u| <= k_head (complement of HeadUsers).
  std::vector<int> TailUsers(int k_head) const;

  /// Average interactions per item (the statistic the paper uses in
  /// §III.B.4 to explain improvement magnitudes).
  double AverageItemInteractions() const;

  /// Row-normalized user->item adjacency (value 1/|N_u|): the graph
  /// Laplacian norm of Eq. 3. Shape [num_users, num_items]. Zero-degree
  /// users yield empty rows.
  std::shared_ptr<const CsrMatrix> NormalizedUserItemAdj() const;

  /// Row-normalized item->user adjacency (value 1/|N_v|), for the item-side
  /// aggregation used by item-representation encoders.
  std::shared_ptr<const CsrMatrix> NormalizedItemUserAdj() const;

 private:
  int num_users_;
  int num_items_;
  int64_t num_edges_ = 0;
  std::vector<std::vector<int>> user_adj_;
  std::vector<std::vector<int>> item_adj_;
};

}  // namespace nmcdr

#endif  // NMCDR_GRAPH_INTERACTION_GRAPH_H_
