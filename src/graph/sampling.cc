#include "graph/sampling.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace nmcdr {

NegativeSampler::NegativeSampler(const InteractionGraph* graph)
    : graph_(graph) {
  NMCDR_CHECK(graph != nullptr);
}

int NegativeSampler::SampleNegative(int user, Rng* rng) const {
  const int n = graph_->num_items();
  NMCDR_CHECK_GT(n, graph_->UserDegree(user));
  for (;;) {
    const int item = static_cast<int>(rng->NextUint64(n));
    if (!graph_->HasInteraction(user, item)) return item;
  }
}

std::vector<int> NegativeSampler::SampleNegatives(
    int user, int count, const std::vector<int>& exclude, Rng* rng) const {
  const int n = graph_->num_items();
  NMCDR_CHECK_GE(n - graph_->UserDegree(user) -
                     static_cast<int>(exclude.size()),
                 count);
  std::unordered_set<int> taken(exclude.begin(), exclude.end());
  std::vector<int> out;
  out.reserve(count);
  while (static_cast<int>(out.size()) < count) {
    const int item = static_cast<int>(rng->NextUint64(n));
    if (graph_->HasInteraction(user, item)) continue;
    if (!taken.insert(item).second) continue;
    out.push_back(item);
  }
  return out;
}

MatchingPools BuildMatchingPools(const InteractionGraph& graph, int k_head) {
  MatchingPools pools;
  pools.head_users = graph.HeadUsers(k_head);
  pools.tail_users = graph.TailUsers(k_head);
  return pools;
}

std::vector<int> SamplePool(const std::vector<int>& pool, int count,
                            Rng* rng) {
  NMCDR_CHECK_GE(count, 0);
  if (static_cast<int>(pool.size()) <= count) return pool;
  std::vector<int> idx = rng->SampleWithoutReplacement(
      static_cast<int>(pool.size()), count);
  std::vector<int> out;
  out.reserve(count);
  for (int i : idx) out.push_back(pool[i]);
  return out;
}

}  // namespace nmcdr
