#include "graph/interaction_graph.h"

#include <algorithm>

#include "util/check.h"

namespace nmcdr {

InteractionGraph::InteractionGraph(int num_users, int num_items,
                                   const std::vector<Interaction>& interactions)
    : num_users_(num_users), num_items_(num_items) {
  NMCDR_CHECK_GE(num_users, 0);
  NMCDR_CHECK_GE(num_items, 0);
  user_adj_.resize(num_users);
  item_adj_.resize(num_items);
  for (const Interaction& e : interactions) {
    NMCDR_CHECK_GE(e.user, 0);
    NMCDR_CHECK_LT(e.user, num_users);
    NMCDR_CHECK_GE(e.item, 0);
    NMCDR_CHECK_LT(e.item, num_items);
    user_adj_[e.user].push_back(e.item);
  }
  for (int u = 0; u < num_users; ++u) {
    std::vector<int>& adj = user_adj_[u];
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    num_edges_ += static_cast<int64_t>(adj.size());
    for (int v : adj) item_adj_[v].push_back(u);
  }
  // item_adj_ rows are already sorted because u ascends.
}

const std::vector<int>& InteractionGraph::UserNeighbors(int user) const {
  NMCDR_CHECK_GE(user, 0);
  NMCDR_CHECK_LT(user, num_users_);
  return user_adj_[user];
}

const std::vector<int>& InteractionGraph::ItemNeighbors(int item) const {
  NMCDR_CHECK_GE(item, 0);
  NMCDR_CHECK_LT(item, num_items_);
  return item_adj_[item];
}

int InteractionGraph::UserDegree(int user) const {
  return static_cast<int>(UserNeighbors(user).size());
}

int InteractionGraph::ItemDegree(int item) const {
  return static_cast<int>(ItemNeighbors(item).size());
}

bool InteractionGraph::HasInteraction(int user, int item) const {
  const std::vector<int>& adj = UserNeighbors(user);
  return std::binary_search(adj.begin(), adj.end(), item);
}

std::vector<int> InteractionGraph::HeadUsers(int k_head) const {
  std::vector<int> out;
  out.reserve(num_users_);
  for (int u = 0; u < num_users_; ++u) {
    if (UserDegree(u) > k_head) out.push_back(u);
  }
  return out;
}

std::vector<int> InteractionGraph::TailUsers(int k_head) const {
  std::vector<int> out;
  out.reserve(num_users_);
  for (int u = 0; u < num_users_; ++u) {
    if (UserDegree(u) <= k_head) out.push_back(u);
  }
  return out;
}

double InteractionGraph::AverageItemInteractions() const {
  if (num_items_ == 0) return 0.0;
  return static_cast<double>(num_edges_) / num_items_;
}

std::shared_ptr<const CsrMatrix> InteractionGraph::NormalizedUserItemAdj()
    const {
  std::vector<std::vector<std::pair<int, float>>> rows(num_users_);
  for (int u = 0; u < num_users_; ++u) {
    const std::vector<int>& adj = user_adj_[u];
    if (adj.empty()) continue;
    const float norm = 1.f / static_cast<float>(adj.size());
    rows[u].reserve(adj.size());
    for (int v : adj) rows[u].emplace_back(v, norm);
  }
  return std::make_shared<CsrMatrix>(num_users_, num_items_, rows);
}

std::shared_ptr<const CsrMatrix> InteractionGraph::NormalizedItemUserAdj()
    const {
  std::vector<std::vector<std::pair<int, float>>> rows(num_items_);
  for (int v = 0; v < num_items_; ++v) {
    const std::vector<int>& adj = item_adj_[v];
    if (adj.empty()) continue;
    const float norm = 1.f / static_cast<float>(adj.size());
    rows[v].reserve(adj.size());
    for (int u : adj) rows[v].emplace_back(u, norm);
  }
  return std::make_shared<CsrMatrix>(num_items_, num_users_, rows);
}

}  // namespace nmcdr
