#ifndef NMCDR_TENSOR_VECTOR_KERNELS_H_
#define NMCDR_TENSOR_VECTOR_KERNELS_H_

#include <cstdint>

#include "tensor/backend.h"  // FusedAct
#include "tensor/matrix.h"

// Register-blocked, cache-tiled, explicitly vectorized GEMM cores (the
// NMCDR_BACKEND=vector path and the tile-sharded ParallelBackend GEMMs).
// Built on the lane abstraction in tensor/simd.h and defined in
// vector_kernels.cc, a translation unit compiled at -O3 with
// -ffp-contract=off — see src/tensor/CMakeLists.txt for why that is
// bitwise-safe.
//
// Every core is bit-exact with the eager scalar loops in backend.cc: per
// output element it performs the same IEEE operations in the same order
// (ascending-p accumulation, the shared `av == 0` skip, the double dot of
// the TransB family); only the iteration and storage of INDEPENDENT
// elements differ, which is the backend equivalence contract
// (tensor/backend.h). Each core computes a rectangular output tile
// rows [r0, r1) x cols [c0, c1), so callers are free to tile the output
// any way they like — per element the result cannot depend on the tiling.

namespace nmcdr {

/// out[r0:r1, c0:c1] += a * b restricted to the tile; per element
/// identical to MatMulAccumRows (ascending p, shared zero skip).
void VectorMatMulAccumTile(const Matrix& a, const Matrix& b, Matrix* out,
                           int64_t r0, int64_t r1, int64_t c0, int64_t c1);

/// Tile of A^T * B into a zero-initialized out; per element identical to
/// MatMulTransARows.
void VectorMatMulTransATile(const Matrix& a, const Matrix& b, Matrix* out,
                            int64_t r0, int64_t r1, int64_t c0, int64_t c1);

/// Tile of A * B^T where `bt` is B already transposed (bt(p, j) =
/// b(j, p)); per element the same double dot in ascending p as
/// MatMulTransBRows.
void VectorMatMulTransBTile(const Matrix& a, const Matrix& bt, Matrix* out,
                            int64_t r0, int64_t r1, int64_t c0, int64_t c1);

/// Tile of the fused epilogue family: accumulate a*b into the (pre-zeroed)
/// tile, then per row apply the bias add and activation over [c0, c1).
/// Per element identical to FusedMatMulRows (which itself bit-matches the
/// separate MatMul / AddRowBroadcast / activation kernels). The bias and
/// activation are column-wise independent, so a column-tiled epilogue
/// still applies them exactly once per element.
void VectorFusedMatMulTile(const Matrix& a, const Matrix& b,
                           const Matrix* bias, FusedAct act, Matrix* out,
                           int64_t r0, int64_t r1, int64_t c0, int64_t c1);

/// 2-D output decomposition for the tile-sharded parallel GEMMs: a grid of
/// row_block x col_block tiles, flattened row-major into [0, num_tiles())
/// for ThreadPool::ParallelFor. Purely a scheduling artifact — the cores
/// above are tile-shape-independent, so ANY grid yields bit-identical
/// results; MakeGemmTileGrid only balances tile count against per-tile
/// work (enough tiles to feed `threads` workers, each tile at least the
/// pool's min-work grain so forking never loses to the serial loop).
struct GemmTileGrid {
  int64_t rows = 0, cols = 0;
  int64_t row_block = 1, col_block = 1;
  int64_t row_tiles = 0, col_tiles = 0;

  int64_t num_tiles() const { return row_tiles * col_tiles; }

  void TileBounds(int64_t tile, int64_t* r0, int64_t* r1, int64_t* c0,
                  int64_t* c1) const {
    const int64_t rt = tile / col_tiles;
    const int64_t ct = tile % col_tiles;
    *r0 = rt * row_block;
    *r1 = *r0 + row_block < rows ? *r0 + row_block : rows;
    *c0 = ct * col_block;
    *c1 = *c0 + col_block < cols ? *c0 + col_block : cols;
  }
};

/// Grid for an output of rows x cols with inner depth k, to be fanned out
/// over `threads` workers.
GemmTileGrid MakeGemmTileGrid(int64_t rows, int64_t cols, int64_t k,
                              int threads);

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_VECTOR_KERNELS_H_
