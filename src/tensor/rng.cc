#include "tensor/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace nmcdr {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  NMCDR_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  NMCDR_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::Uniform(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

float Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_gaussian_ = static_cast<float>(mag * std::sin(two_pi * u2));
  has_spare_gaussian_ = true;
  return static_cast<float>(mag * std::cos(two_pi * u2));
}

float Rng::Gaussian(float mean, float stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

int Rng::SampleDiscrete(const std::vector<double>& weights) {
  NMCDR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    NMCDR_CHECK_GE(w, 0.0);
    total += w;
  }
  NMCDR_CHECK_GT(total, 0.0);
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Rng::Zipf(int n, double s) {
  NMCDR_CHECK_GT(n, 0);
  std::vector<double> w(n);
  for (int r = 0; r < n; ++r) w[r] = 1.0 / std::pow(r + 1.0, s);
  return SampleDiscrete(w);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  NMCDR_CHECK_GE(n, k);
  NMCDR_CHECK_GE(k, 0);
  if (k == 0) return {};
  // For small k relative to n, hash-set rejection; otherwise partial shuffle.
  if (k * 4 < n) {
    std::unordered_set<int> seen;
    std::vector<int> out;
    out.reserve(k);
    while (static_cast<int>(out.size()) < k) {
      int v = static_cast<int>(NextUint64(n));
      if (seen.insert(v).second) out.push_back(v);
    }
    return out;
  }
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(NextUint64(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

ZipfSampler::ZipfSampler(int n, double s) {
  NMCDR_CHECK_GT(n, 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (int r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(r + 1.0, s);
    cdf_[r] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

int ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int>(cdf_.size()) - 1;
  return static_cast<int>(it - cdf_.begin());
}

double ZipfSampler::Pmf(int r) const {
  NMCDR_CHECK_GE(r, 0);
  NMCDR_CHECK_LT(r, static_cast<int>(cdf_.size()));
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace nmcdr
