#ifndef NMCDR_TENSOR_FUSED_KERNELS_H_
#define NMCDR_TENSOR_FUSED_KERNELS_H_

#include <cstdint>

#include "tensor/backend.h"  // FusedAct, EltwiseStep
#include "tensor/matrix.h"

// Range cores for the graph-program replay path (fused epilogues, fused
// eltwise chains, planned register-blocked GEMMs). Declared here so both
// backends (backend.cc) can shard them; defined in fused_kernels.cc, a
// separate translation unit compiled at a higher optimization level — see
// the note in src/tensor/CMakeLists.txt for why that is bitwise-safe.
//
// Every core is bit-exact with the eager op sequence it replaces: per
// output element it performs the same IEEE operations in the same order;
// only the iteration and storage of independent elements differ.

namespace nmcdr {

/// C += A * B for output rows [r0, r1), column-tiled with register
/// accumulators; per element identical to MatMulAccumRows.
void PlannedMatMulAccumRows(const Matrix& a, const Matrix& b, Matrix* out,
                            int64_t r0, int64_t r1);

/// Output rows [r0, r1) of A^T * B into a zero-initialized `out`; per
/// element identical to MatMulTransARows.
void PlannedMatMulTransARows(const Matrix& a, const Matrix& b, Matrix* out,
                             int64_t r0, int64_t r1);

/// Output rows [r0, r1) of A * B^T where `bt` is B already transposed
/// (bt(p, j) = b(j, p)); per element the same double dot in ascending p as
/// MatMulTransBRows.
void PlannedMatMulTransBRows(const Matrix& a, const Matrix& bt, Matrix* out,
                             int64_t r0, int64_t r1);

/// Rows [r0, r1): accumulate a*b as MatMulAccumRows, then apply the
/// bias-add and activation in place. Per element this computes
/// act(matmul + bias) with the same float sequence as the separate
/// MatMul / AddRowBroadcast / activation kernels.
void FusedMatMulRows(const Matrix& a, const Matrix& b, const Matrix* bias,
                     FusedAct act, Matrix* out, int64_t r0, int64_t r1);

/// Elements [i0, i1): out[i] = steps applied to a[i] in order.
void FusedEltwiseRange(const Matrix& a, const EltwiseStep* steps,
                       int num_steps, Matrix* out, int64_t i0, int64_t i1);

/// Per-element cost estimate for an eltwise chain (grain selection only —
/// never affects results).
int64_t EltwiseChainCost(const EltwiseStep* steps, int num_steps);

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_FUSED_KERNELS_H_
