#ifndef NMCDR_TENSOR_MATRIX_OPS_H_
#define NMCDR_TENSOR_MATRIX_OPS_H_

#include <vector>

#include "tensor/matrix.h"

namespace nmcdr {

/// Dense kernels underlying the autograd ops. All functions allocate and
/// return a fresh result unless they end in `Into`, which writes into an
/// already-shaped output (accumulating where documented).
///
/// Each free function is a thin dispatcher: it validates shapes, then
/// forwards to the currently selected KernelBackend (tensor/backend.h).
/// Backends are bit-exact with each other — results do not depend on the
/// backend or thread count. Select per-thread with BackendGuard or
/// process-wide with SetDefaultBackend / NMCDR_BACKEND=serial.

/// C = A * B. Shapes: [m,k] x [k,n] -> [m,n].
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C += A * B into pre-shaped `out` [m,n].
void MatMulAccumInto(const Matrix& a, const Matrix& b, Matrix* out);

/// C = A^T * B. Shapes: [k,m] x [k,n] -> [m,n].
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T. Shapes: [m,k] x [n,k] -> [m,n].
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// A^T.
Matrix Transpose(const Matrix& a);

/// Elementwise sum / difference / product (shapes must match).
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// a*alpha + b*beta, elementwise.
Matrix Axpby(const Matrix& a, float alpha, const Matrix& b, float beta);

/// out += a * alpha, elementwise. Shapes must match.
void AxpyInto(const Matrix& a, float alpha, Matrix* out);

/// Scalar multiply / add.
Matrix Scale(const Matrix& a, float s);
Matrix AddScalar(const Matrix& a, float s);

/// Adds row vector `b` (1 x cols) to every row of `a`.
Matrix AddRowBroadcast(const Matrix& a, const Matrix& b);

/// Elementwise nonlinearities.
Matrix Relu(const Matrix& a);
Matrix Sigmoid(const Matrix& a);
Matrix Tanh(const Matrix& a);
Matrix Softplus(const Matrix& a);
Matrix Exp(const Matrix& a);
Matrix Log(const Matrix& a);  // log(max(a, tiny)) for numerical safety

/// Row-wise softmax.
Matrix SoftmaxRows(const Matrix& a);

/// Sum of each row -> [rows, 1]; mean of each row -> [rows, 1].
Matrix RowSum(const Matrix& a);
Matrix RowMean(const Matrix& a);

/// Column-wise sum -> [1, cols]. Used for bias gradients.
Matrix ColSum(const Matrix& a);

/// Mean of all rows -> [1, cols].
Matrix ColMean(const Matrix& a);

/// Gathers rows of `table` by index -> [ids.size(), table.cols()].
Matrix GatherRows(const Matrix& table, const std::vector<int>& ids);

/// out.row(ids[i]) += src.row(i) for all i. Used by embedding backward.
void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                    Matrix* out);

/// Horizontal concat [m, c1] ++ [m, c2] -> [m, c1+c2].
Matrix ConcatCols(const Matrix& a, const Matrix& b);

/// Per-row dot product of equally shaped matrices -> [rows, 1].
Matrix RowDot(const Matrix& a, const Matrix& b);

/// Compressed sparse row matrix used for graph adjacency propagation:
/// exactly the normalized bipartite/user-user adjacencies of Eqs. 3, 8, 13.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from per-row (col, value) lists. `cols` is the dense width.
  CsrMatrix(int rows, int cols,
            const std::vector<std::vector<std::pair<int, float>>>& row_entries);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  /// Row pointer / column / value raw views.
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Y = A * X (dense X [cols, d] -> Y [rows, d]).
  Matrix Multiply(const Matrix& x) const;

  /// Y = A^T * X (dense X [rows, d] -> Y [cols, d]).
  Matrix MultiplyTransposed(const Matrix& x) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<float> values_;
};

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_MATRIX_OPS_H_
