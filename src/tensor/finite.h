#ifndef NMCDR_TENSOR_FINITE_H_
#define NMCDR_TENSOR_FINITE_H_

#include <cmath>

#include "tensor/matrix.h"

namespace nmcdr {

/// Location and value of the first non-finite entry of a matrix, in
/// row-major scan order. `found == false` means every entry is finite.
struct NonFiniteEntry {
  bool found = false;
  int row = 0;
  int col = 0;
  float value = 0.f;
};

/// Scans `m` row-major and reports the first NaN or +/-Inf entry. The
/// NaN/Inf propagation tracer (src/autograd/debug.h) uses this to pin the
/// first op whose output goes non-finite; also handy in tests and data
/// importers.
inline NonFiniteEntry FindFirstNonFinite(const Matrix& m) {
  NonFiniteEntry e;
  const float* p = m.data();
  const int n = m.size();
  for (int i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      e.found = true;
      e.row = i / m.cols();
      e.col = i % m.cols();
      e.value = p[i];
      return e;
    }
  }
  return e;
}

/// True when every entry of `m` is finite (no NaN, no +/-Inf).
inline bool AllFinite(const Matrix& m) { return !FindFirstNonFinite(m).found; }

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_FINITE_H_
