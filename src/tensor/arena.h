#ifndef NMCDR_TENSOR_ARENA_H_
#define NMCDR_TENSOR_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace nmcdr {

/// Bump allocator for per-step tensor storage. The graph-program replay
/// path (src/program) opens an ArenaScope around each training step;
/// every Matrix constructed inside the scope borrows its storage from the
/// arena instead of the heap, and ResetStep() rewinds the whole arena in
/// O(blocks) once the step's tensors are dead. Steady-state training
/// therefore performs zero per-op heap allocations for tensor storage —
/// program_test asserts this through the growth/alloc counters below.
///
/// Lifetime contract: storage handed out by Alloc() is valid until the
/// next ResetStep(). Matrices that must outlive the step (parameter
/// values/gradients, optimizer state, model caches) must be allocated
/// outside any scope or copied — Matrix copy construction/assignment
/// always produces owning heap storage for exactly this reason.
///
/// Not thread-safe: one arena belongs to one training thread. Kernel
/// worker threads never allocate matrices (outputs are constructed on the
/// calling thread before ParallelFor), so a thread-local scope suffices.
class BumpArena {
 public:
  BumpArena() = default;
  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Ensures total capacity of at least `bytes` (rounded up to the block
  /// grain). Called once at program-compile time with the planned peak so
  /// steady-state steps never grow.
  void Reserve(size_t bytes);

  /// Returns storage for `elems` floats, valid until ResetStep(). Grows by
  /// appending a new block when the current blocks are exhausted (counted
  /// in growth_events(); steady state must not grow). Returned storage is
  /// NOT zeroed — Matrix handles fill semantics.
  float* Alloc(size_t elems);

  /// Rewinds all blocks. Everything previously returned by Alloc() is
  /// dead. Updates the high-water statistics.
  void ResetStep();

  /// Total allocated block capacity in bytes.
  size_t capacity_bytes() const { return capacity_floats_ * sizeof(float); }

  /// Largest in-use byte count observed at any point (across steps).
  size_t peak_bytes() const { return peak_floats_ * sizeof(float); }

  /// Bytes handed out since the last ResetStep().
  size_t step_bytes() const { return used_floats_ * sizeof(float); }

  /// Number of times Alloc() had to append a block (reserve misses).
  int64_t growth_events() const { return growth_events_; }

  /// ResetStep() calls so far.
  int64_t steps() const { return steps_; }

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    size_t cap = 0;   // floats
    size_t used = 0;  // floats
  };

  /// Appends a block of at least `min_floats` capacity.
  void AddBlock(size_t min_floats);

  std::vector<Block> blocks_;
  size_t cur_ = 0;  // index of the block currently being bumped
  size_t capacity_floats_ = 0;
  size_t used_floats_ = 0;
  size_t peak_floats_ = 0;
  int64_t growth_events_ = 0;
  int64_t steps_ = 0;
};

/// The arena Matrix constructors draw from on this thread (nullptr when no
/// ArenaScope is active — the default, heap-owning behavior).
BumpArena* ActiveArena();

/// RAII scope binding `arena` as this thread's active arena. Scopes nest;
/// the innermost wins. Passing nullptr is a no-op scope (keeps whatever is
/// active), mirroring BackendGuard.
class ArenaScope {
 public:
  explicit ArenaScope(BumpArena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  BumpArena* saved_;
  bool active_;
};

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_ARENA_H_
