// Fused / planned range cores for the graph-program replay path.
//
// This translation unit is compiled at a higher optimization level than the
// rest of the tensor library (see src/tensor/CMakeLists.txt): the tiles
// below are written so every output element's IEEE operation sequence is
// fixed — independent per-element accumulator chains, no reduction the
// compiler could reassociate, no FMA on the baseline target — which makes
// aggressive loop optimization (unrolling, lane-wise vectorization of the
// fixed-trip j loops) value-preserving. The eager kernels in backend.cc
// stay at the default level: they are the readable reference
// implementation the replay path is audited against, bit for bit.

#include "tensor/fused_kernels.h"

#include "tensor/backend.h"
#include "tensor/matrix.h"
#include "tensor/scalar_kernels.h"

namespace nmcdr {
namespace {

/// One fixed-width tile of `acc[j] += av * brow[j]` accumulation. The
/// compile-time width is what lets the compiler fully unroll the j loops
/// and promote `acc` into registers; a runtime-trip version keeps the
/// accumulators in stack slots and re-serializes through store-to-load
/// forwarding, which is exactly the chain this core exists to break.
/// `av_stride` strides the per-p A element (1 for row-major A rows,
/// a.cols() for the TransA walk down an A column).
template <int JB>
inline void PlannedAccumTile(const float* a0, size_t av_stride,
                             const float* b0, size_t b_stride, int k,
                             float* ctile) {
  float acc[JB];
  for (int j = 0; j < JB; ++j) acc[j] = ctile[j];
  for (int p = 0; p < k; ++p) {
    const float av = a0[static_cast<size_t>(p) * av_stride];
    if (av == 0.f) continue;
    const float* brow = b0 + static_cast<size_t>(p) * b_stride;
    for (int j = 0; j < JB; ++j) acc[j] += av * brow[j];
  }
  for (int j = 0; j < JB; ++j) ctile[j] = acc[j];
}

/// Tiles one output row: widest blocks first, power-of-two shrink for the
/// tail so every tile keeps a compile-time width.
inline void PlannedAccumRow(const float* a0, size_t av_stride, const float* b,
                            size_t b_stride, int k, int n, float* crow) {
  int j0 = 0;
  for (; j0 + 32 <= n; j0 += 32) {
    PlannedAccumTile<32>(a0, av_stride, b + j0, b_stride, k, crow + j0);
  }
  if (j0 + 16 <= n) {
    PlannedAccumTile<16>(a0, av_stride, b + j0, b_stride, k, crow + j0);
    j0 += 16;
  }
  if (j0 + 8 <= n) {
    PlannedAccumTile<8>(a0, av_stride, b + j0, b_stride, k, crow + j0);
    j0 += 8;
  }
  if (j0 + 4 <= n) {
    PlannedAccumTile<4>(a0, av_stride, b + j0, b_stride, k, crow + j0);
    j0 += 4;
  }
  for (; j0 < n; ++j0) {
    PlannedAccumTile<1>(a0, av_stride, b + j0, b_stride, k, crow + j0);
  }
}

/// One fixed-width tile of A * B^T given BT = B transposed: JB independent
/// double dot chains run side by side, each in ascending p exactly like
/// MatMulTransBRows (the transpose only changes the memory walk — per
/// element the double products and adds are the same values in the same
/// order). Contiguous `btrow` loads are what make the tile fast.
template <int JB>
inline void PlannedDotTile(const float* arow, const float* bt0,
                           size_t bt_stride, int k, float* ctile) {
  double acc[JB];
  for (int j = 0; j < JB; ++j) acc[j] = 0.0;
  for (int p = 0; p < k; ++p) {
    const double av = static_cast<double>(arow[p]);
    const float* btrow = bt0 + static_cast<size_t>(p) * bt_stride;
    for (int j = 0; j < JB; ++j) {
      acc[j] += av * static_cast<double>(btrow[j]);
    }
  }
  for (int j = 0; j < JB; ++j) ctile[j] = static_cast<float>(acc[j]);
}

inline float FusedActApply(float x, FusedAct act) {
  switch (act) {
    case FusedAct::kNone:
      return x;
    case FusedAct::kRelu:
      return ReluScalar(x);
    case FusedAct::kSigmoid:
      return SigmoidScalar(x);
    case FusedAct::kTanh:
      return TanhScalar(x);
  }
  return x;
}

inline float EltwiseApplySteps(float cur, size_t i, const EltwiseStep* steps,
                               int num_steps) {
  for (int s = 0; s < num_steps; ++s) {
    const EltwiseStep& st = steps[s];
    switch (st.op) {
      case EltwiseOp::kAddMat:
        cur = cur + st.side[i];
        break;
      case EltwiseOp::kSubMat:
        cur = st.rhs ? st.side[i] - cur : cur - st.side[i];
        break;
      case EltwiseOp::kMulMat:
        cur = cur * st.side[i];
        break;
      case EltwiseOp::kScale:
        cur = st.scalar * cur;
        break;
      case EltwiseOp::kAddScalar:
        cur = cur + st.scalar;
        break;
      case EltwiseOp::kOneMinus:
        cur = 1.f - cur;
        break;
      case EltwiseOp::kSoftplus:
        cur = SoftplusScalar(cur);
        break;
      case EltwiseOp::kRelu:
        cur = ReluScalar(cur);
        break;
      case EltwiseOp::kSigmoid:
        cur = SigmoidScalar(cur);
        break;
      case EltwiseOp::kTanh:
        cur = TanhScalar(cur);
        break;
      case EltwiseOp::kExp:
        cur = ExpScalar(cur);
        break;
    }
  }
  return cur;
}

}  // namespace

void PlannedMatMulAccumRows(const Matrix& a, const Matrix& b, Matrix* out,
                            int64_t r0, int64_t r1) {
  const int k = a.cols(), n = b.cols();
  for (int64_t i = r0; i < r1; ++i) {
    PlannedAccumRow(a.row(static_cast<int>(i)), 1, b.data(), n, k, n,
                    out->row(static_cast<int>(i)));
  }
}

void PlannedMatMulTransARows(const Matrix& a, const Matrix& b, Matrix* out,
                             int64_t r0, int64_t r1) {
  const int k = a.rows(), n = b.cols(), m = a.cols();
  for (int64_t i = r0; i < r1; ++i) {
    PlannedAccumRow(a.data() + i, static_cast<size_t>(m), b.data(), n, k, n,
                    out->row(static_cast<int>(i)));
  }
}

void PlannedMatMulTransBRows(const Matrix& a, const Matrix& bt, Matrix* out,
                             int64_t r0, int64_t r1) {
  const int k = a.cols(), n = bt.cols();
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a.row(static_cast<int>(i));
    float* crow = out->row(static_cast<int>(i));
    int j0 = 0;
    for (; j0 + 8 <= n; j0 += 8) {
      PlannedDotTile<8>(arow, bt.data() + j0, n, k, crow + j0);
    }
    if (j0 + 4 <= n) {
      PlannedDotTile<4>(arow, bt.data() + j0, n, k, crow + j0);
      j0 += 4;
    }
    if (j0 + 2 <= n) {
      PlannedDotTile<2>(arow, bt.data() + j0, n, k, crow + j0);
      j0 += 2;
    }
    if (j0 < n) PlannedDotTile<1>(arow, bt.data() + j0, n, k, crow + j0);
  }
}

void FusedMatMulRows(const Matrix& a, const Matrix& b, const Matrix* bias,
                     FusedAct act, Matrix* out, int64_t r0, int64_t r1) {
  PlannedMatMulAccumRows(a, b, out, r0, r1);
  const int n = b.cols();
  const float* brow = bias != nullptr ? bias->row(0) : nullptr;
  for (int64_t r = r0; r < r1; ++r) {
    float* crow = out->row(static_cast<int>(r));
    if (brow != nullptr) {
      for (int j = 0; j < n; ++j) crow[j] = crow[j] + brow[j];
    }
    if (act != FusedAct::kNone) {
      for (int j = 0; j < n; ++j) crow[j] = FusedActApply(crow[j], act);
    }
  }
}

void FusedEltwiseRange(const Matrix& a, const EltwiseStep* steps,
                       int num_steps, Matrix* out, int64_t i0, int64_t i1) {
  const float* in = a.data();
  float* o = out->data();
  for (int64_t i = i0; i < i1; ++i) {
    o[i] = EltwiseApplySteps(in[i], static_cast<size_t>(i), steps, num_steps);
  }
}

int64_t EltwiseChainCost(const EltwiseStep* steps, int num_steps) {
  int64_t cost = 1;
  for (int s = 0; s < num_steps; ++s) {
    switch (steps[s].op) {
      case EltwiseOp::kSoftplus:
      case EltwiseOp::kSigmoid:
      case EltwiseOp::kTanh:
      case EltwiseOp::kExp:
        cost += kTranscendentalCost;
        break;
      default:
        cost += 1;
        break;
    }
  }
  return cost;
}

}  // namespace nmcdr
