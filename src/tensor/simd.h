#ifndef NMCDR_TENSOR_SIMD_H_
#define NMCDR_TENSOR_SIMD_H_

#include <cstring>

// Portable fixed-width lane abstraction for the explicitly vectorized
// kernel cores (tensor/vector_kernels.cc). Two interchangeable
// implementations sit behind the same tiny API:
//
//   - GNU vector extensions (__attribute__((vector_size))) on GCC/Clang:
//     the compiler lowers lane-wise + and * directly to SSE/AVX/NEON
//     without any per-ISA intrinsics in this repo.
//   - A plain fixed-trip struct fallback everywhere else; -O2/-O3
//     auto-vectorize the unrolled loops, and even un-vectorized the code
//     is correct.
//
// Bit-exactness contract: every operation here is LANE-WISE — lane j of
// the result is exactly the scalar IEEE op applied to lane j of the
// inputs, in the one obvious order. There is no horizontal reduction, no
// shuffle, no FMA (MulAdd is an explicit multiply THEN add; the TU using
// it compiles with -ffp-contract=off so the compiler may not contract the
// pair either). A kernel built from these lanes therefore computes each
// output element with the same float/double operation sequence as a
// scalar loop over the same element — which is the whole backend
// equivalence contract (tensor/backend.h).

#if defined(__GNUC__) && !defined(NMCDR_SIMD_FORCE_SCALAR)
#define NMCDR_SIMD_VECTOR_EXT 1
#else
#define NMCDR_SIMD_VECTOR_EXT 0
#endif

namespace nmcdr {
namespace simd {

/// Lane counts of the two register types. 8 floats / 4 doubles = 256-bit
/// registers (one AVX ymm, two SSE/NEON registers) — wide enough to feed
/// the FP units, narrow enough that a handful of accumulator tiles still
/// fit in the register file on 128-bit targets.
inline constexpr int kFloatLanes = 8;
inline constexpr int kDoubleLanes = 4;

#if NMCDR_SIMD_VECTOR_EXT

struct F32x8 {
  typedef float Native __attribute__((vector_size(kFloatLanes * sizeof(float))));
  Native v;
};

struct F64x4 {
  typedef double Native
      __attribute__((vector_size(kDoubleLanes * sizeof(double))));
  Native v;
};

inline F32x8 ZeroF32() { return F32x8{F32x8::Native{}}; }

inline F32x8 SplatF32(float x) {
  return F32x8{F32x8::Native{} + x};  // scalar-vector op broadcasts
}

inline F32x8 LoadF32(const float* p) {
  F32x8 r;
  std::memcpy(&r.v, p, sizeof(r.v));  // unaligned-safe
  return r;
}

inline void StoreF32(float* p, F32x8 a) { std::memcpy(p, &a.v, sizeof(a.v)); }

inline F32x8 Add(F32x8 a, F32x8 b) { return F32x8{a.v + b.v}; }
inline F32x8 Mul(F32x8 a, F32x8 b) { return F32x8{a.v * b.v}; }

inline F64x4 ZeroF64() { return F64x4{F64x4::Native{}}; }

inline F64x4 SplatF64(double x) { return F64x4{F64x4::Native{} + x}; }

/// Widens 4 consecutive floats to double lanes (exact — float -> double is
/// value-preserving).
inline F64x4 WidenLoadF64(const float* p) {
  typedef float Half __attribute__((vector_size(kDoubleLanes * sizeof(float))));
  Half h;
  std::memcpy(&h, p, sizeof(h));
  return F64x4{__builtin_convertvector(h, F64x4::Native)};
}

inline F64x4 Add(F64x4 a, F64x4 b) { return F64x4{a.v + b.v}; }
inline F64x4 Mul(F64x4 a, F64x4 b) { return F64x4{a.v * b.v}; }

/// Rounds each double lane to float (one rounding step, matching the
/// scalar static_cast<float>(acc)).
inline void NarrowStoreF32(float* p, F64x4 a) {
  typedef float Half __attribute__((vector_size(kDoubleLanes * sizeof(float))));
  const Half h = __builtin_convertvector(a.v, Half);
  std::memcpy(p, &h, sizeof(h));
}

#else  // !NMCDR_SIMD_VECTOR_EXT — fixed-trip scalar fallback

struct F32x8 {
  float v[kFloatLanes];
};

struct F64x4 {
  double v[kDoubleLanes];
};

inline F32x8 ZeroF32() {
  F32x8 r;
  for (int j = 0; j < kFloatLanes; ++j) r.v[j] = 0.f;
  return r;
}

inline F32x8 SplatF32(float x) {
  F32x8 r;
  for (int j = 0; j < kFloatLanes; ++j) r.v[j] = x;
  return r;
}

inline F32x8 LoadF32(const float* p) {
  F32x8 r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
}

inline void StoreF32(float* p, F32x8 a) { std::memcpy(p, a.v, sizeof(a.v)); }

inline F32x8 Add(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int j = 0; j < kFloatLanes; ++j) r.v[j] = a.v[j] + b.v[j];
  return r;
}

inline F32x8 Mul(F32x8 a, F32x8 b) {
  F32x8 r;
  for (int j = 0; j < kFloatLanes; ++j) r.v[j] = a.v[j] * b.v[j];
  return r;
}

inline F64x4 ZeroF64() {
  F64x4 r;
  for (int j = 0; j < kDoubleLanes; ++j) r.v[j] = 0.0;
  return r;
}

inline F64x4 SplatF64(double x) {
  F64x4 r;
  for (int j = 0; j < kDoubleLanes; ++j) r.v[j] = x;
  return r;
}

inline F64x4 WidenLoadF64(const float* p) {
  F64x4 r;
  for (int j = 0; j < kDoubleLanes; ++j) r.v[j] = static_cast<double>(p[j]);
  return r;
}

inline F64x4 Add(F64x4 a, F64x4 b) {
  F64x4 r;
  for (int j = 0; j < kDoubleLanes; ++j) r.v[j] = a.v[j] + b.v[j];
  return r;
}

inline F64x4 Mul(F64x4 a, F64x4 b) {
  F64x4 r;
  for (int j = 0; j < kDoubleLanes; ++j) r.v[j] = a.v[j] * b.v[j];
  return r;
}

inline void NarrowStoreF32(float* p, F64x4 a) {
  for (int j = 0; j < kDoubleLanes; ++j) p[j] = static_cast<float>(a.v[j]);
}

#endif  // NMCDR_SIMD_VECTOR_EXT

/// acc + a * b as two distinct IEEE operations. NOT an FMA: the using TU
/// compiles with -ffp-contract=off, so the product rounds before the add
/// exactly like the scalar reference kernels.
inline F32x8 MulAdd(F32x8 a, F32x8 b, F32x8 acc) { return Add(Mul(a, b), acc); }
inline F64x4 MulAdd(F64x4 a, F64x4 b, F64x4 acc) { return Add(Mul(a, b), acc); }

}  // namespace simd
}  // namespace nmcdr

#endif  // NMCDR_TENSOR_SIMD_H_
