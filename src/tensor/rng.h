#ifndef NMCDR_TENSOR_RNG_H_
#define NMCDR_TENSOR_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nmcdr {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All stochastic components in this repo (init, sampling,
/// synthetic data) draw from explicitly passed Rng instances so every
/// experiment is reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). Requires bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi);

  /// Standard normal via Box-Muller.
  float Gaussian();

  /// Gaussian with the given mean and standard deviation.
  float Gaussian(float mean, float stddev);

  /// True with probability p (p clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportional to `weights`.
  /// Weights must be non-negative with a positive sum.
  int SampleDiscrete(const std::vector<double>& weights);

  /// Draws a Zipf-distributed rank in [0, n) with exponent s: the classic
  /// long-tail popularity law used by the synthetic item-popularity model.
  /// Uses inverse-CDF over precomputed weights externally; this helper uses
  /// rejection-free linear search suitable for small n — prefer
  /// ZipfSampler for repeated draws.
  int Zipf(int n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextUint64(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct values from [0, n) (k <= n), order unspecified.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  float spare_gaussian_ = 0.f;
};

/// Precomputed alias-free inverse-CDF Zipf sampler for repeated draws over a
/// fixed support size. Rank 0 is the most popular.
class ZipfSampler {
 public:
  /// Builds the CDF for `n` ranks with exponent `s` (> 0).
  ZipfSampler(int n, double s);

  /// Draws one rank in [0, n).
  int Sample(Rng* rng) const;

  /// Probability mass of rank r.
  double Pmf(int r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_RNG_H_
