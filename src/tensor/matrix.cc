#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nmcdr {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, 0.f) {
  NMCDR_CHECK_GE(rows, 0);
  NMCDR_CHECK_GE(cols, 0);
}

Matrix::Matrix(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, fill) {
  NMCDR_CHECK_GE(rows, 0);
  NMCDR_CHECK_GE(cols, 0);
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  NMCDR_CHECK(!rows.empty());
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows(); ++r) {
    NMCDR_CHECK_EQ(rows[r].size(), rows[0].size());
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.At(i, i) = 1.f;
  return m;
}

Matrix Matrix::Gaussian(int rows, int cols, Rng* rng, float mean,
                        float stddev) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian(mean, stddev);
  return m;
}

Matrix Matrix::Xavier(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  const float a = std::sqrt(6.f / static_cast<float>(rows + cols));
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-a, a);
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Matrix::Mean() const {
  NMCDR_CHECK_GT(size(), 0);
  return Sum() / static_cast<float>(size());
}

float Matrix::Min() const {
  NMCDR_CHECK_GT(size(), 0);
  return *std::min_element(data_.begin(), data_.end());
}

float Matrix::Max() const {
  NMCDR_CHECK_GT(size(), 0);
  return *std::max_element(data_.begin(), data_.end());
}

float Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::SpectralNorm(int iters) const {
  if (empty()) return 0.f;
  // Power iteration on A^T A.
  Rng rng(12345);
  std::vector<double> v(cols_);
  for (double& x : v) x = rng.Gaussian();
  std::vector<double> av(rows_), atav(cols_);
  double sigma = 0.0;
  for (int it = 0; it < iters; ++it) {
    // av = A v
    for (int r = 0; r < rows_; ++r) {
      double acc = 0.0;
      const float* rp = row(r);
      for (int c = 0; c < cols_; ++c) acc += static_cast<double>(rp[c]) * v[c];
      av[r] = acc;
    }
    // atav = A^T av
    std::fill(atav.begin(), atav.end(), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const float* rp = row(r);
      for (int c = 0; c < cols_; ++c) atav[c] += static_cast<double>(rp[c]) * av[r];
    }
    double norm = 0.0;
    for (double x : atav) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-30) return 0.f;
    for (int c = 0; c < cols_; ++c) v[c] = atav[c] / norm;
    double av_norm = 0.0;
    for (double x : av) av_norm += x * x;
    sigma = std::sqrt(av_norm);
  }
  return static_cast<float>(sigma);
}

std::string Matrix::DebugString() const {
  std::ostringstream oss;
  oss << "Matrix(" << rows_ << "x" << cols_ << ")";
  const int max_rows = std::min(rows_, 8);
  const int max_cols = std::min(cols_, 8);
  for (int r = 0; r < max_rows; ++r) {
    oss << "\n  [";
    for (int c = 0; c < max_cols; ++c) {
      if (c > 0) oss << ", ";
      oss << At(r, c);
    }
    if (max_cols < cols_) oss << ", ...";
    oss << "]";
  }
  if (max_rows < rows_) oss << "\n  ...";
  return oss.str();
}

bool AllClose(const Matrix& a, const Matrix& b, float atol) {
  if (!a.SameShape(b)) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > atol) return false;
  }
  return true;
}

}  // namespace nmcdr
