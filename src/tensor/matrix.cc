#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "tensor/arena.h"

namespace nmcdr {
namespace {

thread_local int64_t tl_heap_alloc_count = 0;

}  // namespace

int64_t Matrix::HeapAllocCount() { return tl_heap_alloc_count; }

void Matrix::AllocStorage(size_t n, float fill) {
  if (n == 0) {
    ptr_ = nullptr;
    return;
  }
  BumpArena* arena = ActiveArena();
  if (arena != nullptr) {
    borrowed_ = true;
    ptr_ = arena->Alloc(n);
    for (size_t i = 0; i < n; ++i) ptr_[i] = fill;
    return;
  }
  const bool grows = owned_.capacity() < n;
  owned_.assign(n, fill);
  if (grows) ++tl_heap_alloc_count;
  ptr_ = owned_.data();
}

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  NMCDR_CHECK_GE(rows, 0);
  NMCDR_CHECK_GE(cols, 0);
  AllocStorage(static_cast<size_t>(rows) * cols, 0.f);
}

Matrix::Matrix(int rows, int cols, float fill) : rows_(rows), cols_(cols) {
  NMCDR_CHECK_GE(rows, 0);
  NMCDR_CHECK_GE(cols, 0);
  AllocStorage(static_cast<size_t>(rows) * cols, fill);
}

Matrix::Matrix(const Matrix& other) : rows_(other.rows_), cols_(other.cols_) {
  // Copies always own their storage (never borrow the source's arena).
  const size_t n = static_cast<size_t>(rows_) * cols_;
  if (n == 0) return;
  NMCDR_DCHECK(other.has_storage());
  ++tl_heap_alloc_count;
  owned_.assign(other.ptr_, other.ptr_ + n);
  ptr_ = owned_.data();
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  borrowed_ = false;
  const size_t n = static_cast<size_t>(rows_) * cols_;
  if (n == 0) {
    owned_.clear();
    ptr_ = nullptr;
    return *this;
  }
  NMCDR_DCHECK(other.has_storage());
  // Reuses existing capacity: steady-state member copies are alloc-free.
  const bool grows = owned_.capacity() < n;
  owned_.assign(other.ptr_, other.ptr_ + n);
  if (grows) ++tl_heap_alloc_count;
  ptr_ = owned_.data();
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      ptr_(other.ptr_),
      borrowed_(other.borrowed_),
      owned_(std::move(other.owned_)) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.ptr_ = nullptr;
  other.borrowed_ = false;
  other.owned_.clear();
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  ptr_ = other.ptr_;
  borrowed_ = other.borrowed_;
  owned_ = std::move(other.owned_);
  other.rows_ = 0;
  other.cols_ = 0;
  other.ptr_ = nullptr;
  other.borrowed_ = false;
  other.owned_.clear();
  return *this;
}

Matrix Matrix::ShapeOnly(int rows, int cols) {
  NMCDR_DCHECK_GE(rows, 0);
  NMCDR_DCHECK_GE(cols, 0);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  NMCDR_CHECK(!rows.empty());
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (int r = 0; r < m.rows(); ++r) {
    NMCDR_CHECK_EQ(rows[r].size(), rows[0].size());
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.At(i, i) = 1.f;
  return m;
}

Matrix Matrix::Gaussian(int rows, int cols, Rng* rng, float mean,
                        float stddev) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian(mean, stddev);
  return m;
}

Matrix Matrix::Xavier(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  const float a = std::sqrt(6.f / static_cast<float>(rows + cols));
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-a, a);
  return m;
}

void Matrix::Fill(float value) {
  std::fill(ptr_, ptr_ + size(), value);
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (int i = 0; i < size(); ++i) acc += ptr_[i];
  return static_cast<float>(acc);
}

float Matrix::Mean() const {
  NMCDR_CHECK_GT(size(), 0);
  return Sum() / static_cast<float>(size());
}

float Matrix::Min() const {
  NMCDR_CHECK_GT(size(), 0);
  return *std::min_element(ptr_, ptr_ + size());
}

float Matrix::Max() const {
  NMCDR_CHECK_GT(size(), 0);
  return *std::max_element(ptr_, ptr_ + size());
}

float Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (int i = 0; i < size(); ++i) acc += static_cast<double>(ptr_[i]) * ptr_[i];
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::SpectralNorm(int iters) const {
  if (empty()) return 0.f;
  // Power iteration on A^T A.
  Rng rng(12345);
  std::vector<double> v(cols_);
  for (double& x : v) x = rng.Gaussian();
  std::vector<double> av(rows_), atav(cols_);
  double sigma = 0.0;
  for (int it = 0; it < iters; ++it) {
    // av = A v
    for (int r = 0; r < rows_; ++r) {
      double acc = 0.0;
      const float* rp = row(r);
      for (int c = 0; c < cols_; ++c) acc += static_cast<double>(rp[c]) * v[c];
      av[r] = acc;
    }
    // atav = A^T av
    std::fill(atav.begin(), atav.end(), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const float* rp = row(r);
      for (int c = 0; c < cols_; ++c) atav[c] += static_cast<double>(rp[c]) * av[r];
    }
    double norm = 0.0;
    for (double x : atav) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-30) return 0.f;
    for (int c = 0; c < cols_; ++c) v[c] = atav[c] / norm;
    double av_norm = 0.0;
    for (double x : av) av_norm += x * x;
    sigma = std::sqrt(av_norm);
  }
  return static_cast<float>(sigma);
}

std::string Matrix::DebugString() const {
  std::ostringstream oss;
  oss << "Matrix(" << rows_ << "x" << cols_ << ")";
  const int max_rows = std::min(rows_, 8);
  const int max_cols = std::min(cols_, 8);
  for (int r = 0; r < max_rows; ++r) {
    oss << "\n  [";
    for (int c = 0; c < max_cols; ++c) {
      if (c > 0) oss << ", ";
      oss << At(r, c);
    }
    if (max_cols < cols_) oss << ", ...";
    oss << "]";
  }
  if (max_rows < rows_) oss << "\n  ...";
  return oss.str();
}

bool AllClose(const Matrix& a, const Matrix& b, float atol) {
  if (!a.SameShape(b)) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > atol) return false;
  }
  return true;
}

}  // namespace nmcdr
