// Explicitly vectorized GEMM tile cores (tensor/vector_kernels.h).
//
// Like fused_kernels.cc, this translation unit is compiled at -O3 with
// -ffp-contract=off (src/tensor/CMakeLists.txt): every accumulator chain
// below is an independent per-output-element sequence the compiler may
// not reassociate, the lane ops from tensor/simd.h are lane-wise IEEE
// operations with no horizontal reduction, and contraction of the
// explicit multiply-then-add pairs into FMAs — the one transform that
// could change rounding — is forbidden. The eager kernels in backend.cc
// stay at the default level as the readable reference these cores are
// audited against, bit for bit.

#include "tensor/vector_kernels.h"

#include <algorithm>

#include "tensor/scalar_kernels.h"
#include "tensor/simd.h"

namespace nmcdr {
namespace {

using simd::F32x8;
using simd::F64x4;
using simd::kDoubleLanes;
using simd::kFloatLanes;

/// Mirrors backend.cc's min scalar work per pool chunk (kept in sync by
/// value; a scheduling knob only — never affects results).
constexpr int64_t kMinTileWork = 1 << 15;

/// One register tile of `acc[j] += av * b[p][j]` accumulation, NV lanes of
/// kFloatLanes floats wide. The fixed register count lets the compiler
/// keep every accumulator in a vector register across the whole p loop;
/// the shared `av == 0` skip and ascending-p order are exactly the scalar
/// reference chain (backend.cc MatMulAccumRows). `av_stride` strides the
/// per-p A element (1 for row-major A rows, a.cols() for the TransA walk
/// down an A column).
template <int NV>
inline void AccumRegTile(const float* a0, size_t av_stride, const float* b0,
                         size_t b_stride, int64_t k, float* ctile) {
  F32x8 acc[NV];
  for (int u = 0; u < NV; ++u) acc[u] = simd::LoadF32(ctile + u * kFloatLanes);
  for (int64_t p = 0; p < k; ++p) {
    const float av = a0[static_cast<size_t>(p) * av_stride];
    if (av == 0.f) continue;
    const F32x8 avv = simd::SplatF32(av);
    const float* brow = b0 + static_cast<size_t>(p) * b_stride;
    for (int u = 0; u < NV; ++u) {
      acc[u] = simd::MulAdd(avv, simd::LoadF32(brow + u * kFloatLanes), acc[u]);
    }
  }
  for (int u = 0; u < NV; ++u) simd::StoreF32(ctile + u * kFloatLanes, acc[u]);
}

/// Accumulates one output-row span of `n` columns: widest register tiles
/// first (4 x 8 lanes = 32 columns), then single-register tiles, then a
/// scalar tail with the identical per-element chain.
inline void AccumRowSpan(const float* a0, size_t av_stride, const float* b0,
                         size_t b_stride, int64_t k, int64_t n, float* crow) {
  int64_t j = 0;
  for (; j + 4 * kFloatLanes <= n; j += 4 * kFloatLanes) {
    AccumRegTile<4>(a0, av_stride, b0 + j, b_stride, k, crow + j);
  }
  for (; j + kFloatLanes <= n; j += kFloatLanes) {
    AccumRegTile<1>(a0, av_stride, b0 + j, b_stride, k, crow + j);
  }
  for (; j < n; ++j) {
    float acc = crow[j];
    for (int64_t p = 0; p < k; ++p) {
      const float av = a0[static_cast<size_t>(p) * av_stride];
      if (av == 0.f) continue;
      acc += av * b0[static_cast<size_t>(p) * b_stride + j];
    }
    crow[j] = acc;
  }
}

/// One register tile of the A * B^T double-dot family: NV lanes of
/// kDoubleLanes independent double chains, each ascending p exactly like
/// MatMulTransBRows; the single float rounding happens at the store.
template <int NV>
inline void DotRegTile(const float* arow, const float* bt0, size_t bt_stride,
                       int64_t k, float* ctile) {
  F64x4 acc[NV];
  for (int u = 0; u < NV; ++u) acc[u] = simd::ZeroF64();
  for (int64_t p = 0; p < k; ++p) {
    const F64x4 avv = simd::SplatF64(static_cast<double>(arow[p]));
    const float* btrow = bt0 + static_cast<size_t>(p) * bt_stride;
    for (int u = 0; u < NV; ++u) {
      acc[u] = simd::MulAdd(avv, simd::WidenLoadF64(btrow + u * kDoubleLanes),
                            acc[u]);
    }
  }
  for (int u = 0; u < NV; ++u) {
    simd::NarrowStoreF32(ctile + u * kDoubleLanes, acc[u]);
  }
}

inline void DotRowSpan(const float* arow, const float* bt0, size_t bt_stride,
                       int64_t k, int64_t n, float* crow) {
  int64_t j = 0;
  for (; j + 2 * kDoubleLanes <= n; j += 2 * kDoubleLanes) {
    DotRegTile<2>(arow, bt0 + j, bt_stride, k, crow + j);
  }
  for (; j + kDoubleLanes <= n; j += kDoubleLanes) {
    DotRegTile<1>(arow, bt0 + j, bt_stride, k, crow + j);
  }
  for (; j < n; ++j) {
    double acc = 0.0;
    const float* btcol = bt0 + j;
    for (int64_t p = 0; p < k; ++p) {
      acc += static_cast<double>(arow[p]) *
             static_cast<double>(btcol[static_cast<size_t>(p) * bt_stride]);
    }
    crow[j] = static_cast<float>(acc);
  }
}

inline float FusedActApply(float x, FusedAct act) {
  switch (act) {
    case FusedAct::kNone:
      return x;
    case FusedAct::kRelu:
      return ReluScalar(x);
    case FusedAct::kSigmoid:
      return SigmoidScalar(x);
    case FusedAct::kTanh:
      return TanhScalar(x);
  }
  return x;
}

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

void VectorMatMulAccumTile(const Matrix& a, const Matrix& b, Matrix* out,
                           int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
  const int64_t k = a.cols(), n = c1 - c0;
  const float* bbase = b.data() + c0;
  for (int64_t i = r0; i < r1; ++i) {
    AccumRowSpan(a.row(static_cast<int>(i)), 1, bbase, b.cols(), k, n,
                 out->row(static_cast<int>(i)) + c0);
  }
}

void VectorMatMulTransATile(const Matrix& a, const Matrix& b, Matrix* out,
                            int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
  // Output row i is column i of A: the per-p A element strides by
  // a.cols(), everything else matches the plain accumulate tile.
  const int64_t k = a.rows(), n = c1 - c0;
  const float* bbase = b.data() + c0;
  for (int64_t i = r0; i < r1; ++i) {
    AccumRowSpan(a.data() + i, static_cast<size_t>(a.cols()), bbase, b.cols(),
                 k, n, out->row(static_cast<int>(i)) + c0);
  }
}

void VectorMatMulTransBTile(const Matrix& a, const Matrix& bt, Matrix* out,
                            int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
  const int64_t k = a.cols(), n = c1 - c0;
  const float* btbase = bt.data() + c0;
  for (int64_t i = r0; i < r1; ++i) {
    DotRowSpan(a.row(static_cast<int>(i)), btbase, bt.cols(), k, n,
               out->row(static_cast<int>(i)) + c0);
  }
}

void VectorFusedMatMulTile(const Matrix& a, const Matrix& b,
                           const Matrix* bias, FusedAct act, Matrix* out,
                           int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
  VectorMatMulAccumTile(a, b, out, r0, r1, c0, c1);
  const int64_t n = c1 - c0;
  const float* brow = bias != nullptr ? bias->row(0) + c0 : nullptr;
  for (int64_t r = r0; r < r1; ++r) {
    float* crow = out->row(static_cast<int>(r)) + c0;
    if (brow != nullptr) {
      for (int64_t j = 0; j < n; ++j) crow[j] = crow[j] + brow[j];
    }
    if (act != FusedAct::kNone) {
      for (int64_t j = 0; j < n; ++j) crow[j] = FusedActApply(crow[j], act);
    }
  }
}

GemmTileGrid MakeGemmTileGrid(int64_t rows, int64_t cols, int64_t k,
                              int threads) {
  GemmTileGrid g;
  g.rows = rows;
  g.cols = cols;
  if (rows <= 0 || cols <= 0) return g;  // num_tiles() == 0, nothing to run

  // Column tiles keep the active B panel (col_block * k floats) and the C
  // tile row L1/L2-resident; a 96-column output is served by one tile so
  // the common 64-wide hidden layers never pay a ragged tail.
  g.col_block = cols <= 96 ? cols : 64;
  g.col_tiles = CeilDiv(cols, g.col_block);

  // Row tiles: enough tiles that every worker gets ~2 (static chunking
  // balance), but never so thin that a tile undercuts the pool's min-work
  // grain — small shapes then collapse to one tile and run inline.
  const int64_t want_row_tiles =
      std::max<int64_t>(1, int64_t{2} * std::max(1, threads) / g.col_tiles);
  int64_t rb = CeilDiv(rows, want_row_tiles);
  const int64_t tile_cost = std::max<int64_t>(1, g.col_block * k);
  rb = std::max(rb, CeilDiv(kMinTileWork, tile_cost));
  g.row_block = std::min(rb, rows);
  g.row_tiles = CeilDiv(rows, g.row_block);
  return g;
}

}  // namespace nmcdr
