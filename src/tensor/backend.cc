#include "tensor/backend.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "tensor/fused_kernels.h"
#include "tensor/scalar_kernels.h"
#include "tensor/vector_kernels.h"

namespace nmcdr {
namespace {

/// Minimum scalar work per ParallelFor chunk. Below roughly this many
/// flops the fork/join handshake costs more than the loop; tiny kernels
/// therefore collapse to a single chunk and run inline on the caller.
constexpr int64_t kMinWorkPerChunk = 1 << 15;

/// Rows (or columns / flat elements) per chunk for a kernel whose
/// per-row cost is `cost_per_row` scalar ops.
int64_t GrainFor(int64_t cost_per_row) {
  return std::max<int64_t>(1, kMinWorkPerChunk / std::max<int64_t>(1, cost_per_row));
}

// ---------------------------------------------------------------------------
// Range kernels. Each computes output rows/columns/elements [begin, end)
// with the exact floating-point operation order of the seed repo's serial
// loops, so a sharded run is bit-identical to the serial one regardless of
// chunk boundaries (every output element lives in exactly one chunk).
// ---------------------------------------------------------------------------

/// ikj loop order: streams over B and C rows, cache-friendly row-major.
void MatMulAccumRows(const Matrix& a, const Matrix& b, Matrix* out,
                     int64_t r0, int64_t r1) {
  const int k = a.cols(), n = b.cols();
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a.row(static_cast<int>(i));
    float* crow = out->row(static_cast<int>(i));
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// (The row-range TransA kernel the parallel backend used to shard is
// gone: both the vector backend and the tile-sharded parallel path now
// run VectorMatMulTransATile, whose per-element chain — ascending p with
// the zero skip — still matches the serial p-outer reference below.)

void MatMulTransBRows(const Matrix& a, const Matrix& b, Matrix* out,
                      int64_t r0, int64_t r1) {
  const int k = a.cols(), n = b.rows();
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a.row(static_cast<int>(i));
    float* crow = out->row(static_cast<int>(i));
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
}

// The register-blocked GEMM cores and fused range kernels that replay
// these loops live in fused_kernels.cc (same operation sequence per output
// element, compiled at a higher optimization level — see the note there
// and in CMakeLists.txt).

/// Source rows [r0, r1): out(c, r) = a(r, c). A pure copy, so any shard
/// order is bit-exact; sharding by source row keeps reads streaming.
void TransposeRows(const Matrix& a, Matrix* out, int64_t r0, int64_t r1) {
  const int cols = a.cols(), rows = a.rows();
  for (int64_t r = r0; r < r1; ++r) {
    const float* arow = a.row(static_cast<int>(r));
    float* base = out->data() + r;
    for (int c = 0; c < cols; ++c) base[static_cast<size_t>(c) * rows] = arow[c];
  }
}

template <typename F>
void EwRange(const Matrix& a, Matrix* out, int64_t i0, int64_t i1, F f) {
  const float* in = a.data();
  float* o = out->data();
  for (int64_t i = i0; i < i1; ++i) o[i] = f(in[i]);
}

template <typename F>
void Ew2Range(const Matrix& a, const Matrix& b, Matrix* out, int64_t i0,
              int64_t i1, F f) {
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out->data();
  for (int64_t i = i0; i < i1; ++i) o[i] = f(pa[i], pb[i]);
}

void AxpyRange(const Matrix& a, float alpha, Matrix* out, int64_t i0,
               int64_t i1) {
  const float* in = a.data();
  float* o = out->data();
  for (int64_t i = i0; i < i1; ++i) o[i] += alpha * in[i];
}

void AddRowBroadcastRows(const Matrix& a, const Matrix& b, Matrix* out,
                         int64_t r0, int64_t r1) {
  const int cols = a.cols();
  const float* brow = b.row(0);
  for (int64_t r = r0; r < r1; ++r) {
    const float* arow = a.row(static_cast<int>(r));
    float* orow = out->row(static_cast<int>(r));
    for (int c = 0; c < cols; ++c) orow[c] = arow[c] + brow[c];
  }
}

void SoftmaxRowsRange(const Matrix& a, Matrix* out, int64_t r0, int64_t r1) {
  const int cols = a.cols();
  for (int64_t r = r0; r < r1; ++r) {
    const float* in = a.row(static_cast<int>(r));
    float* o = out->row(static_cast<int>(r));
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double total = 0.0;
    for (int c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      total += o[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (int c = 0; c < cols; ++c) o[c] *= inv;
  }
}

void RowSumRange(const Matrix& a, Matrix* out, int64_t r0, int64_t r1) {
  const int cols = a.cols();
  for (int64_t r = r0; r < r1; ++r) {
    double acc = 0.0;
    const float* arow = a.row(static_cast<int>(r));
    for (int c = 0; c < cols; ++c) acc += arow[c];
    out->At(static_cast<int>(r), 0) = static_cast<float>(acc);
  }
}

void RowDotRange(const Matrix& a, const Matrix& b, Matrix* out, int64_t r0,
                 int64_t r1) {
  const int cols = a.cols();
  for (int64_t r = r0; r < r1; ++r) {
    const float* ar = a.row(static_cast<int>(r));
    const float* br = b.row(static_cast<int>(r));
    double acc = 0.0;
    for (int c = 0; c < cols; ++c) acc += static_cast<double>(ar[c]) * br[c];
    out->At(static_cast<int>(r), 0) = static_cast<float>(acc);
  }
}

/// Columns [c0, c1): each column accumulates its rows in ascending row
/// order — the same per-column addition sequence as the serial row-outer
/// loop, so the column-sharded reduction is bit-exact.
void ColSumCols(const Matrix& a, Matrix* out, int64_t c0, int64_t c1) {
  const int rows = a.rows();
  float* o = out->row(0);
  for (int r = 0; r < rows; ++r) {
    const float* arow = a.row(r);
    for (int64_t c = c0; c < c1; ++c) o[c] += arow[c];
  }
}

void GatherRowsRange(const Matrix& table, const std::vector<int>& ids,
                     Matrix* out, int64_t i0, int64_t i1) {
  const int cols = table.cols();
  for (int64_t i = i0; i < i1; ++i) {
    NMCDR_DCHECK_GE(ids[i], 0);
    NMCDR_DCHECK_LT(ids[i], table.rows());
    const float* src = table.row(ids[i]);
    float* dst = out->row(static_cast<int>(i));
    for (int c = 0; c < cols; ++c) dst[c] = src[c];
  }
}

/// Destination rows [d0, d1): scans the whole id list and applies only the
/// updates landing in this shard. Per destination row the updates happen
/// in ascending i — the serial order — so colliding ids reduce bit-exactly
/// while shards never write the same row.
void ScatterAddDestRows(const Matrix& src, const std::vector<int>& ids,
                        Matrix* out, int64_t d0, int64_t d1) {
  const int cols = src.cols();
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    if (id < d0 || id >= d1) continue;
    const float* s = src.row(static_cast<int>(i));
    float* d = out->row(id);
    for (int c = 0; c < cols; ++c) d[c] += s[c];
  }
}

void ConcatColsRows(const Matrix& a, const Matrix& b, Matrix* out, int64_t r0,
                    int64_t r1) {
  const int ac = a.cols(), bc = b.cols();
  for (int64_t r = r0; r < r1; ++r) {
    float* o = out->row(static_cast<int>(r));
    const float* ar = a.row(static_cast<int>(r));
    const float* br = b.row(static_cast<int>(r));
    for (int c = 0; c < ac; ++c) o[c] = ar[c];
    for (int c = 0; c < bc; ++c) o[ac + c] = br[c];
  }
}

// Scalar activation bodies (ReluScalar etc.) come from scalar_kernels.h;
// the fused range kernels and planned GEMM cores from fused_kernels.h;
// the vectorized GEMM tile cores from vector_kernels.h.

/// Runs a GEMM tile core over the 2-D output grid MakeGemmTileGrid picks
/// for this pool, fanning the flattened tile index out over ParallelFor.
/// Bit-exact for any grid: the vector cores compute each output element
/// with the serial reference's IEEE sequence, and every element lives in
/// exactly one tile.
template <typename TileFn>
void TiledGemm(ThreadPool* pool, int64_t rows, int64_t cols, int64_t k,
               TileFn tile) {
  const GemmTileGrid grid =
      MakeGemmTileGrid(rows, cols, k, pool->num_threads());
  pool->ParallelFor(0, grid.num_tiles(), /*grain=*/1,
                    [&](int64_t t0, int64_t t1) {
                      for (int64_t t = t0; t < t1; ++t) {
                        int64_t r0, r1, c0, c1;
                        grid.TileBounds(t, &r0, &r1, &c0, &c1);
                        tile(r0, r1, c0, c1);
                      }
                    });
}

}  // namespace

// ---------------------------------------------------------------------------
// SerialBackend: the range kernels over the full range on the caller.
// ---------------------------------------------------------------------------

void SerialBackend::MatMulAccumInto(const Matrix& a, const Matrix& b,
                                    Matrix* out) const {
  MatMulAccumRows(a, b, out, 0, a.rows());
}

Matrix SerialBackend::MatMulTransA(const Matrix& a, const Matrix& b) const {
  // p-outer streaming loop (reads each A/B row once); per output element
  // the accumulation order is ascending p, identical to MatMulTransARows.
  const int k = a.rows(), m = a.cols(), n = b.cols();
  Matrix out(m, n);
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* crow = out.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix SerialBackend::MatMulTransB(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), b.rows());
  MatMulTransBRows(a, b, &out, 0, a.rows());
  return out;
}

Matrix SerialBackend::Transpose(const Matrix& a) const {
  Matrix out(a.cols(), a.rows());
  TransposeRows(a, &out, 0, a.rows());
  return out;
}

Matrix SerialBackend::Add(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), a.cols());
  Ew2Range(a, b, &out, 0, a.size(), [](float x, float y) { return x + y; });
  return out;
}

Matrix SerialBackend::Sub(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), a.cols());
  Ew2Range(a, b, &out, 0, a.size(), [](float x, float y) { return x - y; });
  return out;
}

Matrix SerialBackend::Hadamard(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), a.cols());
  Ew2Range(a, b, &out, 0, a.size(), [](float x, float y) { return x * y; });
  return out;
}

Matrix SerialBackend::Axpby(const Matrix& a, float alpha, const Matrix& b,
                            float beta) const {
  Matrix out(a.rows(), a.cols());
  Ew2Range(a, b, &out, 0, a.size(), [alpha, beta](float x, float y) {
    return alpha * x + beta * y;
  });
  return out;
}

void SerialBackend::AxpyInto(const Matrix& a, float alpha, Matrix* out) const {
  AxpyRange(a, alpha, out, 0, a.size());
}

Matrix SerialBackend::Scale(const Matrix& a, float s) const {
  Matrix out(a.rows(), a.cols());
  EwRange(a, &out, 0, a.size(), [s](float x) { return s * x; });
  return out;
}

Matrix SerialBackend::AddScalar(const Matrix& a, float s) const {
  Matrix out(a.rows(), a.cols());
  EwRange(a, &out, 0, a.size(), [s](float x) { return x + s; });
  return out;
}

Matrix SerialBackend::AddRowBroadcast(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), a.cols());
  AddRowBroadcastRows(a, b, &out, 0, a.rows());
  return out;
}

Matrix SerialBackend::Relu(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  EwRange(a, &out, 0, a.size(), ReluScalar);
  return out;
}

Matrix SerialBackend::Sigmoid(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  EwRange(a, &out, 0, a.size(), SigmoidScalar);
  return out;
}

Matrix SerialBackend::Tanh(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  EwRange(a, &out, 0, a.size(), TanhScalar);
  return out;
}

Matrix SerialBackend::Softplus(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  EwRange(a, &out, 0, a.size(), SoftplusScalar);
  return out;
}

Matrix SerialBackend::Exp(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  EwRange(a, &out, 0, a.size(), ExpScalar);
  return out;
}

Matrix SerialBackend::Log(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  EwRange(a, &out, 0, a.size(), LogScalar);
  return out;
}

Matrix SerialBackend::SoftmaxRows(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  SoftmaxRowsRange(a, &out, 0, a.rows());
  return out;
}

Matrix SerialBackend::RowSum(const Matrix& a) const {
  Matrix out(a.rows(), 1);
  RowSumRange(a, &out, 0, a.rows());
  return out;
}

Matrix SerialBackend::RowDot(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), 1);
  RowDotRange(a, b, &out, 0, a.rows());
  return out;
}

Matrix SerialBackend::ColSum(const Matrix& a) const {
  Matrix out(1, a.cols());
  ColSumCols(a, &out, 0, a.cols());
  return out;
}

Matrix SerialBackend::GatherRows(const Matrix& table,
                                 const std::vector<int>& ids) const {
  Matrix out(static_cast<int>(ids.size()), table.cols());
  GatherRowsRange(table, ids, &out, 0, static_cast<int64_t>(ids.size()));
  return out;
}

void SerialBackend::ScatterAddRows(const Matrix& src,
                                   const std::vector<int>& ids,
                                   Matrix* out) const {
  for (size_t i = 0; i < ids.size(); ++i) {
    NMCDR_CHECK_GE(ids[i], 0);
    NMCDR_CHECK_LT(ids[i], out->rows());
  }
  ScatterAddDestRows(src, ids, out, 0, out->rows());
}

Matrix SerialBackend::ConcatCols(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), a.cols() + b.cols());
  ConcatColsRows(a, b, &out, 0, a.rows());
  return out;
}

void SerialBackend::FusedMatMulBiasActInto(const Matrix& a, const Matrix& b,
                                           const Matrix* bias, FusedAct act,
                                           Matrix* out) const {
  FusedMatMulRows(a, b, bias, act, out, 0, a.rows());
}

void SerialBackend::FusedEltwiseInto(const Matrix& a, const EltwiseStep* steps,
                                     int num_steps, Matrix* out) const {
  FusedEltwiseRange(a, steps, num_steps, out, 0, a.size());
}

Matrix SerialBackend::PlannedMatMulTransA(const Matrix& a,
                                          const Matrix& b) const {
  Matrix out(a.cols(), b.cols());
  PlannedMatMulTransARows(a, b, &out, 0, a.cols());
  return out;
}

Matrix SerialBackend::PlannedMatMulTransB(const Matrix& a,
                                          const Matrix& b) const {
  // Transposing B once costs k*n float moves against the m*k*n GEMM and
  // buys contiguous tile loads; the per-element double chain is untouched.
  Matrix bt(b.cols(), b.rows());
  TransposeRows(b, &bt, 0, b.rows());
  Matrix out(a.rows(), b.rows());
  PlannedMatMulTransBRows(a, bt, &out, 0, a.rows());
  return out;
}

// ---------------------------------------------------------------------------
// VectorBackend: the explicitly vectorized tile cores over the full output
// on the caller's thread; everything outside the GEMM family delegates to
// the serial reference (those kernels are memory-bound copies/element
// loops the vector cores would not improve).
// ---------------------------------------------------------------------------

void VectorBackend::MatMulAccumInto(const Matrix& a, const Matrix& b,
                                    Matrix* out) const {
  VectorMatMulAccumTile(a, b, out, 0, a.rows(), 0, b.cols());
}

Matrix VectorBackend::MatMulTransA(const Matrix& a, const Matrix& b) const {
  Matrix out(a.cols(), b.cols());
  VectorMatMulTransATile(a, b, &out, 0, a.cols(), 0, b.cols());
  return out;
}

Matrix VectorBackend::MatMulTransB(const Matrix& a, const Matrix& b) const {
  // One k*n transpose buys contiguous lane loads for the m*k*n GEMM; the
  // per-element double chain is untouched (see PlannedMatMulTransB).
  Matrix bt(b.cols(), b.rows());
  TransposeRows(b, &bt, 0, b.rows());
  Matrix out(a.rows(), b.rows());
  VectorMatMulTransBTile(a, bt, &out, 0, a.rows(), 0, b.rows());
  return out;
}

Matrix VectorBackend::Transpose(const Matrix& a) const {
  return SerialKernelBackend().Transpose(a);
}

Matrix VectorBackend::Add(const Matrix& a, const Matrix& b) const {
  return SerialKernelBackend().Add(a, b);
}

Matrix VectorBackend::Sub(const Matrix& a, const Matrix& b) const {
  return SerialKernelBackend().Sub(a, b);
}

Matrix VectorBackend::Hadamard(const Matrix& a, const Matrix& b) const {
  return SerialKernelBackend().Hadamard(a, b);
}

Matrix VectorBackend::Axpby(const Matrix& a, float alpha, const Matrix& b,
                            float beta) const {
  return SerialKernelBackend().Axpby(a, alpha, b, beta);
}

void VectorBackend::AxpyInto(const Matrix& a, float alpha, Matrix* out) const {
  SerialKernelBackend().AxpyInto(a, alpha, out);
}

Matrix VectorBackend::Scale(const Matrix& a, float s) const {
  return SerialKernelBackend().Scale(a, s);
}

Matrix VectorBackend::AddScalar(const Matrix& a, float s) const {
  return SerialKernelBackend().AddScalar(a, s);
}

Matrix VectorBackend::AddRowBroadcast(const Matrix& a, const Matrix& b) const {
  return SerialKernelBackend().AddRowBroadcast(a, b);
}

Matrix VectorBackend::Relu(const Matrix& a) const {
  return SerialKernelBackend().Relu(a);
}

Matrix VectorBackend::Sigmoid(const Matrix& a) const {
  return SerialKernelBackend().Sigmoid(a);
}

Matrix VectorBackend::Tanh(const Matrix& a) const {
  return SerialKernelBackend().Tanh(a);
}

Matrix VectorBackend::Softplus(const Matrix& a) const {
  return SerialKernelBackend().Softplus(a);
}

Matrix VectorBackend::Exp(const Matrix& a) const {
  return SerialKernelBackend().Exp(a);
}

Matrix VectorBackend::Log(const Matrix& a) const {
  return SerialKernelBackend().Log(a);
}

Matrix VectorBackend::SoftmaxRows(const Matrix& a) const {
  return SerialKernelBackend().SoftmaxRows(a);
}

Matrix VectorBackend::RowSum(const Matrix& a) const {
  return SerialKernelBackend().RowSum(a);
}

Matrix VectorBackend::RowDot(const Matrix& a, const Matrix& b) const {
  return SerialKernelBackend().RowDot(a, b);
}

Matrix VectorBackend::ColSum(const Matrix& a) const {
  return SerialKernelBackend().ColSum(a);
}

Matrix VectorBackend::GatherRows(const Matrix& table,
                                 const std::vector<int>& ids) const {
  return SerialKernelBackend().GatherRows(table, ids);
}

void VectorBackend::ScatterAddRows(const Matrix& src,
                                   const std::vector<int>& ids,
                                   Matrix* out) const {
  SerialKernelBackend().ScatterAddRows(src, ids, out);
}

Matrix VectorBackend::ConcatCols(const Matrix& a, const Matrix& b) const {
  return SerialKernelBackend().ConcatCols(a, b);
}

void VectorBackend::FusedMatMulBiasActInto(const Matrix& a, const Matrix& b,
                                           const Matrix* bias, FusedAct act,
                                           Matrix* out) const {
  VectorFusedMatMulTile(a, b, bias, act, out, 0, a.rows(), 0, b.cols());
}

void VectorBackend::FusedEltwiseInto(const Matrix& a, const EltwiseStep* steps,
                                     int num_steps, Matrix* out) const {
  FusedEltwiseRange(a, steps, num_steps, out, 0, a.size());
}

Matrix VectorBackend::PlannedMatMulTransA(const Matrix& a,
                                          const Matrix& b) const {
  return MatMulTransA(a, b);
}

Matrix VectorBackend::PlannedMatMulTransB(const Matrix& a,
                                          const Matrix& b) const {
  return MatMulTransB(a, b);
}

// ---------------------------------------------------------------------------
// ParallelBackend: GEMMs shard 2-D output tiles running the vector cores
// (a 512x64 product splits into a tile grid instead of starving on 512
// rows' worth of grain); everything else shards the serial range kernels.
// ---------------------------------------------------------------------------

void ParallelBackend::MatMulAccumInto(const Matrix& a, const Matrix& b,
                                      Matrix* out) const {
  TiledGemm(pool(), a.rows(), b.cols(), a.cols(),
            [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
              VectorMatMulAccumTile(a, b, out, r0, r1, c0, c1);
            });
}

Matrix ParallelBackend::MatMulTransA(const Matrix& a, const Matrix& b) const {
  Matrix out(a.cols(), b.cols());
  TiledGemm(pool(), a.cols(), b.cols(), a.rows(),
            [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
              VectorMatMulTransATile(a, b, &out, r0, r1, c0, c1);
            });
  return out;
}

Matrix ParallelBackend::MatMulTransB(const Matrix& a, const Matrix& b) const {
  // B is transposed once, inline (k*n against the m*k*n GEMM), then the
  // output tiles shard; every tile reads the same bt.
  Matrix bt(b.cols(), b.rows());
  TransposeRows(b, &bt, 0, b.rows());
  Matrix out(a.rows(), b.rows());
  TiledGemm(pool(), a.rows(), b.rows(), a.cols(),
            [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
              VectorMatMulTransBTile(a, bt, &out, r0, r1, c0, c1);
            });
  return out;
}

Matrix ParallelBackend::Transpose(const Matrix& a) const {
  Matrix out(a.cols(), a.rows());
  pool()->ParallelFor(0, a.rows(), GrainFor(a.cols()),
                      [&](int64_t r0, int64_t r1) {
                        TransposeRows(a, &out, r0, r1);
                      });
  return out;
}

Matrix ParallelBackend::Add(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), kMinWorkPerChunk,
                      [&](int64_t i0, int64_t i1) {
                        Ew2Range(a, b, &out, i0, i1,
                                 [](float x, float y) { return x + y; });
                      });
  return out;
}

Matrix ParallelBackend::Sub(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), kMinWorkPerChunk,
                      [&](int64_t i0, int64_t i1) {
                        Ew2Range(a, b, &out, i0, i1,
                                 [](float x, float y) { return x - y; });
                      });
  return out;
}

Matrix ParallelBackend::Hadamard(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), kMinWorkPerChunk,
                      [&](int64_t i0, int64_t i1) {
                        Ew2Range(a, b, &out, i0, i1,
                                 [](float x, float y) { return x * y; });
                      });
  return out;
}

Matrix ParallelBackend::Axpby(const Matrix& a, float alpha, const Matrix& b,
                              float beta) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), kMinWorkPerChunk,
                      [&](int64_t i0, int64_t i1) {
                        Ew2Range(a, b, &out, i0, i1,
                                 [alpha, beta](float x, float y) {
                                   return alpha * x + beta * y;
                                 });
                      });
  return out;
}

void ParallelBackend::AxpyInto(const Matrix& a, float alpha,
                               Matrix* out) const {
  pool()->ParallelFor(0, a.size(), kMinWorkPerChunk,
                      [&](int64_t i0, int64_t i1) {
                        AxpyRange(a, alpha, out, i0, i1);
                      });
}

Matrix ParallelBackend::Scale(const Matrix& a, float s) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), kMinWorkPerChunk,
                      [&](int64_t i0, int64_t i1) {
                        EwRange(a, &out, i0, i1,
                                [s](float x) { return s * x; });
                      });
  return out;
}

Matrix ParallelBackend::AddScalar(const Matrix& a, float s) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), kMinWorkPerChunk,
                      [&](int64_t i0, int64_t i1) {
                        EwRange(a, &out, i0, i1,
                                [s](float x) { return x + s; });
                      });
  return out;
}

Matrix ParallelBackend::AddRowBroadcast(const Matrix& a,
                                        const Matrix& b) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.rows(), GrainFor(a.cols()),
                      [&](int64_t r0, int64_t r1) {
                        AddRowBroadcastRows(a, b, &out, r0, r1);
                      });
  return out;
}

Matrix ParallelBackend::Relu(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), kMinWorkPerChunk,
                      [&](int64_t i0, int64_t i1) {
                        EwRange(a, &out, i0, i1, ReluScalar);
                      });
  return out;
}

Matrix ParallelBackend::Sigmoid(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), GrainFor(kTranscendentalCost),
                      [&](int64_t i0, int64_t i1) {
                        EwRange(a, &out, i0, i1, SigmoidScalar);
                      });
  return out;
}

Matrix ParallelBackend::Tanh(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), GrainFor(kTranscendentalCost),
                      [&](int64_t i0, int64_t i1) {
                        EwRange(a, &out, i0, i1, TanhScalar);
                      });
  return out;
}

Matrix ParallelBackend::Softplus(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), GrainFor(kTranscendentalCost),
                      [&](int64_t i0, int64_t i1) {
                        EwRange(a, &out, i0, i1, SoftplusScalar);
                      });
  return out;
}

Matrix ParallelBackend::Exp(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), GrainFor(kTranscendentalCost),
                      [&](int64_t i0, int64_t i1) {
                        EwRange(a, &out, i0, i1, ExpScalar);
                      });
  return out;
}

Matrix ParallelBackend::Log(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.size(), GrainFor(kTranscendentalCost),
                      [&](int64_t i0, int64_t i1) {
                        EwRange(a, &out, i0, i1, LogScalar);
                      });
  return out;
}

Matrix ParallelBackend::SoftmaxRows(const Matrix& a) const {
  Matrix out(a.rows(), a.cols());
  pool()->ParallelFor(0, a.rows(),
                      GrainFor(static_cast<int64_t>(a.cols()) *
                               kTranscendentalCost),
                      [&](int64_t r0, int64_t r1) {
                        SoftmaxRowsRange(a, &out, r0, r1);
                      });
  return out;
}

Matrix ParallelBackend::RowSum(const Matrix& a) const {
  Matrix out(a.rows(), 1);
  pool()->ParallelFor(0, a.rows(), GrainFor(a.cols()),
                      [&](int64_t r0, int64_t r1) {
                        RowSumRange(a, &out, r0, r1);
                      });
  return out;
}

Matrix ParallelBackend::RowDot(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), 1);
  pool()->ParallelFor(0, a.rows(), GrainFor(a.cols()),
                      [&](int64_t r0, int64_t r1) {
                        RowDotRange(a, b, &out, r0, r1);
                      });
  return out;
}

Matrix ParallelBackend::ColSum(const Matrix& a) const {
  // Column-sharded: every shard walks all rows but owns a disjoint column
  // range, keeping each column's accumulation in serial row order.
  Matrix out(1, a.cols());
  pool()->ParallelFor(0, a.cols(), GrainFor(a.rows()),
                      [&](int64_t c0, int64_t c1) {
                        ColSumCols(a, &out, c0, c1);
                      });
  return out;
}

Matrix ParallelBackend::GatherRows(const Matrix& table,
                                   const std::vector<int>& ids) const {
  Matrix out(static_cast<int>(ids.size()), table.cols());
  pool()->ParallelFor(0, static_cast<int64_t>(ids.size()),
                      GrainFor(table.cols()), [&](int64_t i0, int64_t i1) {
                        GatherRowsRange(table, ids, &out, i0, i1);
                      });
  return out;
}

void ParallelBackend::ScatterAddRows(const Matrix& src,
                                     const std::vector<int>& ids,
                                     Matrix* out) const {
  for (size_t i = 0; i < ids.size(); ++i) {
    NMCDR_CHECK_GE(ids[i], 0);
    NMCDR_CHECK_LT(ids[i], out->rows());
  }
  // Destination-row shards: each shard rescans the id list and applies
  // only its own rows, so colliding ids stay in serial order and shards
  // never touch the same output row. The rescan is pure overhead
  // multiplied by the shard count, so small scatters (the training-step
  // norm: a few hundred ids into a wide table) run the serial loop
  // inline — forking used to cost more than the adds (0.66x at 4 threads
  // in BENCH_kernels.json). Larger scatters fold the scan cost into the
  // grain: every shard must carry enough add work to pay for its own
  // pass over the id list.
  const int64_t adds = static_cast<int64_t>(ids.size()) * src.cols();
  if (adds < 4 * kMinWorkPerChunk) {
    ScatterAddDestRows(src, ids, out, 0, out->rows());
    return;
  }
  const int64_t per_dest_row =
      out->rows() > 0 ? std::max<int64_t>(1, adds / out->rows()) : 1;
  const int64_t min_work =
      kMinWorkPerChunk + static_cast<int64_t>(ids.size());
  pool()->ParallelFor(0, out->rows(),
                      std::max<int64_t>(1, min_work / per_dest_row),
                      [&](int64_t d0, int64_t d1) {
                        ScatterAddDestRows(src, ids, out, d0, d1);
                      });
}

Matrix ParallelBackend::ConcatCols(const Matrix& a, const Matrix& b) const {
  Matrix out(a.rows(), a.cols() + b.cols());
  pool()->ParallelFor(0, a.rows(), GrainFor(a.cols() + b.cols()),
                      [&](int64_t r0, int64_t r1) {
                        ConcatColsRows(a, b, &out, r0, r1);
                      });
  return out;
}

void ParallelBackend::FusedMatMulBiasActInto(const Matrix& a, const Matrix& b,
                                             const Matrix* bias, FusedAct act,
                                             Matrix* out) const {
  // The epilogue is column-wise independent, so it tiles with the GEMM:
  // each tile applies bias + activation to exactly its own elements.
  TiledGemm(pool(), a.rows(), b.cols(), a.cols(),
            [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
              VectorFusedMatMulTile(a, b, bias, act, out, r0, r1, c0, c1);
            });
}

void ParallelBackend::FusedEltwiseInto(const Matrix& a,
                                       const EltwiseStep* steps, int num_steps,
                                       Matrix* out) const {
  pool()->ParallelFor(0, a.size(), GrainFor(EltwiseChainCost(steps, num_steps)),
                      [&](int64_t i0, int64_t i1) {
                        FusedEltwiseRange(a, steps, num_steps, out, i0, i1);
                      });
}

Matrix ParallelBackend::PlannedMatMulTransA(const Matrix& a,
                                            const Matrix& b) const {
  // The planned (replay-path) backward GEMMs ride the same vector tile
  // cores: bit-exact with PlannedMatMulTransARows by the shared
  // per-element chain, and tile-sharded for the same scaling reason.
  return MatMulTransA(a, b);
}

Matrix ParallelBackend::PlannedMatMulTransB(const Matrix& a,
                                            const Matrix& b) const {
  return MatMulTransB(a, b);
}

// ---------------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------------

namespace {

thread_local const KernelBackend* tl_backend_override = nullptr;
std::atomic<const KernelBackend*> g_default_backend{nullptr};

const KernelBackend& BuiltinDefaultBackend() {
  static const KernelBackend* const backend = [] {
    const char* env = std::getenv("NMCDR_BACKEND");
    if (env != nullptr) {
      const KernelBackend* named = BackendByName(env);
      if (named != nullptr) return named;
      // Unknown value: fall through to the production default rather than
      // aborting — the knob is a tuning hint, not configuration.
    }
    return static_cast<const KernelBackend*>(&ParallelKernelBackend());
  }();
  return *backend;
}

}  // namespace

const SerialBackend& SerialKernelBackend() {
  static const SerialBackend backend;
  return backend;
}

const VectorBackend& VectorKernelBackend() {
  static const VectorBackend backend;
  return backend;
}

const KernelBackend* BackendByName(std::string_view name) {
  if (name == "serial") return &SerialKernelBackend();
  if (name == "vector") return &VectorKernelBackend();
  if (name == "parallel") return &ParallelKernelBackend();
  return nullptr;
}

const ParallelBackend& ParallelKernelBackend() {
  static const ParallelBackend backend;  // binds ThreadPool::Shared() lazily
  return backend;
}

const KernelBackend& CurrentBackend() {
  if (tl_backend_override != nullptr) return *tl_backend_override;
  const KernelBackend* d = g_default_backend.load(std::memory_order_acquire);
  return d != nullptr ? *d : BuiltinDefaultBackend();
}

void SetDefaultBackend(const KernelBackend* backend) {
  g_default_backend.store(backend, std::memory_order_release);
}

BackendGuard::BackendGuard(const KernelBackend* backend)
    : saved_(tl_backend_override), active_(backend != nullptr) {
  if (active_) tl_backend_override = backend;
}

BackendGuard::~BackendGuard() {
  if (active_) tl_backend_override = saved_;
}

const KernelBackend* BackendForThreads(int threads) {
  if (threads <= 0) return nullptr;
  if (threads == 1) return &SerialKernelBackend();
  return &ParallelKernelBackend();
}

}  // namespace nmcdr
