#ifndef NMCDR_TENSOR_MATRIX_H_
#define NMCDR_TENSOR_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "util/check.h"

namespace nmcdr {

/// Dense row-major float matrix: the single value type flowing through the
/// autograd engine. A row vector is a 1xN matrix; scalars are 1x1.
///
/// Copyable and movable; copies are deep.
///
/// Storage: normally an owning heap buffer. Inside an ArenaScope
/// (tensor/arena.h) the sized constructors borrow step-lifetime storage
/// from the active BumpArena instead — the graph-program replay path uses
/// this to run steady-state training with zero per-op heap allocations.
/// Copy construction/assignment ALWAYS produces owning heap storage (and
/// copy-assignment reuses existing capacity), so copying an op result into
/// a long-lived member remains safe under an arena and allocation-free
/// once capacity is warm. Moves preserve whatever storage the source had.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols);

  /// rows x cols matrix filled with `fill`.
  Matrix(int rows, int cols, float fill);

  Matrix(const Matrix& other);
  Matrix& operator=(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix() = default;

  /// A matrix that carries shape but NO storage: data() is null and any
  /// element access faults loudly. The program replay path hands these out
  /// for fused-away intermediates whose values are never materialized;
  /// only rows()/cols() may be read.
  static Matrix ShapeOnly(int rows, int cols);

  /// True when elements are actually backed by storage (empty matrices
  /// count as backed). False only for ShapeOnly results.
  bool has_storage() const { return ptr_ != nullptr || size() == 0; }

  /// True when the storage is borrowed from a BumpArena (valid only until
  /// the arena's next ResetStep).
  bool arena_backed() const { return borrowed_; }

  /// Process-wide count of heap buffer allocations made by matrices on
  /// this thread (owning constructions plus capacity growth on
  /// copy-assign). The zero-alloc training tests assert this stays flat
  /// across steady-state replay steps.
  static int64_t HeapAllocCount();

  /// Builds a matrix from nested initializer data (row-major), used by
  /// tests for literal fixtures. All rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// All-zeros / all-ones factories.
  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Ones(int rows, int cols) { return Matrix(rows, cols, 1.f); }

  /// Identity matrix of size n.
  static Matrix Identity(int n);

  /// I.i.d. N(mean, stddev^2) entries.
  static Matrix Gaussian(int rows, int cols, Rng* rng, float mean = 0.f,
                         float stddev = 1.f);

  /// Xavier/Glorot uniform init: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
  /// The default init for all trainable weight matrices in this repo.
  static Matrix Xavier(int rows, int cols, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Total element count.
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  /// Bounds-checked element access.
  float& At(int r, int c) {
    NMCDR_CHECK_GE(r, 0);
    NMCDR_CHECK_LT(r, rows_);
    NMCDR_CHECK_GE(c, 0);
    NMCDR_CHECK_LT(c, cols_);
    return ptr_[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    NMCDR_CHECK_GE(r, 0);
    NMCDR_CHECK_LT(r, rows_);
    NMCDR_CHECK_GE(c, 0);
    NMCDR_CHECK_LT(c, cols_);
    return ptr_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Flat access for kernels: unchecked in Release, row-bounds-checked in
  /// NMCDR_DEBUG_CHECKS builds (the DCHECK compiles out otherwise).
  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  float* row(int r) {
    NMCDR_DCHECK_GE(r, 0);
    NMCDR_DCHECK_LT(r, rows_);
    return ptr_ + static_cast<size_t>(r) * cols_;
  }
  const float* row(int r) const {
    NMCDR_DCHECK_GE(r, 0);
    NMCDR_DCHECK_LT(r, rows_);
    return ptr_ + static_cast<size_t>(r) * cols_;
  }

  /// True if shapes match.
  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sets every entry to `value`.
  void Fill(float value);

  /// Sets every entry to zero (keeps shape).
  void SetZero() { Fill(0.f); }

  /// Sum / mean / min / max over all entries.
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;

  /// Frobenius norm.
  float FrobeniusNorm() const;

  /// Largest singular value estimated by power iteration (`iters` steps);
  /// used by the Eq. 31 stability-bound computation.
  float SpectralNorm(int iters = 30) const;

  /// Human-readable dump (small matrices only; rows truncated past 8).
  std::string DebugString() const;

 private:
  /// Points ptr_ at a fresh buffer of `n` floats filled with `fill`:
  /// borrowed from the active arena when one is in scope, else owning heap
  /// storage (reusing owned_ capacity where possible).
  void AllocStorage(size_t n, float fill);

  int rows_ = 0;
  int cols_ = 0;
  /// Element storage: owned_.data() when owning, an arena pointer when
  /// borrowed_, nullptr when empty or shape-only.
  float* ptr_ = nullptr;
  bool borrowed_ = false;
  std::vector<float> owned_;
};

/// True if a and b have the same shape and all entries differ by <= atol.
bool AllClose(const Matrix& a, const Matrix& b, float atol = 1e-5f);

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_MATRIX_H_
