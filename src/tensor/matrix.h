#ifndef NMCDR_TENSOR_MATRIX_H_
#define NMCDR_TENSOR_MATRIX_H_

#include <string>
#include <vector>

#include "tensor/rng.h"
#include "util/check.h"

namespace nmcdr {

/// Dense row-major float matrix: the single value type flowing through the
/// autograd engine. A row vector is a 1xN matrix; scalars are 1x1.
///
/// Copyable and movable; copies are deep.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols);

  /// rows x cols matrix filled with `fill`.
  Matrix(int rows, int cols, float fill);

  /// Builds a matrix from nested initializer data (row-major), used by
  /// tests for literal fixtures. All rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// All-zeros / all-ones factories.
  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Ones(int rows, int cols) { return Matrix(rows, cols, 1.f); }

  /// Identity matrix of size n.
  static Matrix Identity(int n);

  /// I.i.d. N(mean, stddev^2) entries.
  static Matrix Gaussian(int rows, int cols, Rng* rng, float mean = 0.f,
                         float stddev = 1.f);

  /// Xavier/Glorot uniform init: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
  /// The default init for all trainable weight matrices in this repo.
  static Matrix Xavier(int rows, int cols, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Total element count.
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  /// Bounds-checked element access.
  float& At(int r, int c) {
    NMCDR_CHECK_GE(r, 0);
    NMCDR_CHECK_LT(r, rows_);
    NMCDR_CHECK_GE(c, 0);
    NMCDR_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    NMCDR_CHECK_GE(r, 0);
    NMCDR_CHECK_LT(r, rows_);
    NMCDR_CHECK_GE(c, 0);
    NMCDR_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Flat access for kernels: unchecked in Release, row-bounds-checked in
  /// NMCDR_DEBUG_CHECKS builds (the DCHECK compiles out otherwise).
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) {
    NMCDR_DCHECK_GE(r, 0);
    NMCDR_DCHECK_LT(r, rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  const float* row(int r) const {
    NMCDR_DCHECK_GE(r, 0);
    NMCDR_DCHECK_LT(r, rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// True if shapes match.
  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sets every entry to `value`.
  void Fill(float value);

  /// Sets every entry to zero (keeps shape).
  void SetZero() { Fill(0.f); }

  /// Sum / mean / min / max over all entries.
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;

  /// Frobenius norm.
  float FrobeniusNorm() const;

  /// Largest singular value estimated by power iteration (`iters` steps);
  /// used by the Eq. 31 stability-bound computation.
  float SpectralNorm(int iters = 30) const;

  /// Human-readable dump (small matrices only; rows truncated past 8).
  std::string DebugString() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// True if a and b have the same shape and all entries differ by <= atol.
bool AllClose(const Matrix& a, const Matrix& b, float atol = 1e-5f);

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_MATRIX_H_
