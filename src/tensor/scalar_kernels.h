#ifndef NMCDR_TENSOR_SCALAR_KERNELS_H_
#define NMCDR_TENSOR_SCALAR_KERNELS_H_

#include <cmath>
#include <cstdint>

// Per-element scalar bodies shared by the eager activation kernels
// (backend.cc) and the fused/planned replay kernels (fused_kernels.cc).
// Both translation units include this header, so fused and eager execution
// evaluate the exact same expressions against the same libm — results are
// bit-identical regardless of each TU's optimization level (no expression
// here is eligible for reassociation or FMA contraction on the baseline
// target).

namespace nmcdr {

inline float ReluScalar(float x) { return x > 0.f ? x : 0.f; }

inline float SigmoidScalar(float x) {
  // Numerically stable in both tails.
  if (x >= 0.f) {
    const float z = std::exp(-x);
    return 1.f / (1.f + z);
  }
  const float z = std::exp(x);
  return z / (1.f + z);
}

inline float TanhScalar(float x) { return std::tanh(x); }

inline float SoftplusScalar(float x) {
  // log(1+e^x) = max(x,0) + log1p(e^{-|x|})
  return (x > 0.f ? x : 0.f) + std::log1p(std::exp(-std::fabs(x)));
}

inline float ExpScalar(float x) { return std::exp(x); }

inline float LogScalar(float x) {
  return std::log(x > 1e-12f ? x : 1e-12f);
}

/// Transcendental loops get a smaller grain: each element costs ~10-30
/// flops, so chunks amortize the handshake much sooner.
constexpr int64_t kTranscendentalCost = 16;

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_SCALAR_KERNELS_H_
