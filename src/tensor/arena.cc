#include "tensor/arena.h"

#include <algorithm>

#include "util/check.h"

namespace nmcdr {
namespace {

/// Alignment grain in floats (64 bytes = one cache line) so consecutive
/// arena matrices never share a line.
constexpr size_t kAlignFloats = 16;

/// Smallest block the arena ever allocates (1 MiB of floats): keeps the
/// block list short even when Reserve() was never called.
constexpr size_t kMinBlockFloats = size_t{1} << 18;

size_t AlignUp(size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

thread_local BumpArena* tl_active_arena = nullptr;

}  // namespace

void BumpArena::AddBlock(size_t min_floats) {
  Block block;
  // Geometric growth over the current capacity bounds the block count.
  block.cap = std::max({AlignUp(min_floats), kMinBlockFloats, capacity_floats_});
  block.data = std::make_unique<float[]>(block.cap);
  capacity_floats_ += block.cap;
  blocks_.push_back(std::move(block));
}

void BumpArena::Reserve(size_t bytes) {
  const size_t floats = (bytes + sizeof(float) - 1) / sizeof(float);
  if (floats <= capacity_floats_) return;
  AddBlock(floats - capacity_floats_);
}

float* BumpArena::Alloc(size_t elems) {
  NMCDR_DCHECK_GT(elems, 0u);
  const size_t need = AlignUp(elems);
  while (cur_ < blocks_.size() &&
         blocks_[cur_].cap - blocks_[cur_].used < need) {
    ++cur_;
  }
  if (cur_ >= blocks_.size()) {
    // Reserve miss: steady-state replay must not reach here (asserted by
    // program_test via growth_events()).
    ++growth_events_;
    AddBlock(need);
    cur_ = blocks_.size() - 1;
  }
  Block& b = blocks_[cur_];
  float* p = b.data.get() + b.used;
  b.used += need;
  used_floats_ += need;
  peak_floats_ = std::max(peak_floats_, used_floats_);
  return p;
}

void BumpArena::ResetStep() {
  for (Block& b : blocks_) b.used = 0;
  cur_ = 0;
  used_floats_ = 0;
  ++steps_;
}

BumpArena* ActiveArena() { return tl_active_arena; }

ArenaScope::ArenaScope(BumpArena* arena)
    : saved_(tl_active_arena), active_(arena != nullptr) {
  if (active_) tl_active_arena = arena;
}

ArenaScope::~ArenaScope() {
  if (active_) tl_active_arena = saved_;
}

}  // namespace nmcdr
