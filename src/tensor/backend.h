#ifndef NMCDR_TENSOR_BACKEND_H_
#define NMCDR_TENSOR_BACKEND_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "tensor/matrix.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace nmcdr {

/// Activation folded into the fused matmul epilogue (kNone = bias only).
enum class FusedAct : uint8_t { kNone, kRelu, kSigmoid, kTanh };

/// One step of a fused elementwise chain, interpreted per element by
/// FusedEltwiseInto. The graph-program compiler (src/program) lowers a run
/// of eager elementwise ops into a step list; each step transforms the
/// running value `cur` (seeded from the chain's primary input) with the
/// exact scalar expression of the eager kernel it replaces, so the fused
/// loop is bit-identical to the op-by-op sequence.
enum class EltwiseOp : uint8_t {
  kAddMat,     // cur + side[i]
  kSubMat,     // cur - side[i], or side[i] - cur when rhs is set
  kMulMat,     // cur * side[i]           (Hadamard)
  kScale,      // scalar * cur
  kAddScalar,  // cur + scalar
  kOneMinus,   // 1 - cur
  kSoftplus,   // softplus(cur)
  kRelu,       // relu(cur)
  kSigmoid,    // sigmoid(cur)
  kTanh,       // tanh(cur)
  kExp,        // exp(cur)
};

struct EltwiseStep {
  EltwiseOp op = EltwiseOp::kAddMat;
  /// kSubMat orientation: the chain value is the subtrahend (side - cur).
  bool rhs = false;
  /// kScale / kAddScalar operand.
  float scalar = 0.f;
  /// kAddMat / kSubMat / kMulMat operand, same element count as the output.
  const float* side = nullptr;
};

/// Execution seam for the dense kernels: the free functions in
/// tensor/matrix_ops.h are thin dispatchers over the current KernelBackend,
/// so every consumer (autograd ops, model code, the serving ScoreEngine)
/// picks up a backend change without touching a call site.
///
/// Contract: every backend must produce BIT-EXACT results for the same
/// inputs — identical down to the float, not merely close. ParallelBackend
/// achieves this by sharding each kernel so that every output element is
/// computed by exactly one chunk using the serial code's floating-point
/// operation order (rows for GEMMs, columns for the ColSum reduction,
/// destination rows for ScatterAddRows); see DESIGN.md §9 for the
/// determinism argument. backend_equivalence_test fuzzes the whole
/// interface against this contract.
///
/// Shape validation lives in the matrix_ops.h dispatchers; backend methods
/// may assume validated inputs (direct callers bypassing the dispatchers,
/// like the equivalence fuzz, must pass well-formed shapes).
class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  /// Stable name for logs / bench output ("serial", "vector", "parallel").
  virtual const char* name() const = 0;

  // Dense GEMM family. MatMul itself is derived: out = 0; MatMulAccumInto.
  virtual void MatMulAccumInto(const Matrix& a, const Matrix& b,
                               Matrix* out) const = 0;
  virtual Matrix MatMulTransA(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix MatMulTransB(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix Transpose(const Matrix& a) const = 0;

  // Elementwise / broadcast kernels.
  virtual Matrix Add(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix Sub(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix Hadamard(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix Axpby(const Matrix& a, float alpha, const Matrix& b,
                       float beta) const = 0;
  virtual void AxpyInto(const Matrix& a, float alpha, Matrix* out) const = 0;
  virtual Matrix Scale(const Matrix& a, float s) const = 0;
  virtual Matrix AddScalar(const Matrix& a, float s) const = 0;
  virtual Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) const = 0;

  // Activations.
  virtual Matrix Relu(const Matrix& a) const = 0;
  virtual Matrix Sigmoid(const Matrix& a) const = 0;
  virtual Matrix Tanh(const Matrix& a) const = 0;
  virtual Matrix Softplus(const Matrix& a) const = 0;
  virtual Matrix Exp(const Matrix& a) const = 0;
  virtual Matrix Log(const Matrix& a) const = 0;
  virtual Matrix SoftmaxRows(const Matrix& a) const = 0;

  // Reductions and gather/scatter.
  virtual Matrix RowSum(const Matrix& a) const = 0;
  virtual Matrix RowDot(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix ColSum(const Matrix& a) const = 0;
  virtual Matrix GatherRows(const Matrix& table,
                            const std::vector<int>& ids) const = 0;
  virtual void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                              Matrix* out) const = 0;
  virtual Matrix ConcatCols(const Matrix& a, const Matrix& b) const = 0;

  // Fused kernels (graph-program replay path, src/program). Bit-exact with
  // the op sequence each replaces — same per-element float operation order
  // as the separate kernels, at any thread count.

  /// out += a * b, then per row out = act(out + bias) (bias optional, a
  /// 1 x b.cols() row vector; nullptr skips it). `out` must be pre-zeroed,
  /// matching MatMul = Zeros + MatMulAccumInto.
  virtual void FusedMatMulBiasActInto(const Matrix& a, const Matrix& b,
                                      const Matrix* bias, FusedAct act,
                                      Matrix* out) const = 0;

  /// out[i] = steps applied to a[i] in order (see EltwiseStep).
  virtual void FusedEltwiseInto(const Matrix& a, const EltwiseStep* steps,
                                int num_steps, Matrix* out) const = 0;

  /// Register-blocked backward GEMMs (graph-program replay path). Bit-exact
  /// with MatMulTransA / MatMulTransB — each output element sees the exact
  /// same float (resp. double) accumulation sequence in ascending p — but a
  /// block of output elements rides in local accumulators, so independent
  /// per-element chains overlap instead of serializing through memory.
  virtual Matrix PlannedMatMulTransA(const Matrix& a,
                                     const Matrix& b) const = 0;
  virtual Matrix PlannedMatMulTransB(const Matrix& a,
                                     const Matrix& b) const = 0;
};

/// The seed repo's single-threaded kernels, verbatim (moved here from
/// matrix_ops.cc). The reference implementation every other backend must
/// match bit-for-bit.
class SerialBackend final : public KernelBackend {
 public:
  const char* name() const override { return "serial"; }
  void MatMulAccumInto(const Matrix& a, const Matrix& b,
                       Matrix* out) const override;
  Matrix MatMulTransA(const Matrix& a, const Matrix& b) const override;
  Matrix MatMulTransB(const Matrix& a, const Matrix& b) const override;
  Matrix Transpose(const Matrix& a) const override;
  Matrix Add(const Matrix& a, const Matrix& b) const override;
  Matrix Sub(const Matrix& a, const Matrix& b) const override;
  Matrix Hadamard(const Matrix& a, const Matrix& b) const override;
  Matrix Axpby(const Matrix& a, float alpha, const Matrix& b,
               float beta) const override;
  void AxpyInto(const Matrix& a, float alpha, Matrix* out) const override;
  Matrix Scale(const Matrix& a, float s) const override;
  Matrix AddScalar(const Matrix& a, float s) const override;
  Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) const override;
  Matrix Relu(const Matrix& a) const override;
  Matrix Sigmoid(const Matrix& a) const override;
  Matrix Tanh(const Matrix& a) const override;
  Matrix Softplus(const Matrix& a) const override;
  Matrix Exp(const Matrix& a) const override;
  Matrix Log(const Matrix& a) const override;
  Matrix SoftmaxRows(const Matrix& a) const override;
  Matrix RowSum(const Matrix& a) const override;
  Matrix RowDot(const Matrix& a, const Matrix& b) const override;
  Matrix ColSum(const Matrix& a) const override;
  Matrix GatherRows(const Matrix& table,
                    const std::vector<int>& ids) const override;
  void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                      Matrix* out) const override;
  Matrix ConcatCols(const Matrix& a, const Matrix& b) const override;
  void FusedMatMulBiasActInto(const Matrix& a, const Matrix& b,
                              const Matrix* bias, FusedAct act,
                              Matrix* out) const override NMCDR_HOT;
  void FusedEltwiseInto(const Matrix& a, const EltwiseStep* steps,
                        int num_steps, Matrix* out) const override NMCDR_HOT;
  Matrix PlannedMatMulTransA(const Matrix& a,
                             const Matrix& b) const override NMCDR_HOT;
  Matrix PlannedMatMulTransB(const Matrix& a,
                             const Matrix& b) const override NMCDR_HOT;
};

/// Single-threaded kernels with the GEMM family (and its fused epilogues)
/// routed through the register-blocked, explicitly vectorized tile cores
/// of tensor/vector_kernels.h; every other kernel delegates to the serial
/// reference. Bit-exact with SerialBackend by the vector-core contract
/// (same per-element IEEE sequence). Selected via NMCDR_BACKEND=vector or
/// --backend vector.
class VectorBackend final : public KernelBackend {
 public:
  const char* name() const override { return "vector"; }
  void MatMulAccumInto(const Matrix& a, const Matrix& b,
                       Matrix* out) const override;
  Matrix MatMulTransA(const Matrix& a, const Matrix& b) const override;
  Matrix MatMulTransB(const Matrix& a, const Matrix& b) const override;
  Matrix Transpose(const Matrix& a) const override;
  Matrix Add(const Matrix& a, const Matrix& b) const override;
  Matrix Sub(const Matrix& a, const Matrix& b) const override;
  Matrix Hadamard(const Matrix& a, const Matrix& b) const override;
  Matrix Axpby(const Matrix& a, float alpha, const Matrix& b,
               float beta) const override;
  void AxpyInto(const Matrix& a, float alpha, Matrix* out) const override;
  Matrix Scale(const Matrix& a, float s) const override;
  Matrix AddScalar(const Matrix& a, float s) const override;
  Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) const override;
  Matrix Relu(const Matrix& a) const override;
  Matrix Sigmoid(const Matrix& a) const override;
  Matrix Tanh(const Matrix& a) const override;
  Matrix Softplus(const Matrix& a) const override;
  Matrix Exp(const Matrix& a) const override;
  Matrix Log(const Matrix& a) const override;
  Matrix SoftmaxRows(const Matrix& a) const override;
  Matrix RowSum(const Matrix& a) const override;
  Matrix RowDot(const Matrix& a, const Matrix& b) const override;
  Matrix ColSum(const Matrix& a) const override;
  Matrix GatherRows(const Matrix& table,
                    const std::vector<int>& ids) const override;
  void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                      Matrix* out) const override;
  Matrix ConcatCols(const Matrix& a, const Matrix& b) const override;
  void FusedMatMulBiasActInto(const Matrix& a, const Matrix& b,
                              const Matrix* bias, FusedAct act,
                              Matrix* out) const override NMCDR_HOT;
  void FusedEltwiseInto(const Matrix& a, const EltwiseStep* steps,
                        int num_steps, Matrix* out) const override NMCDR_HOT;
  Matrix PlannedMatMulTransA(const Matrix& a,
                             const Matrix& b) const override NMCDR_HOT;
  Matrix PlannedMatMulTransB(const Matrix& a,
                             const Matrix& b) const override NMCDR_HOT;
};

/// Pool-backed kernels: 2-D tile-sharded GEMMs over the vector tile cores
/// (tensor/vector_kernels.h) so small shapes like 512x64 split into
/// enough tiles to feed every worker, chunked elementwise and activation
/// loops, sharded GatherRows, column-sharded ColSum, and
/// destination-row-sharded ScatterAddRows. Small inputs (below a
/// per-kernel work grain) run the serial path inline, so pervasive
/// dispatch through this backend never slows tiny training-step tensors.
class ParallelBackend final : public KernelBackend {
 public:
  /// `pool == nullptr` binds to ThreadPool::Shared() at call time (the
  /// production configuration); benchmarks and tests pass private pools to
  /// sweep thread counts inside one process.
  explicit ParallelBackend(ThreadPool* pool = nullptr) : pool_(pool) {}

  const char* name() const override { return "parallel"; }
  void MatMulAccumInto(const Matrix& a, const Matrix& b,
                       Matrix* out) const override;
  Matrix MatMulTransA(const Matrix& a, const Matrix& b) const override;
  Matrix MatMulTransB(const Matrix& a, const Matrix& b) const override;
  Matrix Transpose(const Matrix& a) const override;
  Matrix Add(const Matrix& a, const Matrix& b) const override;
  Matrix Sub(const Matrix& a, const Matrix& b) const override;
  Matrix Hadamard(const Matrix& a, const Matrix& b) const override;
  Matrix Axpby(const Matrix& a, float alpha, const Matrix& b,
               float beta) const override;
  void AxpyInto(const Matrix& a, float alpha, Matrix* out) const override;
  Matrix Scale(const Matrix& a, float s) const override;
  Matrix AddScalar(const Matrix& a, float s) const override;
  Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) const override;
  Matrix Relu(const Matrix& a) const override;
  Matrix Sigmoid(const Matrix& a) const override;
  Matrix Tanh(const Matrix& a) const override;
  Matrix Softplus(const Matrix& a) const override;
  Matrix Exp(const Matrix& a) const override;
  Matrix Log(const Matrix& a) const override;
  Matrix SoftmaxRows(const Matrix& a) const override;
  Matrix RowSum(const Matrix& a) const override;
  Matrix RowDot(const Matrix& a, const Matrix& b) const override;
  Matrix ColSum(const Matrix& a) const override;
  Matrix GatherRows(const Matrix& table,
                    const std::vector<int>& ids) const override;
  void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                      Matrix* out) const override;
  Matrix ConcatCols(const Matrix& a, const Matrix& b) const override;
  void FusedMatMulBiasActInto(const Matrix& a, const Matrix& b,
                              const Matrix* bias, FusedAct act,
                              Matrix* out) const override NMCDR_HOT;
  void FusedEltwiseInto(const Matrix& a, const EltwiseStep* steps,
                        int num_steps, Matrix* out) const override NMCDR_HOT;
  Matrix PlannedMatMulTransA(const Matrix& a,
                             const Matrix& b) const override NMCDR_HOT;
  Matrix PlannedMatMulTransB(const Matrix& a,
                             const Matrix& b) const override NMCDR_HOT;

  ThreadPool* pool() const {
    return pool_ != nullptr ? pool_ : ThreadPool::Shared();
  }

 private:
  ThreadPool* pool_;
};

/// Long-lived singleton instances (function-local statics).
const SerialBackend& SerialKernelBackend();
const VectorBackend& VectorKernelBackend();
const ParallelBackend& ParallelKernelBackend();  // over ThreadPool::Shared()

/// Singleton lookup by stable name ("serial", "vector", "parallel") — the
/// resolver behind the --backend CLI flags and the NMCDR_BACKEND
/// environment knob. Returns nullptr for an unknown name.
const KernelBackend* BackendByName(std::string_view name);

/// The backend the matrix_ops.h dispatchers use on this thread: the
/// innermost active BackendGuard if any, else the process default.
const KernelBackend& CurrentBackend();

/// Replaces the process-default backend (initially ParallelKernelBackend,
/// or the backend NMCDR_BACKEND=serial|vector|parallel names in the
/// environment). Pass nullptr to restore the built-in default. Not a
/// synchronization point: call during startup, before concurrent kernel
/// users exist.
void SetDefaultBackend(const KernelBackend* backend);

/// RAII scoped backend override for the current thread only, so concurrent
/// servers/trainers can pin different backends without racing. Guards
/// nest; nullptr is a no-op guard (keeps whatever is current).
class BackendGuard {
 public:
  explicit BackendGuard(const KernelBackend* backend);
  ~BackendGuard();
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  const KernelBackend* saved_;
  bool active_;
};

/// Maps a user-facing thread-count knob (TrainConfig::threads, --threads)
/// to a backend override: 0 -> nullptr (inherit current), 1 ->
/// SerialKernelBackend, >1 -> ParallelKernelBackend over the shared pool.
const KernelBackend* BackendForThreads(int threads);

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_BACKEND_H_
