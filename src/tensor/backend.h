#ifndef NMCDR_TENSOR_BACKEND_H_
#define NMCDR_TENSOR_BACKEND_H_

#include <vector>

#include "tensor/matrix.h"
#include "util/thread_pool.h"

namespace nmcdr {

/// Execution seam for the dense kernels: the free functions in
/// tensor/matrix_ops.h are thin dispatchers over the current KernelBackend,
/// so every consumer (autograd ops, model code, the serving ScoreEngine)
/// picks up a backend change without touching a call site.
///
/// Contract: every backend must produce BIT-EXACT results for the same
/// inputs — identical down to the float, not merely close. ParallelBackend
/// achieves this by sharding each kernel so that every output element is
/// computed by exactly one chunk using the serial code's floating-point
/// operation order (rows for GEMMs, columns for the ColSum reduction,
/// destination rows for ScatterAddRows); see DESIGN.md §9 for the
/// determinism argument. backend_equivalence_test fuzzes the whole
/// interface against this contract.
///
/// Shape validation lives in the matrix_ops.h dispatchers; backend methods
/// may assume validated inputs (direct callers bypassing the dispatchers,
/// like the equivalence fuzz, must pass well-formed shapes).
class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  /// Stable name for logs / bench output ("serial", "parallel").
  virtual const char* name() const = 0;

  // Dense GEMM family. MatMul itself is derived: out = 0; MatMulAccumInto.
  virtual void MatMulAccumInto(const Matrix& a, const Matrix& b,
                               Matrix* out) const = 0;
  virtual Matrix MatMulTransA(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix MatMulTransB(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix Transpose(const Matrix& a) const = 0;

  // Elementwise / broadcast kernels.
  virtual Matrix Add(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix Sub(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix Hadamard(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix Axpby(const Matrix& a, float alpha, const Matrix& b,
                       float beta) const = 0;
  virtual void AxpyInto(const Matrix& a, float alpha, Matrix* out) const = 0;
  virtual Matrix Scale(const Matrix& a, float s) const = 0;
  virtual Matrix AddScalar(const Matrix& a, float s) const = 0;
  virtual Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) const = 0;

  // Activations.
  virtual Matrix Relu(const Matrix& a) const = 0;
  virtual Matrix Sigmoid(const Matrix& a) const = 0;
  virtual Matrix Tanh(const Matrix& a) const = 0;
  virtual Matrix Softplus(const Matrix& a) const = 0;
  virtual Matrix Exp(const Matrix& a) const = 0;
  virtual Matrix Log(const Matrix& a) const = 0;
  virtual Matrix SoftmaxRows(const Matrix& a) const = 0;

  // Reductions and gather/scatter.
  virtual Matrix RowSum(const Matrix& a) const = 0;
  virtual Matrix RowDot(const Matrix& a, const Matrix& b) const = 0;
  virtual Matrix ColSum(const Matrix& a) const = 0;
  virtual Matrix GatherRows(const Matrix& table,
                            const std::vector<int>& ids) const = 0;
  virtual void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                              Matrix* out) const = 0;
  virtual Matrix ConcatCols(const Matrix& a, const Matrix& b) const = 0;
};

/// The seed repo's single-threaded kernels, verbatim (moved here from
/// matrix_ops.cc). The reference implementation every other backend must
/// match bit-for-bit.
class SerialBackend final : public KernelBackend {
 public:
  const char* name() const override { return "serial"; }
  void MatMulAccumInto(const Matrix& a, const Matrix& b,
                       Matrix* out) const override;
  Matrix MatMulTransA(const Matrix& a, const Matrix& b) const override;
  Matrix MatMulTransB(const Matrix& a, const Matrix& b) const override;
  Matrix Transpose(const Matrix& a) const override;
  Matrix Add(const Matrix& a, const Matrix& b) const override;
  Matrix Sub(const Matrix& a, const Matrix& b) const override;
  Matrix Hadamard(const Matrix& a, const Matrix& b) const override;
  Matrix Axpby(const Matrix& a, float alpha, const Matrix& b,
               float beta) const override;
  void AxpyInto(const Matrix& a, float alpha, Matrix* out) const override;
  Matrix Scale(const Matrix& a, float s) const override;
  Matrix AddScalar(const Matrix& a, float s) const override;
  Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) const override;
  Matrix Relu(const Matrix& a) const override;
  Matrix Sigmoid(const Matrix& a) const override;
  Matrix Tanh(const Matrix& a) const override;
  Matrix Softplus(const Matrix& a) const override;
  Matrix Exp(const Matrix& a) const override;
  Matrix Log(const Matrix& a) const override;
  Matrix SoftmaxRows(const Matrix& a) const override;
  Matrix RowSum(const Matrix& a) const override;
  Matrix RowDot(const Matrix& a, const Matrix& b) const override;
  Matrix ColSum(const Matrix& a) const override;
  Matrix GatherRows(const Matrix& table,
                    const std::vector<int>& ids) const override;
  void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                      Matrix* out) const override;
  Matrix ConcatCols(const Matrix& a, const Matrix& b) const override;
};

/// Pool-backed kernels: row-blocked GEMMs, chunked elementwise and
/// activation loops, sharded GatherRows, column-sharded ColSum, and
/// destination-row-sharded ScatterAddRows. Small inputs (below a
/// per-kernel work grain) run the serial path inline, so pervasive
/// dispatch through this backend never slows tiny training-step tensors.
class ParallelBackend final : public KernelBackend {
 public:
  /// `pool == nullptr` binds to ThreadPool::Shared() at call time (the
  /// production configuration); benchmarks and tests pass private pools to
  /// sweep thread counts inside one process.
  explicit ParallelBackend(ThreadPool* pool = nullptr) : pool_(pool) {}

  const char* name() const override { return "parallel"; }
  void MatMulAccumInto(const Matrix& a, const Matrix& b,
                       Matrix* out) const override;
  Matrix MatMulTransA(const Matrix& a, const Matrix& b) const override;
  Matrix MatMulTransB(const Matrix& a, const Matrix& b) const override;
  Matrix Transpose(const Matrix& a) const override;
  Matrix Add(const Matrix& a, const Matrix& b) const override;
  Matrix Sub(const Matrix& a, const Matrix& b) const override;
  Matrix Hadamard(const Matrix& a, const Matrix& b) const override;
  Matrix Axpby(const Matrix& a, float alpha, const Matrix& b,
               float beta) const override;
  void AxpyInto(const Matrix& a, float alpha, Matrix* out) const override;
  Matrix Scale(const Matrix& a, float s) const override;
  Matrix AddScalar(const Matrix& a, float s) const override;
  Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) const override;
  Matrix Relu(const Matrix& a) const override;
  Matrix Sigmoid(const Matrix& a) const override;
  Matrix Tanh(const Matrix& a) const override;
  Matrix Softplus(const Matrix& a) const override;
  Matrix Exp(const Matrix& a) const override;
  Matrix Log(const Matrix& a) const override;
  Matrix SoftmaxRows(const Matrix& a) const override;
  Matrix RowSum(const Matrix& a) const override;
  Matrix RowDot(const Matrix& a, const Matrix& b) const override;
  Matrix ColSum(const Matrix& a) const override;
  Matrix GatherRows(const Matrix& table,
                    const std::vector<int>& ids) const override;
  void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                      Matrix* out) const override;
  Matrix ConcatCols(const Matrix& a, const Matrix& b) const override;

  ThreadPool* pool() const {
    return pool_ != nullptr ? pool_ : ThreadPool::Shared();
  }

 private:
  ThreadPool* pool_;
};

/// Long-lived singleton instances (function-local statics).
const SerialBackend& SerialKernelBackend();
const ParallelBackend& ParallelKernelBackend();  // over ThreadPool::Shared()

/// The backend the matrix_ops.h dispatchers use on this thread: the
/// innermost active BackendGuard if any, else the process default.
const KernelBackend& CurrentBackend();

/// Replaces the process-default backend (initially ParallelKernelBackend,
/// or SerialKernelBackend when NMCDR_BACKEND=serial is set in the
/// environment). Pass nullptr to restore the built-in default. Not a
/// synchronization point: call during startup, before concurrent kernel
/// users exist.
void SetDefaultBackend(const KernelBackend* backend);

/// RAII scoped backend override for the current thread only, so concurrent
/// servers/trainers can pin different backends without racing. Guards
/// nest; nullptr is a no-op guard (keeps whatever is current).
class BackendGuard {
 public:
  explicit BackendGuard(const KernelBackend* backend);
  ~BackendGuard();
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  const KernelBackend* saved_;
  bool active_;
};

/// Maps a user-facing thread-count knob (TrainConfig::threads, --threads)
/// to a backend override: 0 -> nullptr (inherit current), 1 ->
/// SerialKernelBackend, >1 -> ParallelKernelBackend over the shared pool.
const KernelBackend* BackendForThreads(int threads);

}  // namespace nmcdr

#endif  // NMCDR_TENSOR_BACKEND_H_
