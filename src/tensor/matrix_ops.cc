#include "tensor/matrix_ops.h"

#include <cmath>

namespace nmcdr {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatMulAccumInto(a, b, &out);
  return out;
}

void MatMulAccumInto(const Matrix& a, const Matrix& b, Matrix* out) {
  NMCDR_CHECK_EQ(a.cols(), b.rows());
  NMCDR_CHECK_EQ(out->rows(), a.rows());
  NMCDR_CHECK_EQ(out->cols(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  // ikj loop order: streams over B and C rows, cache-friendly row-major.
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = out->row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(a.rows(), b.rows());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  Matrix out(m, n);
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* crow = out.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  Matrix out(m, n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = out.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out.At(c, r) = a.At(r, c);
  }
  return out;
}

namespace {

template <typename F>
Matrix Elementwise(const Matrix& a, F f) {
  Matrix out(a.rows(), a.cols());
  for (int i = 0; i < a.size(); ++i) out.data()[i] = f(a.data()[i]);
  return out;
}

template <typename F>
Matrix Elementwise2(const Matrix& a, const Matrix& b, F f) {
  NMCDR_CHECK(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  for (int i = 0; i < a.size(); ++i) out.data()[i] = f(a.data()[i], b.data()[i]);
  return out;
}

}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  return Elementwise2(a, b, [](float x, float y) { return x + y; });
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  return Elementwise2(a, b, [](float x, float y) { return x - y; });
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  return Elementwise2(a, b, [](float x, float y) { return x * y; });
}

Matrix Axpby(const Matrix& a, float alpha, const Matrix& b, float beta) {
  return Elementwise2(a, b, [alpha, beta](float x, float y) {
    return alpha * x + beta * y;
  });
}

void AxpyInto(const Matrix& a, float alpha, Matrix* out) {
  NMCDR_CHECK(a.SameShape(*out));
  for (int i = 0; i < a.size(); ++i) out->data()[i] += alpha * a.data()[i];
}

Matrix Scale(const Matrix& a, float s) {
  return Elementwise(a, [s](float x) { return s * x; });
}

Matrix AddScalar(const Matrix& a, float s) {
  return Elementwise(a, [s](float x) { return x + s; });
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(b.rows(), 1);
  NMCDR_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows(), a.cols());
  const float* brow = b.row(0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    float* orow = out.row(r);
    for (int c = 0; c < a.cols(); ++c) orow[c] = arow[c] + brow[c];
  }
  return out;
}

Matrix Relu(const Matrix& a) {
  return Elementwise(a, [](float x) { return x > 0.f ? x : 0.f; });
}

Matrix Sigmoid(const Matrix& a) {
  return Elementwise(a, [](float x) {
    // Numerically stable in both tails.
    if (x >= 0.f) {
      const float z = std::exp(-x);
      return 1.f / (1.f + z);
    }
    const float z = std::exp(x);
    return z / (1.f + z);
  });
}

Matrix Tanh(const Matrix& a) {
  return Elementwise(a, [](float x) { return std::tanh(x); });
}

Matrix Softplus(const Matrix& a) {
  return Elementwise(a, [](float x) {
    // log(1+e^x) = max(x,0) + log1p(e^{-|x|})
    return (x > 0.f ? x : 0.f) + std::log1p(std::exp(-std::fabs(x)));
  });
}

Matrix Exp(const Matrix& a) {
  return Elementwise(a, [](float x) { return std::exp(x); });
}

Matrix Log(const Matrix& a) {
  return Elementwise(a, [](float x) {
    return std::log(x > 1e-12f ? x : 1e-12f);
  });
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const float* in = a.row(r);
    float* o = out.row(r);
    float mx = in[0];
    for (int c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
    double total = 0.0;
    for (int c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      total += o[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (int c = 0; c < a.cols(); ++c) o[c] *= inv;
  }
  return out;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const float* arow = a.row(r);
    for (int c = 0; c < a.cols(); ++c) acc += arow[c];
    out.At(r, 0) = static_cast<float>(acc);
  }
  return out;
}

Matrix RowMean(const Matrix& a) {
  NMCDR_CHECK_GT(a.cols(), 0);
  return Scale(RowSum(a), 1.f / static_cast<float>(a.cols()));
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  float* o = out.row(0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    for (int c = 0; c < a.cols(); ++c) o[c] += arow[c];
  }
  return out;
}

Matrix ColMean(const Matrix& a) {
  NMCDR_CHECK_GT(a.rows(), 0);
  return Scale(ColSum(a), 1.f / static_cast<float>(a.rows()));
}

Matrix GatherRows(const Matrix& table, const std::vector<int>& ids) {
  Matrix out(static_cast<int>(ids.size()), table.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    NMCDR_CHECK_GE(ids[i], 0);
    NMCDR_CHECK_LT(ids[i], table.rows());
    const float* src = table.row(ids[i]);
    float* dst = out.row(static_cast<int>(i));
    for (int c = 0; c < table.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                    Matrix* out) {
  NMCDR_CHECK_EQ(src.rows(), static_cast<int>(ids.size()));
  NMCDR_CHECK_EQ(src.cols(), out->cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    NMCDR_CHECK_GE(ids[i], 0);
    NMCDR_CHECK_LT(ids[i], out->rows());
    const float* s = src.row(static_cast<int>(i));
    float* d = out->row(ids[i]);
    for (int c = 0; c < src.cols(); ++c) d[c] += s[c];
  }
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    float* o = out.row(r);
    const float* ar = a.row(r);
    const float* br = b.row(r);
    for (int c = 0; c < a.cols(); ++c) o[c] = ar[c];
    for (int c = 0; c < b.cols(); ++c) o[a.cols() + c] = br[c];
  }
  return out;
}

Matrix RowDot(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK(a.SameShape(b));
  Matrix out(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    const float* br = b.row(r);
    double acc = 0.0;
    for (int c = 0; c < a.cols(); ++c) acc += static_cast<double>(ar[c]) * br[c];
    out.At(r, 0) = static_cast<float>(acc);
  }
  return out;
}

CsrMatrix::CsrMatrix(
    int rows, int cols,
    const std::vector<std::vector<std::pair<int, float>>>& row_entries)
    : rows_(rows), cols_(cols) {
  NMCDR_CHECK_EQ(static_cast<int>(row_entries.size()), rows);
  row_ptr_.resize(rows + 1, 0);
  int64_t nnz = 0;
  for (int r = 0; r < rows; ++r) {
    nnz += static_cast<int64_t>(row_entries[r].size());
    row_ptr_[r + 1] = nnz;
  }
  col_idx_.reserve(nnz);
  values_.reserve(nnz);
  for (int r = 0; r < rows; ++r) {
    for (const auto& [c, v] : row_entries[r]) {
      NMCDR_CHECK_GE(c, 0);
      NMCDR_CHECK_LT(c, cols);
      col_idx_.push_back(c);
      values_.push_back(v);
    }
  }
}

Matrix CsrMatrix::Multiply(const Matrix& x) const {
  NMCDR_CHECK_EQ(x.rows(), cols_);
  Matrix out(rows_, x.cols());
  for (int r = 0; r < rows_; ++r) {
    float* orow = out.row(r);
    for (int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      NMCDR_DCHECK_GE(col_idx_[e], 0);
      NMCDR_DCHECK_LT(col_idx_[e], cols_);
      const float v = values_[e];
      const float* xrow = x.row(col_idx_[e]);
      for (int c = 0; c < x.cols(); ++c) orow[c] += v * xrow[c];
    }
  }
  return out;
}

Matrix CsrMatrix::MultiplyTransposed(const Matrix& x) const {
  NMCDR_CHECK_EQ(x.rows(), rows_);
  Matrix out(cols_, x.cols());
  for (int r = 0; r < rows_; ++r) {
    const float* xrow = x.row(r);
    for (int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      NMCDR_DCHECK_GE(col_idx_[e], 0);
      NMCDR_DCHECK_LT(col_idx_[e], cols_);
      const float v = values_[e];
      float* orow = out.row(col_idx_[e]);
      for (int c = 0; c < x.cols(); ++c) orow[c] += v * xrow[c];
    }
  }
  return out;
}

}  // namespace nmcdr
