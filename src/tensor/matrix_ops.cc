#include "tensor/matrix_ops.h"

#include "tensor/backend.h"

namespace nmcdr {

// The free functions below are thin dispatchers: they validate shapes, then
// forward to the thread/process-selected KernelBackend (tensor/backend.h).
// All backends are bit-exact with each other, so callers never observe the
// dispatch.

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatMulAccumInto(a, b, &out);
  return out;
}

void MatMulAccumInto(const Matrix& a, const Matrix& b, Matrix* out) {
  NMCDR_CHECK_EQ(a.cols(), b.rows());
  NMCDR_CHECK_EQ(out->rows(), a.rows());
  NMCDR_CHECK_EQ(out->cols(), b.cols());
  CurrentBackend().MatMulAccumInto(a, b, out);
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(a.rows(), b.rows());
  return CurrentBackend().MatMulTransA(a, b);
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(a.cols(), b.cols());
  return CurrentBackend().MatMulTransB(a, b);
}

Matrix Transpose(const Matrix& a) { return CurrentBackend().Transpose(a); }

Matrix Add(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK(a.SameShape(b));
  return CurrentBackend().Add(a, b);
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK(a.SameShape(b));
  return CurrentBackend().Sub(a, b);
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK(a.SameShape(b));
  return CurrentBackend().Hadamard(a, b);
}

Matrix Axpby(const Matrix& a, float alpha, const Matrix& b, float beta) {
  NMCDR_CHECK(a.SameShape(b));
  return CurrentBackend().Axpby(a, alpha, b, beta);
}

void AxpyInto(const Matrix& a, float alpha, Matrix* out) {
  NMCDR_CHECK(a.SameShape(*out));
  CurrentBackend().AxpyInto(a, alpha, out);
}

Matrix Scale(const Matrix& a, float s) { return CurrentBackend().Scale(a, s); }

Matrix AddScalar(const Matrix& a, float s) {
  return CurrentBackend().AddScalar(a, s);
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(b.rows(), 1);
  NMCDR_CHECK_EQ(a.cols(), b.cols());
  return CurrentBackend().AddRowBroadcast(a, b);
}

Matrix Relu(const Matrix& a) { return CurrentBackend().Relu(a); }

Matrix Sigmoid(const Matrix& a) { return CurrentBackend().Sigmoid(a); }

Matrix Tanh(const Matrix& a) { return CurrentBackend().Tanh(a); }

Matrix Softplus(const Matrix& a) { return CurrentBackend().Softplus(a); }

Matrix Exp(const Matrix& a) { return CurrentBackend().Exp(a); }

Matrix Log(const Matrix& a) { return CurrentBackend().Log(a); }

Matrix SoftmaxRows(const Matrix& a) {
  NMCDR_CHECK_GT(a.cols(), 0);
  return CurrentBackend().SoftmaxRows(a);
}

Matrix RowSum(const Matrix& a) { return CurrentBackend().RowSum(a); }

Matrix RowMean(const Matrix& a) {
  NMCDR_CHECK_GT(a.cols(), 0);
  return Scale(RowSum(a), 1.f / static_cast<float>(a.cols()));
}

Matrix ColSum(const Matrix& a) { return CurrentBackend().ColSum(a); }

Matrix ColMean(const Matrix& a) {
  NMCDR_CHECK_GT(a.rows(), 0);
  return Scale(ColSum(a), 1.f / static_cast<float>(a.rows()));
}

Matrix GatherRows(const Matrix& table, const std::vector<int>& ids) {
  return CurrentBackend().GatherRows(table, ids);
}

void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                    Matrix* out) {
  NMCDR_CHECK_EQ(src.rows(), static_cast<int>(ids.size()));
  NMCDR_CHECK_EQ(src.cols(), out->cols());
  CurrentBackend().ScatterAddRows(src, ids, out);
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(a.rows(), b.rows());
  return CurrentBackend().ConcatCols(a, b);
}

Matrix RowDot(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK(a.SameShape(b));
  return CurrentBackend().RowDot(a, b);
}

CsrMatrix::CsrMatrix(
    int rows, int cols,
    const std::vector<std::vector<std::pair<int, float>>>& row_entries)
    : rows_(rows), cols_(cols) {
  NMCDR_CHECK_EQ(static_cast<int>(row_entries.size()), rows);
  row_ptr_.resize(rows + 1, 0);
  int64_t nnz = 0;
  for (int r = 0; r < rows; ++r) {
    nnz += static_cast<int64_t>(row_entries[r].size());
    row_ptr_[r + 1] = nnz;
  }
  col_idx_.reserve(nnz);
  values_.reserve(nnz);
  for (int r = 0; r < rows; ++r) {
    for (const auto& [c, v] : row_entries[r]) {
      NMCDR_CHECK_GE(c, 0);
      NMCDR_CHECK_LT(c, cols);
      col_idx_.push_back(c);
      values_.push_back(v);
    }
  }
}

Matrix CsrMatrix::Multiply(const Matrix& x) const {
  NMCDR_CHECK_EQ(x.rows(), cols_);
  Matrix out(rows_, x.cols());
  for (int r = 0; r < rows_; ++r) {
    float* orow = out.row(r);
    for (int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      NMCDR_DCHECK_GE(col_idx_[e], 0);
      NMCDR_DCHECK_LT(col_idx_[e], cols_);
      const float v = values_[e];
      const float* xrow = x.row(col_idx_[e]);
      for (int c = 0; c < x.cols(); ++c) orow[c] += v * xrow[c];
    }
  }
  return out;
}

Matrix CsrMatrix::MultiplyTransposed(const Matrix& x) const {
  NMCDR_CHECK_EQ(x.rows(), rows_);
  Matrix out(cols_, x.cols());
  for (int r = 0; r < rows_; ++r) {
    const float* xrow = x.row(r);
    for (int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      NMCDR_DCHECK_GE(col_idx_[e], 0);
      NMCDR_DCHECK_LT(col_idx_[e], cols_);
      const float v = values_[e];
      float* orow = out.row(col_idx_[e]);
      for (int c = 0; c < x.cols(); ++c) orow[c] += v * xrow[c];
    }
  }
  return out;
}

}  // namespace nmcdr
