#include "tensor/matrix_ops.h"

#include "obs/trace.h"
#include "tensor/backend.h"

namespace nmcdr {

// The free functions below are thin dispatchers: they validate shapes, open
// an obs::KernelScope (call count + FLOP estimate; wall time under
// profiling), then forward to the thread/process-selected KernelBackend
// (tensor/backend.h). All backends are bit-exact with each other, so callers
// never observe the dispatch. The probes live here and NOT inside backend
// implementations, so bench_kernels — which calls backends directly — always
// times pristine kernels.
//
// FLOP estimates follow the usual conventions: 2mnk for GEMMs (multiply +
// add), mn for one-pass elementwise maps, small constants for transcendental
// maps (sigmoid ~4 flops/elem, softmax ~5), and element counts as a data-
// movement proxy for pure copies (Transpose, Gather/Scatter, Concat).

namespace {

using obs::Kernel;
using obs::KernelScope;

int64_t Elems(const Matrix& a) {
  return static_cast<int64_t>(a.rows()) * a.cols();
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  // Accounted by the MatMulAccumInto probe below — no separate scope, so a
  // MatMul never double-counts.
  MatMulAccumInto(a, b, &out);
  return out;
}

void MatMulAccumInto(const Matrix& a, const Matrix& b, Matrix* out) {
  NMCDR_CHECK_EQ(a.cols(), b.rows());
  NMCDR_CHECK_EQ(out->rows(), a.rows());
  NMCDR_CHECK_EQ(out->cols(), b.cols());
  const KernelScope scope(Kernel::kMatMulAccumInto,
                          2 * static_cast<int64_t>(a.rows()) * a.cols() *
                              b.cols());
  CurrentBackend().MatMulAccumInto(a, b, out);
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(a.rows(), b.rows());
  const KernelScope scope(Kernel::kMatMulTransA,
                          2 * static_cast<int64_t>(a.cols()) * a.rows() *
                              b.cols());
  return CurrentBackend().MatMulTransA(a, b);
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(a.cols(), b.cols());
  const KernelScope scope(Kernel::kMatMulTransB,
                          2 * static_cast<int64_t>(a.rows()) * a.cols() *
                              b.rows());
  return CurrentBackend().MatMulTransB(a, b);
}

Matrix Transpose(const Matrix& a) {
  const KernelScope scope(Kernel::kTranspose, Elems(a));
  return CurrentBackend().Transpose(a);
}

Matrix Add(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK(a.SameShape(b));
  const KernelScope scope(Kernel::kAdd, Elems(a));
  return CurrentBackend().Add(a, b);
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK(a.SameShape(b));
  const KernelScope scope(Kernel::kSub, Elems(a));
  return CurrentBackend().Sub(a, b);
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK(a.SameShape(b));
  const KernelScope scope(Kernel::kHadamard, Elems(a));
  return CurrentBackend().Hadamard(a, b);
}

Matrix Axpby(const Matrix& a, float alpha, const Matrix& b, float beta) {
  NMCDR_CHECK(a.SameShape(b));
  const KernelScope scope(Kernel::kAxpby, 3 * Elems(a));
  return CurrentBackend().Axpby(a, alpha, b, beta);
}

void AxpyInto(const Matrix& a, float alpha, Matrix* out) {
  NMCDR_CHECK(a.SameShape(*out));
  const KernelScope scope(Kernel::kAxpyInto, 2 * Elems(a));
  CurrentBackend().AxpyInto(a, alpha, out);
}

Matrix Scale(const Matrix& a, float s) {
  const KernelScope scope(Kernel::kScale, Elems(a));
  return CurrentBackend().Scale(a, s);
}

Matrix AddScalar(const Matrix& a, float s) {
  const KernelScope scope(Kernel::kAddScalar, Elems(a));
  return CurrentBackend().AddScalar(a, s);
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(b.rows(), 1);
  NMCDR_CHECK_EQ(a.cols(), b.cols());
  const KernelScope scope(Kernel::kAddRowBroadcast, Elems(a));
  return CurrentBackend().AddRowBroadcast(a, b);
}

Matrix Relu(const Matrix& a) {
  const KernelScope scope(Kernel::kRelu, Elems(a));
  return CurrentBackend().Relu(a);
}

Matrix Sigmoid(const Matrix& a) {
  const KernelScope scope(Kernel::kSigmoid, 4 * Elems(a));
  return CurrentBackend().Sigmoid(a);
}

Matrix Tanh(const Matrix& a) {
  const KernelScope scope(Kernel::kTanh, 4 * Elems(a));
  return CurrentBackend().Tanh(a);
}

Matrix Softplus(const Matrix& a) {
  const KernelScope scope(Kernel::kSoftplus, 4 * Elems(a));
  return CurrentBackend().Softplus(a);
}

Matrix Exp(const Matrix& a) {
  const KernelScope scope(Kernel::kExp, 2 * Elems(a));
  return CurrentBackend().Exp(a);
}

Matrix Log(const Matrix& a) {
  const KernelScope scope(Kernel::kLog, 2 * Elems(a));
  return CurrentBackend().Log(a);
}

Matrix SoftmaxRows(const Matrix& a) {
  NMCDR_CHECK_GT(a.cols(), 0);
  const KernelScope scope(Kernel::kSoftmaxRows, 5 * Elems(a));
  return CurrentBackend().SoftmaxRows(a);
}

Matrix RowSum(const Matrix& a) {
  const KernelScope scope(Kernel::kRowSum, Elems(a));
  return CurrentBackend().RowSum(a);
}

Matrix RowMean(const Matrix& a) {
  NMCDR_CHECK_GT(a.cols(), 0);
  return Scale(RowSum(a), 1.f / static_cast<float>(a.cols()));
}

Matrix ColSum(const Matrix& a) {
  const KernelScope scope(Kernel::kColSum, Elems(a));
  return CurrentBackend().ColSum(a);
}

Matrix ColMean(const Matrix& a) {
  NMCDR_CHECK_GT(a.rows(), 0);
  return Scale(ColSum(a), 1.f / static_cast<float>(a.rows()));
}

Matrix GatherRows(const Matrix& table, const std::vector<int>& ids) {
  const KernelScope scope(
      Kernel::kGatherRows,
      static_cast<int64_t>(ids.size()) * table.cols());
  return CurrentBackend().GatherRows(table, ids);
}

void ScatterAddRows(const Matrix& src, const std::vector<int>& ids,
                    Matrix* out) {
  NMCDR_CHECK_EQ(src.rows(), static_cast<int>(ids.size()));
  NMCDR_CHECK_EQ(src.cols(), out->cols());
  const KernelScope scope(Kernel::kScatterAddRows, Elems(src));
  CurrentBackend().ScatterAddRows(src, ids, out);
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK_EQ(a.rows(), b.rows());
  const KernelScope scope(Kernel::kConcatCols, Elems(a) + Elems(b));
  return CurrentBackend().ConcatCols(a, b);
}

Matrix RowDot(const Matrix& a, const Matrix& b) {
  NMCDR_CHECK(a.SameShape(b));
  const KernelScope scope(Kernel::kRowDot, 2 * Elems(a));
  return CurrentBackend().RowDot(a, b);
}

CsrMatrix::CsrMatrix(
    int rows, int cols,
    const std::vector<std::vector<std::pair<int, float>>>& row_entries)
    : rows_(rows), cols_(cols) {
  NMCDR_CHECK_EQ(static_cast<int>(row_entries.size()), rows);
  row_ptr_.resize(rows + 1, 0);
  int64_t nnz = 0;
  for (int r = 0; r < rows; ++r) {
    nnz += static_cast<int64_t>(row_entries[r].size());
    row_ptr_[r + 1] = nnz;
  }
  col_idx_.reserve(nnz);
  values_.reserve(nnz);
  for (int r = 0; r < rows; ++r) {
    for (const auto& [c, v] : row_entries[r]) {
      NMCDR_CHECK_GE(c, 0);
      NMCDR_CHECK_LT(c, cols);
      col_idx_.push_back(c);
      values_.push_back(v);
    }
  }
}

Matrix CsrMatrix::Multiply(const Matrix& x) const {
  NMCDR_CHECK_EQ(x.rows(), cols_);
  const KernelScope scope(Kernel::kSpMM, 2 * nnz() * x.cols());
  Matrix out(rows_, x.cols());
  for (int r = 0; r < rows_; ++r) {
    float* orow = out.row(r);
    for (int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      NMCDR_DCHECK_GE(col_idx_[e], 0);
      NMCDR_DCHECK_LT(col_idx_[e], cols_);
      const float v = values_[e];
      const float* xrow = x.row(col_idx_[e]);
      for (int c = 0; c < x.cols(); ++c) orow[c] += v * xrow[c];
    }
  }
  return out;
}

Matrix CsrMatrix::MultiplyTransposed(const Matrix& x) const {
  NMCDR_CHECK_EQ(x.rows(), rows_);
  const KernelScope scope(Kernel::kSpMMTransposed, 2 * nnz() * x.cols());
  Matrix out(cols_, x.cols());
  for (int r = 0; r < rows_; ++r) {
    const float* xrow = x.row(r);
    for (int64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      NMCDR_DCHECK_GE(col_idx_[e], 0);
      NMCDR_DCHECK_LT(col_idx_[e], cols_);
      const float v = values_[e];
      float* orow = out.row(col_idx_[e]);
      for (int c = 0; c < x.cols(); ++c) orow[c] += v * xrow[c];
    }
  }
  return out;
}

}  // namespace nmcdr
