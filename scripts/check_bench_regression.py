#!/usr/bin/env python3
"""Compares a BENCH_kernels.json run against the checked-in CI baseline.

Usage: check_bench_regression.py CURRENT BASELINE [--tolerance 0.25]
       check_bench_regression.py --self-test

Per-kernel gate on serial throughput: the run FAILS when any kernel's
`serial_gflops` drops below `baseline * (1 - tolerance)`. The default 25%
tolerance absorbs shared-runner noise (the CI smoke run times each kernel
for only ~10ms); tighten it locally with --tolerance 0.05 when hunting a
specific regression. Kernels present in only one file are reported but
never fail the gate, so adding or renaming a kernel doesn't require a
baseline update in the same commit — regenerate the baseline afterwards:

    build/bench/bench_kernels --smoke            # warm-up run, discarded
    build/bench/bench_kernels --smoke
    cp BENCH_kernels.json bench/baselines/ci_baseline.json

`--self-test` verifies the gate itself trips: it synthesizes a run and a
baseline inflated 2x above it, checks the comparison fails, then checks
an identical pair passes. CI runs this before the real comparison so a
parsing bug can't silently turn the gate green.

Exit codes: 0 pass, 1 regression (or self-test failure), 2 usage/IO error.
"""

import argparse
import json
import sys


def load_kernels(path):
    """Returns {kernel name: serial_gflops} from a BENCH_kernels.json."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    kernels = {}
    for entry in doc.get("kernels", []):
        kernels[entry["name"]] = float(entry["serial_gflops"])
    if not kernels:
        raise ValueError(f"{path}: no kernels[] entries")
    return kernels


def compare(current, baseline, tolerance):
    """Returns (failures, lines): per-kernel verdicts and report text."""
    failures = []
    lines = []
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            lines.append(f"  NEW      {name:24s} {current[name]:8.3f} gflops "
                         "(not in baseline, not gated)")
            continue
        if name not in current:
            lines.append(f"  MISSING  {name:24s} baseline "
                         f"{baseline[name]:8.3f} gflops (not in current run, "
                         "not gated)")
            continue
        floor = baseline[name] * (1.0 - tolerance)
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        verdict = "ok" if current[name] >= floor else "REGRESSED"
        lines.append(f"  {verdict:8s} {name:24s} {current[name]:8.3f} vs "
                     f"baseline {baseline[name]:8.3f} gflops "
                     f"({ratio:6.1%}, floor {floor:.3f})")
        if current[name] < floor:
            failures.append(name)
    return failures, lines


def self_test(tolerance):
    """The gate must fail on a 2x-inflated baseline and pass on identity."""
    run = {"MatMulAccumInto": 10.0, "Add": 25.0, "SpMM": 4.0}
    inflated = {k: 2.0 * v for k, v in run.items()}
    failures, _ = compare(run, inflated, tolerance)
    if sorted(failures) != sorted(run):
        print("self-test FAILED: 2x-inflated baseline did not trip the gate "
              f"(failures={failures})")
        return 1
    failures, _ = compare(run, dict(run), tolerance)
    if failures:
        print(f"self-test FAILED: identical run flagged ({failures})")
        return 1
    # A drop inside tolerance must pass; one outside must fail.
    shaved = {k: v * (1.0 - tolerance * 0.5) for k, v in run.items()}
    failures, _ = compare(shaved, run, tolerance)
    if failures:
        print(f"self-test FAILED: in-tolerance drop flagged ({failures})")
        return 1
    dropped = {k: v * (1.0 - tolerance * 1.5) for k, v in run.items()}
    failures, _ = compare(dropped, run, tolerance)
    if sorted(failures) != sorted(run):
        print("self-test FAILED: out-of-tolerance drop not flagged "
              f"(failures={failures})")
        return 1
    print(f"self-test passed (tolerance {tolerance:.0%})")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", nargs="?", help="BENCH_kernels.json from this run")
    parser.add_argument("baseline", nargs="?",
                        help="bench/baselines/ci_baseline.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional throughput drop (default 0.25)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on an inflated baseline")
    args = parser.parse_args(argv)

    if not 0.0 < args.tolerance < 1.0:
        print(f"tolerance must be in (0, 1), got {args.tolerance}")
        return 2
    if args.self_test:
        return self_test(args.tolerance)
    if args.current is None or args.baseline is None:
        parser.print_usage()
        return 2

    try:
        current = load_kernels(args.current)
        baseline = load_kernels(args.baseline)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"error: {err}")
        return 2

    failures, lines = compare(current, baseline, args.tolerance)
    print(f"perf gate: {args.current} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    print("\n".join(lines))
    if failures:
        print(f"\nFAIL: {len(failures)} kernel(s) regressed more than "
              f"{args.tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nPASS: {len(current)} kernels within {args.tolerance:.0%} of "
          "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
