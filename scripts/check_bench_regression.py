#!/usr/bin/env python3
"""Compares a bench JSON run against the checked-in CI baseline.

Usage: check_bench_regression.py CURRENT BASELINE [--tolerance 0.25]
       check_bench_regression.py --self-test

Four document kinds are auto-detected:

* Kernel throughput (BENCH_kernels.json, `kernels[]` entries): per-kernel
  gate on `serial_gflops` and, for the GEMM family, `vector_gflops`
  (reported as `Name[vector]`) — the run FAILS when any entry drops below
  `baseline * (1 - tolerance)`. Higher is better. On top of the baseline
  trajectory, two machine-relative absolute floors gate within the
  current run alone (no baseline needed, so they hold on any hardware):
  the vector MatMul must stay >= 3x its own serial GFLOP/s, and — when
  the run had >= 4 cores — every kernel's 4-thread scaling must stay
  above 0.9 (0.7 smoke) with MatMul above 1.5 (1.2 smoke), the
  tile-sharding floor.
* Trainer fusion speedup (BENCH_trainer.json, `trainer[]` entries): per-run
  gate on `fused_speedup` (fused epoch time vs eager epoch time) — the run
  FAILS when the ratio drops below `baseline * (1 - tolerance)`. Higher is
  better. A speedup is a ratio of two runs on the same machine, so it is
  far less noise-prone than an absolute time; bitwise equality and the
  zero-alloc steady state are asserted inside bench_trainer itself and
  never reach this gate.
* Quantized-serving accuracy (BENCH_quant.json, `quant{}` block): gate on
  `overlap_at_10` / `overlap_at_50` — quantized-vs-fp-exact top-K
  agreement. Higher is better, compared against the baseline AND against
  absolute floors (overlap@10 >= 0.99 full / 0.95 smoke, overlap@50 >=
  0.98 full / 0.90 smoke) so a drifting baseline can never launder an
  accuracy loss.
* Latency summaries (BENCH_serving.json / BENCH_cluster.json, obs-exporter
  `gauges{}` docs): per-gauge gate on every gauge whose name contains
  `p99` and ends in `_ms` — the run FAILS when the current value exceeds
  `baseline * (1 + tolerance) + slack`. Lower is better. The absolute
  slack (--latency-slack-ms, default 0.5) keeps sub-millisecond baselines
  from tripping on scheduler jitter alone. Non-p99 gauges (p50, QPS, shed
  counts) are informational context, never gated.

The default 25% tolerance absorbs shared-runner noise (the CI smoke run
times each kernel for only ~10ms); latency gates are noisier still, so CI
passes a wider --tolerance for those. Tighten locally when hunting a
specific regression. Entries present in only one file are reported but
never fail the gate, so adding or renaming a kernel/gauge doesn't require
a baseline update in the same commit — regenerate afterwards:

    build/bench/bench_kernels --smoke            # warm-up run, discarded
    build/bench/bench_kernels --smoke
    cp BENCH_kernels.json bench/baselines/ci_baseline.json
    build/bench/bench_serving                    # NMCDR_BENCH_SCALE=smoke
    cp BENCH_serving.json bench/baselines/serving_baseline.json
    build/bench/bench_cluster --smoke
    cp BENCH_cluster.json bench/baselines/cluster_baseline.json
    build/bench/bench_trainer --smoke
    cp BENCH_trainer.json bench/baselines/trainer_baseline.json
    build/bench/bench_quant --smoke
    cp BENCH_quant.json bench/baselines/quant_baseline.json

(The checked-in ci_baseline.json damps the `[vector]` entries below the
machine they were measured on: absolute vector throughput varies with the
runner's SIMD width and clocks, and the machine-relative >= 3x floor is
the real vectorization gate. Keep the damping when regenerating.)

`--self-test` verifies the gate itself trips in every mode: a baseline
inflated 2x above a throughput run must fail, a latency run inflated 2x
above its baseline must fail, degraded quantized overlap must fail both
the baseline and the absolute gate, broken thread scaling must trip the
absolute kernel floors (and be ignored on single-core runs), and
identical pairs must pass. CI runs this before the real comparisons so a
parsing bug can't silently turn the gate green.

Exit codes: 0 pass, 1 regression (or self-test failure), 2 usage/IO error.
"""

import argparse
import json
import sys


def load_entries(path):
    """Returns (kind, {name: value}, doc) from a bench JSON.

    kind is "kernels", "trainer", "quant", or "latency"; the raw doc rides
    along for the machine-relative absolute floors.
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    # Obs-exporter docs also carry a "kernels" section (per-kernel trace
    # stats, a different shape), so detect by schema first: gauge docs are
    # latency summaries, and only BENCH_kernels.json's list-of-dicts with
    # serial_gflops is a kernel-throughput doc.
    gauges = doc.get("gauges")
    if isinstance(gauges, dict):
        latencies = {name: float(value) for name, value in gauges.items()
                     if "p99" in name and name.endswith("_ms")}
        if latencies:
            return "latency", latencies, doc
        raise ValueError(f"{path}: gauge doc has no *p99*_ms gauges")
    quant = doc.get("quant")
    if isinstance(quant, dict):
        return "quant", {name: float(quant[name])
                         for name in ("overlap_at_10", "overlap_at_50")
                         if name in quant}, doc
    runs = doc.get("trainer", [])
    if isinstance(runs, list) and runs:
        return "trainer", {entry["name"]: float(entry["fused_speedup"])
                           for entry in runs}, doc
    kernels = {}
    entries = doc.get("kernels", [])
    if isinstance(entries, list):
        for entry in entries:
            kernels[entry["name"]] = float(entry["serial_gflops"])
            if "vector_gflops" in entry:
                kernels[entry["name"] + "[vector]"] = float(
                    entry["vector_gflops"])
    if kernels:
        return "kernels", kernels, doc
    raise ValueError(f"{path}: no kernels[], no trainer[], no quant{{}}, "
                     "and no *p99*_ms gauges")


def compare(current, baseline, tolerance, unit="gflops"):
    """Higher-is-better gate (throughput, speedups): (failures, lines)."""
    failures = []
    lines = []
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            lines.append(f"  NEW      {name:24s} {current[name]:8.3f} {unit} "
                         "(not in baseline, not gated)")
            continue
        if name not in current:
            lines.append(f"  MISSING  {name:24s} baseline "
                         f"{baseline[name]:8.3f} {unit} (not in current run, "
                         "not gated)")
            continue
        floor = baseline[name] * (1.0 - tolerance)
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        verdict = "ok" if current[name] >= floor else "REGRESSED"
        lines.append(f"  {verdict:8s} {name:24s} {current[name]:8.3f} vs "
                     f"baseline {baseline[name]:8.3f} {unit} "
                     f"({ratio:6.1%}, floor {floor:.3f})")
        if current[name] < floor:
            failures.append(name)
    return failures, lines


def compare_latency(current, baseline, tolerance, slack_ms):
    """Latency gate (lower is better): (failures, lines)."""
    failures = []
    lines = []
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            lines.append(f"  NEW      {name:40s} {current[name]:9.3f} ms "
                         "(not in baseline, not gated)")
            continue
        if name not in current:
            lines.append(f"  MISSING  {name:40s} baseline "
                         f"{baseline[name]:9.3f} ms (not in current run, "
                         "not gated)")
            continue
        ceiling = baseline[name] * (1.0 + tolerance) + slack_ms
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        verdict = "ok" if current[name] <= ceiling else "REGRESSED"
        lines.append(f"  {verdict:8s} {name:40s} {current[name]:9.3f} vs "
                     f"baseline {baseline[name]:9.3f} ms "
                     f"({ratio:6.1%}, ceiling {ceiling:.3f})")
        if current[name] > ceiling:
            failures.append(name)
    return failures, lines


# Machine-relative floors applied to the CURRENT doc alone (no baseline):
# a drifting or regenerated baseline can never relax these.
VECTOR_MATMUL_MIN_RATIO = 3.0
SCALING_FLOORS = {"full": (0.9, 1.5), "smoke": (0.7, 1.2)}
QUANT_FLOORS = {"full": (0.99, 0.98), "smoke": (0.95, 0.90)}


def absolute_floors(kind, doc):
    """Within-run floors for kernels/quant docs: (failures, lines)."""
    failures = []
    lines = []
    smoke = bool(doc.get("smoke", False))
    budget = "smoke" if smoke else "full"
    if kind == "kernels":
        cores = int(doc.get("hardware_concurrency", 0))
        any_floor, matmul_floor = SCALING_FLOORS[budget]
        for entry in doc.get("kernels", []):
            name = entry["name"]
            serial = float(entry["serial_gflops"])
            if name == "MatMul" and "vector_gflops" in entry and serial > 0:
                ratio = float(entry["vector_gflops"]) / serial
                verdict = ("ok" if ratio >= VECTOR_MATMUL_MIN_RATIO
                           else "BELOW FLOOR")
                lines.append(f"  {verdict:11s} {name}[vector] {ratio:5.2f}x "
                             f"serial (floor {VECTOR_MATMUL_MIN_RATIO:.1f}x)")
                if ratio < VECTOR_MATMUL_MIN_RATIO:
                    failures.append(f"{name}[vector]/serial")
            if cores < 4:
                continue  # scaling floors need as many cores as threads
            x4 = float(entry.get("speedup", {}).get("4", 0.0))
            floor = matmul_floor if name == "MatMul" else any_floor
            verdict = "ok" if x4 >= floor else "BELOW FLOOR"
            lines.append(f"  {verdict:11s} {name}@4t {x4:5.2f}x "
                         f"(floor {floor:.1f}x, {budget})")
            if x4 < floor:
                failures.append(f"{name}@4t")
        if cores < 4:
            lines.append(f"  (thread-scaling floors skipped: "
                         f"{cores} core(s) < 4)")
    elif kind == "quant":
        floor10, floor50 = QUANT_FLOORS[budget]
        quant = doc.get("quant", {})
        for name, floor in (("overlap_at_10", floor10),
                            ("overlap_at_50", floor50)):
            if name not in quant:
                continue
            value = float(quant[name])
            verdict = "ok" if value >= floor else "BELOW FLOOR"
            lines.append(f"  {verdict:11s} {name} {value:7.4f} "
                         f"(floor {floor:.2f}, {budget})")
            if value < floor:
                failures.append(name)
    return failures, lines


def self_test(tolerance, slack_ms):
    """Every gate must fail on a degraded run and pass on identity."""
    run = {"MatMulAccumInto": 10.0, "Add": 25.0, "SpMM": 4.0}
    inflated = {k: 2.0 * v for k, v in run.items()}
    failures, _ = compare(run, inflated, tolerance)
    if sorted(failures) != sorted(run):
        print("self-test FAILED: 2x-inflated baseline did not trip the gate "
              f"(failures={failures})")
        return 1
    failures, _ = compare(run, dict(run), tolerance)
    if failures:
        print(f"self-test FAILED: identical run flagged ({failures})")
        return 1
    # A drop inside tolerance must pass; one outside must fail.
    shaved = {k: v * (1.0 - tolerance * 0.5) for k, v in run.items()}
    failures, _ = compare(shaved, run, tolerance)
    if failures:
        print(f"self-test FAILED: in-tolerance drop flagged ({failures})")
        return 1
    dropped = {k: v * (1.0 - tolerance * 1.5) for k, v in run.items()}
    failures, _ = compare(dropped, run, tolerance)
    if sorted(failures) != sorted(run):
        print("self-test FAILED: out-of-tolerance drop not flagged "
              f"(failures={failures})")
        return 1

    # Vector entries ride the kernels gate under their [vector] suffix; a
    # vector-only regression must trip even when serial holds.
    vec_base = {"MatMul": 3.0, "MatMul[vector]": 12.0}
    vec_run = {"MatMul": 3.0, "MatMul[vector]": 12.0 * (1.0 - tolerance * 1.5)}
    failures, _ = compare(vec_run, vec_base, tolerance)
    if failures != ["MatMul[vector]"]:
        print("self-test FAILED: vector-only regression not isolated "
              f"(failures={failures})")
        return 1

    # Trainer speedups ride the same higher-is-better gate; check the
    # realistic failure shape (fusion quietly losing its edge).
    speedups = {"NMCDR Music-Movie": 1.6}
    stalled = {k: 1.0 for k in speedups}
    failures, _ = compare(stalled, speedups, tolerance, unit="x")
    if sorted(failures) != sorted(speedups):
        print("self-test FAILED: fused speedup collapsing to 1.0x did not "
              f"trip the gate (failures={failures})")
        return 1
    failures, _ = compare(dict(speedups), speedups, tolerance, unit="x")
    if failures:
        print(f"self-test FAILED: identical speedup run flagged ({failures})")
        return 1

    # Latency mode: direction is inverted, and the absolute slack must
    # shield tiny baselines but not large ones.
    lat = {"serving.batch8.p99_ms": 5.0, "cluster.swap.after_p99_ms": 40.0}
    doubled = {k: 2.0 * v for k, v in lat.items()}
    failures, _ = compare_latency(doubled, lat, tolerance, slack_ms)
    if sorted(failures) != sorted(lat):
        print("self-test FAILED: 2x-slower latency run did not trip the gate "
              f"(failures={failures})")
        return 1
    failures, _ = compare_latency(lat, dict(lat), tolerance, slack_ms)
    if failures:
        print(f"self-test FAILED: identical latency run flagged ({failures})")
        return 1
    tiny = {"serving.batch1.p99_ms": 0.01}
    jittered = {"serving.batch1.p99_ms": 0.01 * (1.0 + tolerance) + slack_ms * 0.9}
    failures, _ = compare_latency(jittered, tiny, tolerance, slack_ms)
    if failures:
        print("self-test FAILED: sub-slack jitter on a tiny baseline flagged "
              f"({failures})")
        return 1
    faster = {k: v * 0.25 for k, v in lat.items()}
    failures, _ = compare_latency(faster, lat, tolerance, slack_ms)
    if failures:
        print(f"self-test FAILED: faster latency run flagged ({failures})")
        return 1

    # Quantized accuracy: baseline trajectory plus absolute floors.
    quant_good = {"overlap_at_10": 0.999, "overlap_at_50": 0.995}
    quant_bad = {k: v * 0.5 for k, v in quant_good.items()}
    failures, _ = compare(quant_bad, quant_good, tolerance, unit="overlap")
    if sorted(failures) != sorted(quant_good):
        print("self-test FAILED: halved quantized overlap did not trip the "
              f"baseline gate (failures={failures})")
        return 1
    good_doc = {"smoke": False, "quant": dict(quant_good)}
    failures, _ = absolute_floors("quant", good_doc)
    if failures:
        print(f"self-test FAILED: passing quant doc hit floors ({failures})")
        return 1
    bad_doc = {"smoke": False,
               "quant": {"overlap_at_10": 0.97, "overlap_at_50": 0.995}}
    failures, _ = absolute_floors("quant", bad_doc)
    if failures != ["overlap_at_10"]:
        print("self-test FAILED: overlap@10 below the full floor not caught "
              f"(failures={failures})")
        return 1
    smoke_doc = {"smoke": True,
                 "quant": {"overlap_at_10": 0.97, "overlap_at_50": 0.92}}
    failures, _ = absolute_floors("quant", smoke_doc)
    if failures:
        print("self-test FAILED: smoke floors applied full thresholds "
              f"({failures})")
        return 1

    # Kernel absolute floors: thread scaling gated only with >= 4 cores,
    # the vector >= 3x ratio gated everywhere.
    kdoc = {"smoke": False, "hardware_concurrency": 8, "kernels": [
        {"name": "MatMul", "serial_gflops": 3.0, "vector_gflops": 12.0,
         "speedup": {"1": 1.0, "2": 1.5, "4": 2.0}},
        {"name": "ScatterAddRows", "serial_gflops": 0.3,
         "speedup": {"1": 1.0, "2": 0.9, "4": 0.5}},
    ]}
    failures, _ = absolute_floors("kernels", kdoc)
    if failures != ["ScatterAddRows@4t"]:
        print("self-test FAILED: sub-0.9x 4-thread scaling not caught "
              f"(failures={failures})")
        return 1
    kdoc["kernels"][1]["speedup"]["4"] = 1.0
    kdoc["kernels"][0]["speedup"]["4"] = 1.3  # below the 1.5x MatMul floor
    failures, _ = absolute_floors("kernels", kdoc)
    if failures != ["MatMul@4t"]:
        print("self-test FAILED: MatMul below the 1.5x tile floor not caught "
              f"(failures={failures})")
        return 1
    kdoc["hardware_concurrency"] = 1
    failures, _ = absolute_floors("kernels", kdoc)
    if failures:
        print("self-test FAILED: scaling floors applied on a 1-core run "
              f"({failures})")
        return 1
    slow_vector = {"smoke": True, "hardware_concurrency": 1, "kernels": [
        {"name": "MatMul", "serial_gflops": 3.0, "vector_gflops": 6.0,
         "speedup": {"1": 1.0, "2": 1.0, "4": 1.0}}]}
    failures, _ = absolute_floors("kernels", slow_vector)
    if failures != ["MatMul[vector]/serial"]:
        print("self-test FAILED: vector MatMul below 3x serial not caught "
              f"(failures={failures})")
        return 1

    # Missing/new entries warn but never gate, in either direction: renaming
    # a kernel or adding a gauge must not force a same-commit baseline bump.
    skewed_run = dict(run)
    skewed_run.pop("SpMM")
    skewed_run["BrandNewKernel"] = 0.001
    failures, lines = compare(skewed_run, run, tolerance)
    if failures:
        print(f"self-test FAILED: missing/new kernel entries gated ({failures})")
        return 1
    if not any("MISSING" in l for l in lines) or not any("NEW" in l for l in lines):
        print("self-test FAILED: missing/new kernel entries not reported")
        return 1
    skewed_lat = dict(lat)
    skewed_lat.pop("serving.batch8.p99_ms")
    skewed_lat["brand.new.p99_ms"] = 1e9
    failures, lines = compare_latency(skewed_lat, lat, tolerance, slack_ms)
    if failures:
        print(f"self-test FAILED: missing/new latency gauges gated ({failures})")
        return 1
    if not any("MISSING" in l for l in lines) or not any("NEW" in l for l in lines):
        print("self-test FAILED: missing/new latency gauges not reported")
        return 1
    print(f"self-test passed (tolerance {tolerance:.0%}, "
          f"latency slack {slack_ms:.2f} ms)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", nargs="?",
                        help="BENCH_*.json from this run")
    parser.add_argument("baseline", nargs="?",
                        help="matching file under bench/baselines/")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional change (default 0.25): "
                             "throughput drop for kernels, p99 increase for "
                             "latency docs")
    parser.add_argument("--latency-slack-ms", type=float, default=0.5,
                        help="absolute ms added to every latency ceiling "
                             "(default 0.5) so sub-ms baselines don't trip "
                             "on scheduler jitter")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every gate trips on a degraded run")
    args = parser.parse_args(argv)

    if not 0.0 < args.tolerance < 10.0:
        print(f"tolerance must be in (0, 10), got {args.tolerance}")
        return 2
    if args.latency_slack_ms < 0.0:
        print(f"latency slack must be >= 0, got {args.latency_slack_ms}")
        return 2
    if args.self_test:
        return self_test(args.tolerance, args.latency_slack_ms)
    if args.current is None or args.baseline is None:
        parser.print_usage()
        return 2

    try:
        current_kind, current, current_doc = load_entries(args.current)
        baseline_kind, baseline, _ = load_entries(args.baseline)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"error: {err}")
        return 2
    if current_kind != baseline_kind:
        print(f"error: {args.current} is a {current_kind} doc but "
              f"{args.baseline} is a {baseline_kind} doc")
        return 2

    if current_kind == "kernels":
        failures, lines = compare(current, baseline, args.tolerance)
        unit, direction = "kernels", "regressed more than"
    elif current_kind == "trainer":
        failures, lines = compare(current, baseline, args.tolerance, unit="x")
        unit, direction = "trainer speedups", "regressed more than"
    elif current_kind == "quant":
        failures, lines = compare(current, baseline, args.tolerance,
                                  unit="overlap")
        unit, direction = "quant metrics", "regressed more than"
    else:
        failures, lines = compare_latency(current, baseline, args.tolerance,
                                          args.latency_slack_ms)
        unit, direction = "p99 gauges", "slowed more than"
    print(f"perf gate [{current_kind}]: {args.current} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    print("\n".join(lines))
    floor_failures, floor_lines = absolute_floors(current_kind, current_doc)
    if floor_lines:
        print("absolute floors (machine-relative, baseline-independent):")
        print("\n".join(floor_lines))
    if failures or floor_failures:
        if failures:
            print(f"\nFAIL: {len(failures)} {unit} {direction} "
                  f"{args.tolerance:.0%}: {', '.join(failures)}")
        if floor_failures:
            print(f"\nFAIL: {len(floor_failures)} absolute floor(s) broken: "
                  f"{', '.join(floor_failures)}")
        return 1
    print(f"\nPASS: {len(current)} {unit} within {args.tolerance:.0%} of "
          "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
