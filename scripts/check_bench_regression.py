#!/usr/bin/env python3
"""Compares a bench JSON run against the checked-in CI baseline.

Usage: check_bench_regression.py CURRENT BASELINE [--tolerance 0.25]
       check_bench_regression.py --self-test

Three document kinds are auto-detected:

* Kernel throughput (BENCH_kernels.json, `kernels[]` entries): per-kernel
  gate on `serial_gflops` — the run FAILS when any kernel drops below
  `baseline * (1 - tolerance)`. Higher is better.
* Trainer fusion speedup (BENCH_trainer.json, `trainer[]` entries): per-run
  gate on `fused_speedup` (fused epoch time vs eager epoch time) — the run
  FAILS when the ratio drops below `baseline * (1 - tolerance)`. Higher is
  better. A speedup is a ratio of two runs on the same machine, so it is
  far less noise-prone than an absolute time; bitwise equality and the
  zero-alloc steady state are asserted inside bench_trainer itself and
  never reach this gate.
* Latency summaries (BENCH_serving.json / BENCH_cluster.json, obs-exporter
  `gauges{}` docs): per-gauge gate on every gauge whose name contains
  `p99` and ends in `_ms` — the run FAILS when the current value exceeds
  `baseline * (1 + tolerance) + slack`. Lower is better. The absolute
  slack (--latency-slack-ms, default 0.5) keeps sub-millisecond baselines
  from tripping on scheduler jitter alone. Non-p99 gauges (p50, QPS, shed
  counts) are informational context, never gated.

The default 25% tolerance absorbs shared-runner noise (the CI smoke run
times each kernel for only ~10ms); latency gates are noisier still, so CI
passes a wider --tolerance for those. Tighten locally when hunting a
specific regression. Entries present in only one file are reported but
never fail the gate, so adding or renaming a kernel/gauge doesn't require
a baseline update in the same commit — regenerate afterwards:

    build/bench/bench_kernels --smoke            # warm-up run, discarded
    build/bench/bench_kernels --smoke
    cp BENCH_kernels.json bench/baselines/ci_baseline.json
    build/bench/bench_serving                    # NMCDR_BENCH_SCALE=smoke
    cp BENCH_serving.json bench/baselines/serving_baseline.json
    build/bench/bench_cluster --smoke
    cp BENCH_cluster.json bench/baselines/cluster_baseline.json
    build/bench/bench_trainer --smoke
    cp BENCH_trainer.json bench/baselines/trainer_baseline.json

`--self-test` verifies the gate itself trips in both modes: a baseline
inflated 2x above a throughput run must fail, a latency run inflated 2x
above its baseline must fail, and identical pairs must pass. CI runs this
before the real comparisons so a parsing bug can't silently turn the gate
green.

Exit codes: 0 pass, 1 regression (or self-test failure), 2 usage/IO error.
"""

import argparse
import json
import sys


def load_entries(path):
    """Returns ("kernels"|"trainer"|"latency", {name: value}) from a bench JSON.

    BENCH_kernels.json carries kernels[] (serial_gflops, higher-better);
    BENCH_trainer.json carries trainer[] (fused_speedup, higher-better);
    obs-exporter docs (schema NMCDR_OBS_V1) carry gauges{} from which the
    `*p99*_ms` latency gauges are gated (lower-better).
    """
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    # Obs-exporter docs also carry a "kernels" section (per-kernel trace
    # stats, a different shape), so detect by schema first: gauge docs are
    # latency summaries, and only BENCH_kernels.json's list-of-dicts with
    # serial_gflops is a kernel-throughput doc.
    gauges = doc.get("gauges")
    if isinstance(gauges, dict):
        latencies = {name: float(value) for name, value in gauges.items()
                     if "p99" in name and name.endswith("_ms")}
        if latencies:
            return "latency", latencies
        raise ValueError(f"{path}: gauge doc has no *p99*_ms gauges")
    runs = doc.get("trainer", [])
    if isinstance(runs, list) and runs:
        return "trainer", {entry["name"]: float(entry["fused_speedup"])
                           for entry in runs}
    kernels = {}
    entries = doc.get("kernels", [])
    if isinstance(entries, list):
        for entry in entries:
            kernels[entry["name"]] = float(entry["serial_gflops"])
    if kernels:
        return "kernels", kernels
    raise ValueError(f"{path}: no kernels[], no trainer[], and no "
                     "*p99*_ms gauges")


def compare(current, baseline, tolerance, unit="gflops"):
    """Higher-is-better gate (throughput, speedups): (failures, lines)."""
    failures = []
    lines = []
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            lines.append(f"  NEW      {name:24s} {current[name]:8.3f} {unit} "
                         "(not in baseline, not gated)")
            continue
        if name not in current:
            lines.append(f"  MISSING  {name:24s} baseline "
                         f"{baseline[name]:8.3f} {unit} (not in current run, "
                         "not gated)")
            continue
        floor = baseline[name] * (1.0 - tolerance)
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        verdict = "ok" if current[name] >= floor else "REGRESSED"
        lines.append(f"  {verdict:8s} {name:24s} {current[name]:8.3f} vs "
                     f"baseline {baseline[name]:8.3f} {unit} "
                     f"({ratio:6.1%}, floor {floor:.3f})")
        if current[name] < floor:
            failures.append(name)
    return failures, lines


def compare_latency(current, baseline, tolerance, slack_ms):
    """Latency gate (lower is better): (failures, lines)."""
    failures = []
    lines = []
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            lines.append(f"  NEW      {name:40s} {current[name]:9.3f} ms "
                         "(not in baseline, not gated)")
            continue
        if name not in current:
            lines.append(f"  MISSING  {name:40s} baseline "
                         f"{baseline[name]:9.3f} ms (not in current run, "
                         "not gated)")
            continue
        ceiling = baseline[name] * (1.0 + tolerance) + slack_ms
        ratio = current[name] / baseline[name] if baseline[name] > 0 else 1.0
        verdict = "ok" if current[name] <= ceiling else "REGRESSED"
        lines.append(f"  {verdict:8s} {name:40s} {current[name]:9.3f} vs "
                     f"baseline {baseline[name]:9.3f} ms "
                     f"({ratio:6.1%}, ceiling {ceiling:.3f})")
        if current[name] > ceiling:
            failures.append(name)
    return failures, lines


def self_test(tolerance, slack_ms):
    """Both gates must fail on a 2x-worse run and pass on identity."""
    run = {"MatMulAccumInto": 10.0, "Add": 25.0, "SpMM": 4.0}
    inflated = {k: 2.0 * v for k, v in run.items()}
    failures, _ = compare(run, inflated, tolerance)
    if sorted(failures) != sorted(run):
        print("self-test FAILED: 2x-inflated baseline did not trip the gate "
              f"(failures={failures})")
        return 1
    failures, _ = compare(run, dict(run), tolerance)
    if failures:
        print(f"self-test FAILED: identical run flagged ({failures})")
        return 1
    # A drop inside tolerance must pass; one outside must fail.
    shaved = {k: v * (1.0 - tolerance * 0.5) for k, v in run.items()}
    failures, _ = compare(shaved, run, tolerance)
    if failures:
        print(f"self-test FAILED: in-tolerance drop flagged ({failures})")
        return 1
    dropped = {k: v * (1.0 - tolerance * 1.5) for k, v in run.items()}
    failures, _ = compare(dropped, run, tolerance)
    if sorted(failures) != sorted(run):
        print("self-test FAILED: out-of-tolerance drop not flagged "
              f"(failures={failures})")
        return 1

    # Trainer speedups ride the same higher-is-better gate; check the
    # realistic failure shape (fusion quietly losing its edge).
    speedups = {"NMCDR Music-Movie": 1.6}
    stalled = {k: 1.0 for k in speedups}
    failures, _ = compare(stalled, speedups, tolerance, unit="x")
    if sorted(failures) != sorted(speedups):
        print("self-test FAILED: fused speedup collapsing to 1.0x did not "
              f"trip the gate (failures={failures})")
        return 1
    failures, _ = compare(dict(speedups), speedups, tolerance, unit="x")
    if failures:
        print(f"self-test FAILED: identical speedup run flagged ({failures})")
        return 1

    # Latency mode: direction is inverted, and the absolute slack must
    # shield tiny baselines but not large ones.
    lat = {"serving.batch8.p99_ms": 5.0, "cluster.swap.after_p99_ms": 40.0}
    doubled = {k: 2.0 * v for k, v in lat.items()}
    failures, _ = compare_latency(doubled, lat, tolerance, slack_ms)
    if sorted(failures) != sorted(lat):
        print("self-test FAILED: 2x-slower latency run did not trip the gate "
              f"(failures={failures})")
        return 1
    failures, _ = compare_latency(lat, dict(lat), tolerance, slack_ms)
    if failures:
        print(f"self-test FAILED: identical latency run flagged ({failures})")
        return 1
    tiny = {"serving.batch1.p99_ms": 0.01}
    jittered = {"serving.batch1.p99_ms": 0.01 * (1.0 + tolerance) + slack_ms * 0.9}
    failures, _ = compare_latency(jittered, tiny, tolerance, slack_ms)
    if failures:
        print("self-test FAILED: sub-slack jitter on a tiny baseline flagged "
              f"({failures})")
        return 1
    faster = {k: v * 0.25 for k, v in lat.items()}
    failures, _ = compare_latency(faster, lat, tolerance, slack_ms)
    if failures:
        print(f"self-test FAILED: faster latency run flagged ({failures})")
        return 1

    # Missing/new entries warn but never gate, in either direction: renaming
    # a kernel or adding a gauge must not force a same-commit baseline bump.
    skewed_run = dict(run)
    skewed_run.pop("SpMM")
    skewed_run["BrandNewKernel"] = 0.001
    failures, lines = compare(skewed_run, run, tolerance)
    if failures:
        print(f"self-test FAILED: missing/new kernel entries gated ({failures})")
        return 1
    if not any("MISSING" in l for l in lines) or not any("NEW" in l for l in lines):
        print("self-test FAILED: missing/new kernel entries not reported")
        return 1
    skewed_lat = dict(lat)
    skewed_lat.pop("serving.batch8.p99_ms")
    skewed_lat["brand.new.p99_ms"] = 1e9
    failures, lines = compare_latency(skewed_lat, lat, tolerance, slack_ms)
    if failures:
        print(f"self-test FAILED: missing/new latency gauges gated ({failures})")
        return 1
    if not any("MISSING" in l for l in lines) or not any("NEW" in l for l in lines):
        print("self-test FAILED: missing/new latency gauges not reported")
        return 1
    print(f"self-test passed (tolerance {tolerance:.0%}, "
          f"latency slack {slack_ms:.2f} ms)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", nargs="?",
                        help="BENCH_*.json from this run")
    parser.add_argument("baseline", nargs="?",
                        help="matching file under bench/baselines/")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional change (default 0.25): "
                             "throughput drop for kernels, p99 increase for "
                             "latency docs")
    parser.add_argument("--latency-slack-ms", type=float, default=0.5,
                        help="absolute ms added to every latency ceiling "
                             "(default 0.5) so sub-ms baselines don't trip "
                             "on scheduler jitter")
    parser.add_argument("--self-test", action="store_true",
                        help="verify both gates trip on a 2x-worse run")
    args = parser.parse_args(argv)

    if not 0.0 < args.tolerance < 10.0:
        print(f"tolerance must be in (0, 10), got {args.tolerance}")
        return 2
    if args.latency_slack_ms < 0.0:
        print(f"latency slack must be >= 0, got {args.latency_slack_ms}")
        return 2
    if args.self_test:
        return self_test(args.tolerance, args.latency_slack_ms)
    if args.current is None or args.baseline is None:
        parser.print_usage()
        return 2

    try:
        current_kind, current = load_entries(args.current)
        baseline_kind, baseline = load_entries(args.baseline)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"error: {err}")
        return 2
    if current_kind != baseline_kind:
        print(f"error: {args.current} is a {current_kind} doc but "
              f"{args.baseline} is a {baseline_kind} doc")
        return 2

    if current_kind == "kernels":
        failures, lines = compare(current, baseline, args.tolerance)
        unit, direction = "kernels", "regressed more than"
    elif current_kind == "trainer":
        failures, lines = compare(current, baseline, args.tolerance, unit="x")
        unit, direction = "trainer speedups", "regressed more than"
    else:
        failures, lines = compare_latency(current, baseline, args.tolerance,
                                          args.latency_slack_ms)
        unit, direction = "p99 gauges", "slowed more than"
    print(f"perf gate [{current_kind}]: {args.current} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    print("\n".join(lines))
    if failures:
        print(f"\nFAIL: {len(failures)} {unit} {direction} "
              f"{args.tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nPASS: {len(current)} {unit} within {args.tolerance:.0%} of "
          "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
