#!/usr/bin/env bash
# One-shot reproduction: build, run the test suite, regenerate every paper
# table/figure, and collect the outputs.
#
#   scripts/reproduce.sh [smoke|small|full]
#
# smoke finishes in minutes on one core; small (default) is the recorded
# configuration; full is ~4x small.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-small}"
export NMCDR_BENCH_SCALE="$SCALE"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p "results/$SCALE"
{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $b ====="
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt
mv -f ./*.csv "results/$SCALE"/ 2>/dev/null || true

echo
echo "done: test_output.txt, bench_output.txt, results/$SCALE/*.csv"
