#!/usr/bin/env bash
# One-shot reproduction: build, run the test suite, regenerate every paper
# table/figure, and collect the outputs.
#
#   scripts/reproduce.sh [--fast] [smoke|small|full]
#
# smoke finishes in minutes on one core; small (default) is the recorded
# configuration; full is ~4x small.
#
# Sanitizer modes (smoke scale only):
#   default  — thorough: the FULL test suite under ASan+UBSan, then the
#              concurrent serving subset under TSan. This is the
#              pre-release gate; budget ~3x the plain smoke time.
#   --fast   — both sanitizer legs run only the TSan-filtered concurrent
#              subset CI uses (serving_engine_test serving_test
#              thread_pool_test backend_equivalence_test integration_test
#              obs_test program_test trainer_test — the last two cover the
#              fused graph-program replay, which dispatches onto the same
#              shared pool). Catches the races and lifetime bugs that
#              actually involve threads in a fraction of the time; use it
#              for iterating, keep the default for sign-off.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [ "${1:-}" = "--fast" ]; then
  FAST=1
  shift
fi
SCALE="${1:-small}"
export NMCDR_BENCH_SCALE="$SCALE"

# The concurrent-surface test subset (mirrors the CI tsan-serving job).
# program_test / trainer_test exercise the fused graph-program replay —
# fusion is default-on, so the sanitizers see the fused kernels sharded
# across the 4-thread pool.
SANITIZER_SUBSET=(serving_engine_test serving_test thread_pool_test
  backend_equivalence_test integration_test obs_test program_test
  trainer_test)

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Static verification gate: symbolically shape-check every registered model
# over every scenario preset (plus the gradient-coverage audit) before any
# training binary runs. Fails the reproduction on any finding.
./build/tools/nmcdr_analyze --scale="$SCALE" --gradcheck \
  --report=analyze_report.txt

# Static hot-path gate: the serving hot path must stay allocation-, throw-,
# and copy-free (ctest already ran hotpath_lint_test; re-running here keeps
# the report next to the other gates and renders the hot call tree that
# documents exactly which functions the zero-alloc discipline covers).
./build/tools/nmcdr_lint --hotpath . 2>&1 | tee hotpath_lint_report.txt
./build/tools/nmcdr_hotpath --dot=hot_path.dot --text=hot_path.txt . \
  | tee hotpath_report.txt

# In smoke mode, additionally run the sanitizer matrix (separate
# instrumented build trees): ASan+UBSan (full suite, or the concurrent
# subset under --fast) and the concurrent serving runtime under TSan.
# Each leg is skipped when the toolchain lacks the runtime.
sanitizer_available() {
  echo 'int main(){return 0;}' \
    | c++ "-fsanitize=$1" -x c++ - -o "build/sanitize_probe_${1//,/_}" \
        2>/dev/null
}

run_subset() {
  # NMCDR_THREADS=4 sizes the shared pool so the parallel kernel backend,
  # the observability shards, and the pool-backed serving path actually
  # run sharded under the sanitizer.
  local tree="$1"
  local t
  for t in "${SANITIZER_SUBSET[@]}"; do
    NMCDR_THREADS=4 "./$tree/tests/$t"
  done
}

if [ "$SCALE" = "smoke" ]; then
  if sanitizer_available address,undefined; then
    cmake -B build-asan -G Ninja -DNMCDR_SANITIZE=address,undefined
    if [ "$FAST" = 1 ]; then
      cmake --build build-asan --target "${SANITIZER_SUBSET[@]}"
      run_subset build-asan
    else
      cmake --build build-asan
      ctest --test-dir build-asan --output-on-failure
    fi
  else
    echo "no ASan/UBSan runtime available; skipping sanitized suite"
  fi
  if sanitizer_available thread; then
    cmake -B build-tsan -G Ninja -DNMCDR_SANITIZE=thread
    cmake --build build-tsan --target "${SANITIZER_SUBSET[@]}"
    run_subset build-tsan
  else
    echo "no TSan runtime available; skipping sanitized serving tests"
  fi
fi

mkdir -p "results/$SCALE"
{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $b ====="
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt
mv -f ./*.csv "results/$SCALE"/ 2>/dev/null || true

echo
echo "done: test_output.txt, analyze_report.txt, hotpath_lint_report.txt," \
     "hotpath_report.txt, bench_output.txt, results/$SCALE/*.csv"
