#!/usr/bin/env bash
# One-shot reproduction: build, run the test suite, regenerate every paper
# table/figure, and collect the outputs.
#
#   scripts/reproduce.sh [smoke|small|full]
#
# smoke finishes in minutes on one core; small (default) is the recorded
# configuration; full is ~4x small.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-small}"
export NMCDR_BENCH_SCALE="$SCALE"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# In smoke mode, additionally exercise the concurrent serving runtime
# under ThreadSanitizer (separate instrumented build tree). Skipped when
# the toolchain has no TSan runtime.
if [ "$SCALE" = "smoke" ]; then
  if echo 'int main(){return 0;}' \
      | c++ -fsanitize=thread -x c++ - -o build/tsan_probe 2>/dev/null; then
    cmake -B build-tsan -G Ninja -DNMCDR_SANITIZE=thread
    cmake --build build-tsan --target serving_engine_test
    ./build-tsan/tests/serving_engine_test
  else
    echo "no TSan runtime available; skipping sanitized serving tests"
  fi
fi

mkdir -p "results/$SCALE"
{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $b ====="
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt
mv -f ./*.csv "results/$SCALE"/ 2>/dev/null || true

echo
echo "done: test_output.txt, bench_output.txt, results/$SCALE/*.csv"
