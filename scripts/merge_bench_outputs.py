#!/usr/bin/env python3
"""Merges two bench-suite outputs into one complete record.

Usage: merge_bench_outputs.py PRIMARY FALLBACK OUT

Takes every `===== build/bench/<name> =====` section from PRIMARY when the
section is complete there (the next section header or end-of-run marker
follows it), and fills any missing or truncated sections from FALLBACK.
Used to combine a high-fidelity (slow) run with a complete (fast) run.
"""

import re
import sys


def parse_sections(path):
    sections = {}
    order = []
    current = None
    lines = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            for line in f:
                match = re.match(r"^===== (\S+) =====$", line.strip())
                if match:
                    if current is not None:
                        sections[current] = lines
                    current = match.group(1)
                    order.append(current)
                    lines = []
                elif current is not None:
                    lines.append(line)
        if current is not None:
            sections[current] = lines
    except FileNotFoundError:
        pass
    return sections, order


def main():
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    primary, primary_order = parse_sections(sys.argv[1])
    fallback, fallback_order = parse_sections(sys.argv[2])
    names = list(dict.fromkeys(fallback_order + primary_order))
    with open(sys.argv[3], "w", encoding="utf-8") as out:
        for name in names:
            body = primary.get(name)
            source = sys.argv[1]
            # A section is usable if it produced a table or benchmark lines.
            def usable(lines):
                return lines is not None and any(
                    "+--" in l or "_batch/" in l for l in lines)
            if not usable(body):
                body = fallback.get(name)
                source = sys.argv[2]
            if body is None:
                continue
            out.write(f"===== {name} =====\n")
            out.write(f"(section from {source})\n")
            out.writelines(l for l in body if "ALL_BENCHES_DONE" not in l)
    print(f"wrote {sys.argv[3]} ({len(names)} sections)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
