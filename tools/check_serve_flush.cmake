# Regression test for the nmcdr_serve --metrics-out flush contract: the
# observability dump must be written on EVERY exit path, including early
# failures. Drives the tool down its fastest failure path (--load-only
# against a snapshot file that does not exist), then requires (1) a
# non-zero exit and (2) a well-formed NMCDR_OBS_V1 dump on disk anyway.
#
# Invoked by the serve_flush_test CTest (tools/CMakeLists.txt) with:
#   -DSERVE_BIN=<path to nmcdr_serve>
#   -DWORK_DIR=<scratch directory for the dump and the missing snapshot>

if(NOT DEFINED SERVE_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSERVE_BIN=... -DWORK_DIR=... -P check_serve_flush.cmake")
endif()

set(out_json "${WORK_DIR}/serve_flush_metrics.json")
file(REMOVE "${out_json}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${SERVE_BIN}"
          --load-only
          --snapshot "${WORK_DIR}/does_not_exist.snapshot"
          --metrics-out "${out_json}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)

if(rc EQUAL 0)
  message(FATAL_ERROR "nmcdr_serve unexpectedly succeeded loading a missing snapshot\nstdout: ${stdout}")
endif()
if(NOT EXISTS "${out_json}")
  message(FATAL_ERROR "nmcdr_serve exited with ${rc} but did not flush --metrics-out on the failure path\nstdout: ${stdout}\nstderr: ${stderr}")
endif()

file(READ "${out_json}" dump)
if(NOT dump MATCHES "NMCDR_OBS_V1")
  message(FATAL_ERROR "flushed metrics dump is not a NMCDR_OBS_V1 document: ${out_json}")
endif()

message(STATUS "serve_flush_test passed: early-exit run (rc ${rc}) still flushed ${out_json}")
