// nmcdr_cli — command-line driver for the NMCDR pipeline.
//
// Subcommands:
//   list-models
//       Print every registered model name.
//   generate --scenario music-movie --scale small --out scenario.tsv
//       Generate a synthetic scenario preset and save it as TSV.
//   import --z loan.tsv --zbar fund.tsv --min-interactions 5 --out s.tsv
//       Join two real interaction logs (user<TAB>item[<TAB>rating]) into a
//       scenario on shared user keys.
//   run --scenario music-movie [--file s.tsv] --model NMCDR --ku 0.5
//       [--ds 1.0] [--dim 16] [--lr 0.002] [--steps 1200] [--seed 7]
//       [--threads N] [--backend serial|vector|parallel]
//       [--no-fusion] [--gat] [--dynamic-companion]
//       [--save-checkpoint ckpt.bin] [--load-checkpoint ckpt.bin]
//       [--metrics-out metrics.json] [--profile]
//       Train and evaluate one model on one configuration; prints
//       HR@10 / NDCG@10 / MRR per domain. --threads N sizes the shared
//       kernel pool (N=1 forces the serial backend; results are
//       bit-identical at any setting; default NMCDR_THREADS or all
//       cores). --backend pins the process-default kernel backend
//       (overrides NMCDR_BACKEND): serial reference, register-blocked
//       vector SIMD, or pool-sharded parallel — bit-identical results
//       by the backend contract, so this is a perf/debug switch.
//       --no-fusion trains fully eager instead of compiling the
//       step into a graph program (src/program); fused and eager runs
//       are bitwise identical, so this is a debugging/benchmark switch
//       (NMCDR_FUSION=0 in the environment does the same).
//       --metrics-out PATH writes the observability dump
//       (schema NMCDR_OBS_V1, src/obs/export.h: trainer epoch spans,
//       per-op call counts, per-kernel call/FLOP table) after the run;
//       --profile also records per-op/per-kernel wall time.
//
// Examples:
//   nmcdr_cli run --scenario phone-elec --model NMCDR --ku 0.1
//   nmcdr_cli run --file my_scenario.tsv --model PTUPCDR --steps 2000

#include <cstdio>
#include <memory>

#include "autograd/serialization.h"
#include "core/nmcdr_model.h"
#include "data/importer.h"
#include "data/loader.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "data/presets.h"
#include "tensor/backend.h"
#include "train/registry.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: nmcdr_cli <list-models|generate|import|run> "
               "[--flags]\n(see the header of tools/nmcdr_cli.cpp)\n");
  return 2;
}

BenchScale ParseScale(const std::string& s) {
  if (s == "smoke") return BenchScale::kSmoke;
  if (s == "full") return BenchScale::kFull;
  return BenchScale::kSmall;
}

bool PresetByName(const std::string& name, BenchScale scale,
                  SyntheticScenarioSpec* spec) {
  for (const SyntheticScenarioSpec& candidate : AllScenarioSpecs(scale)) {
    std::string key = candidate.name;  // e.g. "Music-Movie"
    for (char& c : key) c = c == ' ' ? '-' : static_cast<char>(tolower(c));
    if (key == name) {
      *spec = candidate;
      return true;
    }
  }
  return false;
}

int CmdListModels() {
  RegisterAllModels();
  for (const std::string& name : ModelRegistry::Instance().Names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdGenerate(const FlagParser& flags) {
  SyntheticScenarioSpec spec;
  const std::string scenario = flags.GetString("scenario", "music-movie");
  if (!PresetByName(scenario, ParseScale(flags.GetString("scale", "small")),
                    &spec)) {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
    return 2;
  }
  if (flags.Has("seed")) {
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  }
  const CdrScenario generated = GenerateScenario(spec);
  const std::string out = flags.GetString("out", "scenario.tsv");
  if (!SaveScenario(generated, out)) return 1;
  std::printf("wrote %s\n  %s\n  %s\n  overlapping: %d\n", out.c_str(),
              DomainStatsString(generated.z).c_str(),
              DomainStatsString(generated.zbar).c_str(),
              generated.NumOverlapping());
  return 0;
}

int CmdImport(const FlagParser& flags) {
  ImportOptions options;
  options.min_user_interactions = flags.GetInt("min-interactions", 5);
  options.min_rating = flags.GetDouble("min-rating", 0.0);
  options.skip_header = flags.GetBool("skip-header", false);
  const std::string sep = flags.GetString("separator", "\t");
  if (!sep.empty()) options.separator = sep[0];

  ImportedDomain z, zbar;
  if (!ImportInteractions(flags.GetString("z"), options, &z) ||
      !ImportInteractions(flags.GetString("zbar"), options, &zbar)) {
    return 1;
  }
  const CdrScenario scenario =
      JoinDomains(flags.GetString("name", "imported"), z, zbar);
  const std::string out = flags.GetString("out", "scenario.tsv");
  if (!SaveScenario(scenario, out)) return 1;
  std::printf("wrote %s\n  %s\n  %s\n  overlapping: %d\n", out.c_str(),
              DomainStatsString(scenario.z).c_str(),
              DomainStatsString(scenario.zbar).c_str(),
              scenario.NumOverlapping());
  return 0;
}

int CmdRun(const FlagParser& flags) {
  RegisterAllModels();
  if (flags.GetBool("profile", false)) obs::SetProfilingEnabled(true);
  if (flags.Has("threads")) {
    ThreadPool::SetSharedThreads(flags.GetInt("threads", 0));
  }
  if (flags.Has("backend")) {
    const std::string backend_name = flags.GetString("backend", "");
    const KernelBackend* backend = BackendByName(backend_name);
    if (backend == nullptr) {
      std::fprintf(stderr,
                   "--backend %s: unknown (serial, vector, parallel)\n",
                   backend_name.c_str());
      return 2;
    }
    SetDefaultBackend(backend);
    std::printf("kernel backend: %s\n", backend->name());
  }
  // 1. Scenario: preset or file.
  CdrScenario scenario;
  if (flags.Has("file")) {
    if (!LoadScenario(flags.GetString("file"), &scenario)) return 1;
  } else {
    SyntheticScenarioSpec spec;
    const std::string name = flags.GetString("scenario", "music-movie");
    if (!PresetByName(name, ParseScale(flags.GetString("scale", "small")),
                      &spec)) {
      std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
      return 2;
    }
    scenario = GenerateScenario(spec);
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  Rng rng(seed);
  if (flags.Has("ku")) {
    scenario = ApplyOverlapRatio(scenario, flags.GetDouble("ku", 0.5), &rng);
  }
  if (flags.Has("ds")) {
    scenario = ApplyDensity(scenario, flags.GetDouble("ds", 1.0),
                            /*min_per_user=*/3, &rng);
  }
  std::printf("scenario %s (K_u-visible overlap %d)\n  %s\n  %s\n",
              scenario.name.c_str(), scenario.NumOverlapping(),
              DomainStatsString(scenario.z).c_str(),
              DomainStatsString(scenario.zbar).c_str());
  ExperimentData data(std::move(scenario), seed);

  // 2. Model.
  const std::string model_name = flags.GetString("model", "NMCDR");
  CommonHyper hyper;
  hyper.embed_dim = flags.GetInt("dim", 16);
  hyper.seed = seed;
  TrainConfig train;
  train.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  train.min_total_steps = flags.GetInt("steps", 1200);
  train.batch_size = flags.GetInt("batch", 256);
  train.eval_every = -1;
  train.early_stop_patience = flags.GetInt("patience", 3);
  train.threads = flags.GetInt("threads", 0);
  train.fusion = !flags.GetBool("no-fusion", false);
  train.verbose = flags.GetBool("verbose", false);

  std::unique_ptr<RecModel> model;
  if (model_name == "NMCDR" &&
      (flags.Has("gat") || flags.Has("dynamic-companion"))) {
    NmcdrConfig config;
    config.hidden_dim = hyper.embed_dim;
    if (flags.GetBool("gat", false)) config.gnn_kernel = GnnKernel::kGat;
    config.dynamic_companion_weights =
        flags.GetBool("dynamic-companion", false);
    model = std::make_unique<NmcdrModel>(data.View(), config, seed,
                                         train.learning_rate);
  } else {
    if (!ModelRegistry::Instance().Contains(model_name)) {
      std::fprintf(stderr, "unknown model '%s' (see list-models)\n",
                   model_name.c_str());
      return 2;
    }
    model = ModelRegistry::Instance().Get(model_name)(data.View(), hyper,
                                                      train.learning_rate);
  }
  if (flags.Has("load-checkpoint")) {
    if (!ag::LoadCheckpoint(flags.GetString("load-checkpoint"),
                            model->params())) {
      return 1;
    }
    model->InvalidateCaches();
    std::printf("loaded checkpoint %s\n",
                flags.GetString("load-checkpoint").c_str());
  }

  // 3. Train (skipped with --steps 0) and evaluate.
  if (train.min_total_steps > 0) {
    train.epochs = 1;
    Trainer trainer(data.View(), train, &data.full_graph_z(),
                    &data.full_graph_zbar());
    const TrainSummary summary = trainer.Train(model.get());
    std::printf("trained %s: %d epochs, %.1fs, final loss %.4f, %lld "
                "params\n",
                model->name().c_str(), summary.epochs_run,
                summary.train_seconds, summary.final_loss,
                static_cast<long long>(model->ParameterCount()));
  }
  EvalConfig eval;
  eval.k = flags.GetInt("k", 10);
  const ScenarioMetrics test = EvaluateScenario(
      model.get(), data.full_graph_z(), data.full_graph_zbar(),
      data.split_z(), data.split_zbar(), EvalPhase::kTest, eval);

  TablePrinter table;
  table.SetHeader({"Domain", "HR@" + std::to_string(eval.k),
                   "NDCG@" + std::to_string(eval.k), "MRR", "users"});
  table.AddRow({data.scenario().z.name, FormatFloat(test.z.hr * 100, 2),
                FormatFloat(test.z.ndcg * 100, 2),
                FormatFloat(test.z.mrr * 100, 2),
                std::to_string(test.z.num_users)});
  table.AddRow({data.scenario().zbar.name,
                FormatFloat(test.zbar.hr * 100, 2),
                FormatFloat(test.zbar.ndcg * 100, 2),
                FormatFloat(test.zbar.mrr * 100, 2),
                std::to_string(test.zbar.num_users)});
  std::printf("%s", table.ToString().c_str());

  if (flags.Has("save-checkpoint")) {
    const std::string path = flags.GetString("save-checkpoint");
    if (!ag::SaveCheckpoint(*model->params(), path)) return 1;
    std::printf("saved checkpoint %s\n", path.c_str());
  }
  if (flags.Has("metrics-out")) {
    const std::string path = flags.GetString("metrics-out");
    if (!obs::WriteJsonFile(path)) return 1;
    std::printf("wrote metrics dump to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) {
  using namespace nmcdr;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  FlagParser flags(argc - 1, argv + 1);
  if (command == "list-models") return CmdListModels();
  if (command == "generate") return CmdGenerate(flags);
  if (command == "import") return CmdImport(flags);
  if (command == "run") return CmdRun(flags);
  return Usage();
}
