// Implementation of the shared structural model (see model.h):
//   1. Per src/ file: structural walk -> class regions + function regions.
//   2. Per class: mutex members and member->type map (trailing-underscore
//      member naming convention).
//   3. Per function: char-ordered event scan (lock acquisitions with the
//      held-stack snapshot, call sites, blocking primitives, ThreadPool
//      dispatch lambdas).
//   4. Cross-file resolution: lock identities ("Class::mu_"), call keys,
//      dispatch-lambda membership.
#include "tools/lint/model.h"

#include <algorithm>
#include <cctype>

#include "tools/lint/lint_internal.h"

namespace nmcdr {
namespace lint {
namespace internal {

bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kControl = {
      "if", "for", "while", "switch", "return", "sizeof", "catch",
      "new", "delete", "throw", "else", "do", "case", "default",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "alignof", "decltype", "noexcept", "operator", "co_await",
      "lock_guard", "unique_lock", "scoped_lock", "defined"};
  return kControl.count(s) != 0;
}

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kTypes = {
      "void", "bool", "char", "int", "float", "double", "auto",
      "int32_t", "int64_t", "uint32_t", "uint64_t", "size_t"};
  return IsControlKeyword(s) || kTypes.count(s) != 0;
}

bool InUtil(const std::string& path) { return path.starts_with("src/util/"); }

std::string IdentBefore(const std::string& s, size_t end) {
  size_t b = end;
  while (b > 0 && IsWordChar(s[b - 1])) --b;
  return s.substr(b, end - b);
}

size_t SkipSpacesBack(const std::string& s, size_t pos) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(s[pos - 1])) != 0) {
    --pos;
  }
  return pos;
}

bool IsWaitCall(const std::string& line, size_t pos) {
  const size_t p = SkipSpacesBack(line, pos);
  return (p >= 1 && line[p - 1] == '.') ||
         (p >= 2 && line[p - 1] == '>' && line[p - 2] == '-');
}

std::string JoinedFrom(const SourceFile& f, size_t li, size_t col) {
  std::string s = f.code[li].substr(col);
  for (size_t j = li + 1; j < f.code.size() && j <= li + 3; ++j) {
    s += " " + f.code[j];
  }
  return s;
}

std::vector<std::string> LockArgs(const std::string& joined, bool all_args) {
  size_t p = 0;
  while (p < joined.size() && IsWordChar(joined[p])) ++p;  // the lock token
  // Skip an optional template argument list.
  while (p < joined.size() &&
         std::isspace(static_cast<unsigned char>(joined[p])) != 0) {
    ++p;
  }
  if (p < joined.size() && joined[p] == '<') {
    int depth = 0;
    while (p < joined.size()) {
      if (joined[p] == '<') ++depth;
      if (joined[p] == '>' && --depth == 0) {
        ++p;
        break;
      }
      ++p;
    }
  }
  // Variable name.
  while (p < joined.size() &&
         (std::isspace(static_cast<unsigned char>(joined[p])) != 0 ||
          IsWordChar(joined[p]))) {
    ++p;
  }
  if (p >= joined.size() || joined[p] != '(') return {};
  // Balanced argument list, split on top-level commas.
  std::vector<std::string> args;
  std::string cur;
  int depth = 1;
  ++p;
  for (; p < joined.size() && depth > 0; ++p) {
    const char c = joined[p];
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') {
      if (--depth == 0) break;
    }
    if (c == ',' && depth == 1) {
      args.push_back(Trimmed(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!Trimmed(cur).empty()) args.push_back(Trimmed(cur));
  if (args.empty()) return {};
  if (!all_args) args.resize(1);
  std::vector<std::string> out;
  for (std::string& a : args) {
    if (a.find("defer_lock") != std::string::npos ||
        a.find("adopt_lock") != std::string::npos ||
        a.find("try_to_lock") != std::string::npos) {
      continue;
    }
    out.push_back(std::move(a));
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Structural walk: class regions and function regions
// ---------------------------------------------------------------------------

struct FuncRegion {
  std::string cls;
  std::string name;
  size_t head_line = 0;
  size_t open_line = 0;
  size_t open_col = 0;
  size_t close_line = 0;
};

/// Extracts the function name ending just before the first '(' in `head`:
/// "void ThreadPool::Submit(std..." -> "ThreadPool::Submit". Allows '::'
/// and '~' so destructors and qualified definitions resolve. Returns ""
/// when no plausible name precedes the paren (lambdas, initializers).
std::string FuncNameFromHead(const std::string& head) {
  const size_t paren = head.find('(');
  if (paren == std::string::npos) return "";
  size_t e = SkipSpacesBack(head, paren);
  size_t b = e;
  while (b > 0) {
    const char c = head[b - 1];
    if (IsWordChar(c) || c == '~') {
      --b;
    } else if (c == ':' && b > 1 && head[b - 2] == ':') {
      b -= 2;
    } else {
      break;
    }
  }
  std::string name = head.substr(b, e - b);
  if (name.empty()) return "";
  // The trailing simple identifier must not be a keyword ("if", "while").
  const size_t sep = name.rfind("::");
  const std::string last = sep == std::string::npos ? name : name.substr(sep + 2);
  if (last.empty() || IsKeyword(last) ||
      std::isdigit(static_cast<unsigned char>(last[0])) != 0) {
    return "";
  }
  return name;
}

/// Walks a file's blanked code recovering class-like regions (class AND
/// struct, skipping `enum class`) and function-definition regions with
/// their body extents. Preprocessor lines are ignored entirely.
void StructuralWalk(const SourceFile& f, std::vector<ClassInfo>* classes,
                    std::vector<FuncRegion>* funcs) {
  struct Frame {
    enum Kind { kNamespace, kClass, kFunction, kOther } kind = kOther;
    std::string name;       // class name or function name
    size_t begin_line = 0;  // line of the '{'
    size_t head_line = 0;
    size_t func_index = 0;  // into *funcs for kFunction
  };
  std::vector<Frame> stack;
  std::string head;
  size_t head_line = 0;  // line where the current head started

  const auto inside_function = [&] {
    for (const Frame& fr : stack) {
      if (fr.kind == Frame::kFunction) return true;
    }
    return false;
  };
  const auto enclosing_class = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Frame::kClass) return it->name;
    }
    return "";
  };

  for (size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    if (Trimmed(line).starts_with("#")) continue;
    for (size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      if (c == ';' || c == '}') {
        head.clear();
        head_line = li;
        if (c == '}') {
          if (!stack.empty()) {
            Frame done = stack.back();
            stack.pop_back();
            if (done.kind == Frame::kClass) {
              ClassInfo info;
              info.name = done.name;
              info.file = &f;
              info.begin = done.head_line;
              info.end = li;
              classes->push_back(info);
            } else if (done.kind == Frame::kFunction) {
              (*funcs)[done.func_index].close_line = li;
            }
          }
        }
        continue;
      }
      if (c != '{') {
        head += c;
        if (Trimmed(head).size() == 1) head_line = li;
        continue;
      }
      // Classify the block this '{' opens from the statement head.
      Frame fr;
      fr.begin_line = li;
      fr.head_line = head_line;
      const std::string h = Trimmed(head);
      head.clear();
      head_line = li;
      const size_t first_word_end = [&] {
        size_t p = 0;
        while (p < h.size() && IsWordChar(h[p])) ++p;
        return p;
      }();
      const std::string first = h.substr(0, first_word_end);
      if (HasToken(h, "namespace")) {
        fr.kind = Frame::kNamespace;
      } else if ((HasToken(h, "class") || HasToken(h, "struct")) &&
                 !HasToken(h, "enum") && h.find('(') == std::string::npos &&
                 !h.ends_with("=")) {
        fr.kind = Frame::kClass;
        const std::string tok = HasToken(h, "class") ? "class" : "struct";
        size_t p = FindToken(h, tok) + tok.size();
        while (p < h.size() &&
               std::isspace(static_cast<unsigned char>(h[p])) != 0) {
          ++p;
        }
        size_t q = p;
        while (q < h.size() && IsWordChar(h[q])) ++q;
        fr.name = h.substr(p, q - p);
        if (fr.name.empty()) fr.kind = Frame::kOther;
      } else if (!inside_function() && !h.empty() && !h.ends_with("=") &&
                 !h.ends_with(",") && !h.ends_with("(") &&
                 !IsControlKeyword(first)) {
        const std::string name = FuncNameFromHead(h);
        if (!name.empty()) {
          fr.kind = Frame::kFunction;
          FuncRegion region;
          const size_t sep = name.rfind("::");
          if (sep != std::string::npos) {
            region.cls = name.substr(0, sep);
            region.name = name.substr(sep + 2);
            // Strip nested qualifiers ("A::B::f" -> class "B").
            const size_t inner = region.cls.rfind("::");
            if (inner != std::string::npos) {
              region.cls = region.cls.substr(inner + 2);
            }
          } else {
            region.cls = enclosing_class();
            region.name = name;
          }
          region.head_line = fr.head_line;
          region.open_line = li;
          region.open_col = ci;
          fr.func_index = funcs->size();
          fr.name = region.name;
          funcs->push_back(region);
        }
      }
      stack.push_back(fr);
    }
  }
}

// ---------------------------------------------------------------------------
// Class member extraction
// ---------------------------------------------------------------------------

/// Collects `std::mutex name;` members and the member->type map for
/// trailing-underscore members whose type names a known class (resolved
/// later; here we record the last identifier token before the member
/// name, which handles both `AdmissionQueue admission_;` and
/// `std::shared_ptr<ShardedSnapshot> snapshot_;`).
void CollectMembers(const SourceFile& f, ClassInfo* info) {
  for (size_t li = info->begin; li <= info->end && li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    // std::mutex members (any name; `mutable` prefix allowed).
    size_t mpos = FindToken(line, "mutex");
    if (mpos != std::string::npos && mpos >= 5 &&
        line.compare(mpos - 5, 5, "std::") == 0) {
      size_t p = mpos + 5;
      while (p < line.size() &&
             std::isspace(static_cast<unsigned char>(line[p])) != 0) {
        ++p;
      }
      size_t q = p;
      while (q < line.size() && IsWordChar(line[q])) ++q;
      if (q > p) info->mutexes.insert(line.substr(p, q - p));
    }
    // Member declarations: `<...Type...> name_;` (also `= ...;`, `{...};`).
    const std::string t = Trimmed(line);
    if (t.empty() || t[0] == '#') continue;
    for (size_t ci = 0; ci < line.size(); ++ci) {
      if (!IsWordChar(line[ci])) continue;
      size_t q = ci;
      while (q < line.size() && IsWordChar(line[q])) ++q;
      const std::string word = line.substr(ci, q - ci);
      size_t after = q;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0) {
        ++after;
      }
      if (word.size() > 1 && word.ends_with("_") && after < line.size() &&
          (line[after] == ';' || line[after] == '=' || line[after] == '{') &&
          line.find('(') == std::string::npos) {
        // Type: last identifier token before the member name.
        std::string type;
        size_t p = 0;
        while (p < ci) {
          if (IsWordChar(line[p])) {
            size_t e = p;
            while (e < ci && IsWordChar(line[e])) ++e;
            type = line.substr(p, e - p);
            p = e;
          } else {
            ++p;
          }
        }
        if (!type.empty() && type != "std") info->members[word] = type;
      }
      ci = q;
    }
  }
}

// ---------------------------------------------------------------------------
// Function body event scan
// ---------------------------------------------------------------------------

struct LineEvent {
  enum Kind { kBrace, kLock, kCall, kBlock } kind = kBrace;
  size_t pos = 0;
  char brace = 0;
  size_t index = 0;  // into the per-line lock/call/block staging vectors
};

/// Parses receiver context for a call whose name starts at `name_pos`.
void ParseReceiver(const std::string& line, size_t name_pos, CallEvent* ev) {
  size_t p = SkipSpacesBack(line, name_pos);
  if (p >= 2 && line[p - 1] == ':' && line[p - 2] == ':') {
    ev->qualifier = IdentBefore(line, SkipSpacesBack(line, p - 2));
    return;
  }
  const bool dot = p >= 1 && line[p - 1] == '.';
  const bool arrow = p >= 2 && line[p - 1] == '>' && line[p - 2] == '-';
  if (!dot && !arrow) return;
  size_t r = p - (dot ? 1 : 2);
  r = SkipSpacesBack(line, r);
  const size_t recv_end = r;
  if (r >= 1 && line[r - 1] == ')') {
    // Receiver is a call: `Qual::Accessor()->name(` — record the
    // accessor's qualifier as the receiver-type hint (singleton pattern).
    int depth = 0;
    while (r > 0) {
      if (line[r - 1] == ')') ++depth;
      if (line[r - 1] == '(' && --depth == 0) {
        --r;
        break;
      }
      --r;
    }
    const size_t callee_end = SkipSpacesBack(line, r > 0 ? r - 1 + 1 : 0);
    const std::string accessor = IdentBefore(line, callee_end);
    size_t q = callee_end - accessor.size();
    q = SkipSpacesBack(line, q);
    if (q >= 2 && line[q - 1] == ':' && line[q - 2] == ':') {
      ev->qualifier = IdentBefore(line, SkipSpacesBack(line, q - 2));
    }
    ev->receiver_text =
        line.substr(std::min(q, callee_end), recv_end - std::min(q, callee_end));
    if (!ev->qualifier.empty()) {
      ev->receiver_text = ev->qualifier + "::" + ev->receiver_text;
    }
    return;
  }
  const std::string recv = IdentBefore(line, r);
  ev->receiver_text = recv;
  if (recv == "this") {
    ev->via_this = true;
  } else {
    ev->receiver = recv;
  }
}

void ScanFunctionBody(const SourceFile& f, const FuncRegion& region,
                      Func* func) {
  func->file = &f;
  func->head_line = region.head_line;
  func->body_begin = region.open_line;
  func->body_begin_col = region.open_col;
  func->body_end = region.close_line;

  struct ActiveLock {
    size_t acq_index;
    int depth;
  };
  std::vector<ActiveLock> active;
  int depth = 0;
  bool opened = false;

  for (size_t li = region.open_line;
       li <= region.close_line && li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    if (Trimmed(line).starts_with("#")) continue;
    const size_t start = li == region.open_line ? region.open_col : 0;

    // Stage this line's token events, then merge with braces in
    // char order so held-lock snapshots are exact.
    std::vector<LineEvent> events;
    std::vector<std::vector<std::string>> lock_args;
    std::vector<CallEvent> calls;
    std::vector<BlockEvent> blocks;

    for (const char* tok : {"lock_guard", "unique_lock", "scoped_lock"}) {
      size_t pos = FindToken(line, tok, start);
      while (pos != std::string::npos) {
        LineEvent ev;
        ev.kind = LineEvent::kLock;
        ev.pos = pos;
        ev.index = lock_args.size();
        lock_args.push_back(LockArgs(JoinedFrom(f, li, pos),
                                     std::string(tok) == "scoped_lock"));
        events.push_back(ev);
        pos = FindToken(line, tok, pos + 1);
      }
    }
    for (const char* tok : {"sleep_for", "sleep_until"}) {
      size_t pos = FindToken(line, tok, start);
      while (pos != std::string::npos) {
        LineEvent ev;
        ev.kind = LineEvent::kBlock;
        ev.pos = pos;
        ev.index = blocks.size();
        BlockEvent be;
        be.what = tok;
        be.site = {&f, li};
        be.pos = pos;
        blocks.push_back(be);
        events.push_back(ev);
        pos = FindToken(line, tok, pos + 1);
      }
    }
    for (const char* tok : {"wait", "wait_for", "wait_until"}) {
      size_t pos = FindToken(line, tok, start);
      while (pos != std::string::npos) {
        size_t after = pos + std::string(tok).size();
        while (after < line.size() &&
               std::isspace(static_cast<unsigned char>(line[after])) != 0) {
          ++after;
        }
        if (after < line.size() && line[after] == '(' &&
            IsWaitCall(line, pos)) {
          LineEvent ev;
          ev.kind = LineEvent::kBlock;
          ev.pos = pos;
          ev.index = blocks.size();
          BlockEvent be;
          be.what = tok;
          be.site = {&f, li};
          be.pos = pos;
          blocks.push_back(be);
          events.push_back(ev);
        }
        pos = FindToken(line, tok, pos + 1);
      }
    }
    // Call sites: identifier immediately followed by '('.
    for (size_t ci = start; ci < line.size(); ++ci) {
      if (!IsWordChar(line[ci]) || (ci > 0 && IsWordChar(line[ci - 1]))) {
        continue;
      }
      size_t q = ci;
      while (q < line.size() && IsWordChar(line[q])) ++q;
      const std::string word = line.substr(ci, q - ci);
      size_t after = q;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0) {
        ++after;
      }
      if (after >= line.size() || line[after] != '(' || IsKeyword(word) ||
          word.starts_with("NMCDR_")) {
        ci = q;
        continue;
      }
      LineEvent ev;
      ev.kind = LineEvent::kCall;
      ev.pos = ci;
      ev.index = calls.size();
      CallEvent ce;
      ce.name = word;
      ce.site = {&f, li};
      ce.pos = ci;
      ParseReceiver(line, ci, &ce);
      calls.push_back(ce);
      events.push_back(ev);
      ci = q;
    }
    for (size_t ci = start; ci < line.size(); ++ci) {
      if (line[ci] == '{' || line[ci] == '}') {
        LineEvent ev;
        ev.kind = LineEvent::kBrace;
        ev.pos = ci;
        ev.brace = line[ci];
        events.push_back(ev);
      }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const LineEvent& a, const LineEvent& b) {
                       return a.pos < b.pos;
                     });

    const auto held_now = [&] {
      std::vector<size_t> held;
      held.reserve(active.size());
      for (const ActiveLock& al : active) held.push_back(al.acq_index);
      return held;
    };

    bool done = false;
    for (const LineEvent& ev : events) {
      switch (ev.kind) {
        case LineEvent::kBrace:
          if (ev.brace == '{') {
            ++depth;
            opened = true;
          } else {
            --depth;
            while (!active.empty() && active.back().depth > depth) {
              active.pop_back();
            }
            if (opened && depth == 0) done = true;
          }
          break;
        case LineEvent::kLock:
          for (const std::string& arg : lock_args[ev.index]) {
            AcqEvent ae;
            ae.raw = arg;
            ae.site = {&f, li};
            ae.pos = ev.pos;
            ae.held = held_now();
            func->acquires.push_back(ae);
            active.push_back({func->acquires.size() - 1, depth});
          }
          break;
        case LineEvent::kCall: {
          CallEvent ce = calls[ev.index];
          ce.held = held_now();
          func->calls.push_back(ce);
          break;
        }
        case LineEvent::kBlock: {
          BlockEvent be = blocks[ev.index];
          be.held = held_now();
          func->blocking.push_back(be);
          break;
        }
      }
      if (done) break;
    }
    if (done) break;
  }
}

// ---------------------------------------------------------------------------
// Dispatch lambdas
// ---------------------------------------------------------------------------

/// Finds the `{ ... }` body of the lambda argument of a dispatch call:
/// scan forward from the call name for '(', then '[', then the first '{'
/// and its matching '}'.
bool FindDispatchLambda(const SourceFile& f, size_t line, size_t pos,
                        Range* out) {
  int paren = 0;
  bool saw_bracket = false;
  int braces = 0;
  for (size_t li = line; li < f.code.size() && li <= line + 80; ++li) {
    const std::string& code = f.code[li];
    for (size_t ci = li == line ? pos : 0; ci < code.size(); ++ci) {
      const char c = code[ci];
      if (braces == 0) {
        if (c == '(') ++paren;
        if (c == ')' && --paren == 0 && !saw_bracket) return false;
        if (c == '[' && paren >= 1) saw_bracket = true;
        if (c == '{' && saw_bracket) {
          braces = 1;
          out->begin_line = li;
          out->begin_pos = ci;
        }
      } else {
        if (c == '{') ++braces;
        if (c == '}' && --braces == 0) {
          out->end_line = li;
          out->end_pos = ci;
          return true;
        }
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

/// Resolves a lock argument to a stable mutex identity. Class-qualified
/// when the owner resolves; file-qualified otherwise (function-local
/// structs, statics).
std::string ResolveMutex(const Model& model, const Func& func,
                         std::string raw) {
  if (raw.starts_with("&")) raw = Trimmed(raw.substr(1));
  if (raw.starts_with("this->")) raw = raw.substr(6);
  const size_t dot = raw.find('.');
  const size_t arrow = raw.find("->");
  const size_t sep = std::min(dot, arrow);
  if (sep == std::string::npos) {
    // Bare identifier: a member of the enclosing class, else file-local.
    const auto cit = model.class_by_name.find(func.cls);
    if (cit != model.class_by_name.end() &&
        model.classes[cit->second].mutexes.count(raw) != 0) {
      return func.cls + "::" + raw;
    }
    return func.file->path + "::" + raw;
  }
  const std::string recv = Trimmed(raw.substr(0, sep));
  const std::string name =
      Trimmed(raw.substr(sep + (raw.compare(sep, 2, "->") == 0 ? 2 : 1)));
  const std::string type = MemberType(model, func.cls, recv);
  if (!type.empty()) {
    const auto cit = model.class_by_name.find(type);
    if (cit != model.class_by_name.end() &&
        model.classes[cit->second].mutexes.count(name) != 0) {
      return type + "::" + name;
    }
  }
  return func.file->path + "::" + name;
}

/// Resolves a call to a function-index key; "" when unknown (the call is
/// then simply absent from the call graph).
std::string ResolveCall(const Model& model, const Func& func,
                        const CallEvent& ev) {
  const auto lookup = [&](const std::string& key) {
    return model.func_by_key.count(key) != 0 ? key : std::string();
  };
  if (!ev.qualifier.empty()) return lookup(ev.qualifier + "::" + ev.name);
  if (!ev.receiver.empty()) {
    const std::string type = MemberType(model, func.cls, ev.receiver);
    if (!type.empty()) return lookup(type + "::" + ev.name);
    return "";
  }
  // Unqualified or this->: enclosing class method, else same-file free fn.
  if (!func.cls.empty()) {
    const std::string key = lookup(func.cls + "::" + ev.name);
    if (!key.empty()) return key;
  }
  if (ev.via_this) return "";
  return lookup(func.file->path + "::" + ev.name);
}

bool LooksLikePoolDispatch(const CallEvent& ev) {
  if (ev.name != "Submit" && ev.name != "ParallelFor") return false;
  if (ev.qualifier == "ThreadPool") return true;
  const std::string& r = ev.receiver_text.empty() ? ev.receiver
                                                  : ev.receiver_text;
  return r.find("pool") != std::string::npos ||
         r.find("Pool") != std::string::npos;
}

}  // namespace

std::string MemberType(const Model& model, const std::string& cls,
                       const std::string& member) {
  const auto cit = model.class_by_name.find(cls);
  if (cit == model.class_by_name.end()) return "";
  const auto& members = model.classes[cit->second].members;
  const auto mit = members.find(member);
  return mit == members.end() ? "" : mit->second;
}

const ClassInfo* EnclosingClass(const Model& model, const SourceFile& f,
                                size_t line) {
  const ClassInfo* best = nullptr;
  for (const ClassInfo& c : model.classes) {
    if (c.file != &f || line < c.begin || line > c.end) continue;
    if (best == nullptr || c.begin > best->begin) best = &c;
  }
  return best;
}

std::string AnnotatedMethod(const SourceFile& f, size_t line, size_t pos) {
  std::string stmt;
  size_t start = line;
  while (start > 0) {
    const std::string prev = Trimmed(f.code[start - 1]);
    if (prev.empty() || prev.ends_with(";") || prev.ends_with("{") ||
        prev.ends_with("}") || prev.starts_with("#") || line - start >= 4) {
      break;
    }
    --start;
  }
  size_t macro_pos = pos;
  for (size_t li = start; li < line; ++li) {
    stmt += f.code[li] + " ";
  }
  macro_pos += stmt.size();
  stmt += f.code[line];

  std::string method;
  for (size_t ci = 0; ci < macro_pos && ci < stmt.size(); ++ci) {
    if (!IsWordChar(stmt[ci]) || (ci > 0 && IsWordChar(stmt[ci - 1]))) {
      continue;
    }
    size_t q = ci;
    while (q < stmt.size() && IsWordChar(stmt[q])) ++q;
    const std::string word = stmt.substr(ci, q - ci);
    size_t after = q;
    while (after < stmt.size() &&
           std::isspace(static_cast<unsigned char>(stmt[after])) != 0) {
      ++after;
    }
    if (after < stmt.size() && stmt[after] == '(' && !IsKeyword(word) &&
        !word.starts_with("NMCDR_")) {
      method = word;
    }
    ci = q;
  }
  return method;
}

// ---------------------------------------------------------------------------
// Model construction
// ---------------------------------------------------------------------------

Model BuildModel(const std::vector<SourceFile>& files) {
  Model model;
  std::vector<std::pair<const SourceFile*, FuncRegion>> regions;
  for (const SourceFile& f : files) {
    if (!f.path.starts_with("src/")) continue;
    model.file_by_path[f.path] = &f;
    std::vector<FuncRegion> funcs;
    StructuralWalk(f, &model.classes, &funcs);
    for (FuncRegion& r : funcs) {
      if (r.close_line >= r.open_line) regions.emplace_back(&f, r);
    }
  }
  for (size_t i = 0; i < model.classes.size(); ++i) {
    CollectMembers(*model.classes[i].file, &model.classes[i]);
    // First definition wins; redefinitions across files are merged into
    // whichever parsed first (identical in practice).
    model.class_by_name.emplace(model.classes[i].name, i);
  }
  for (auto& [file, region] : regions) {
    Func func;
    func.cls = region.cls;
    func.name = region.name;
    func.key = (region.cls.empty() ? file->path : region.cls) +
               "::" + region.name;
    ScanFunctionBody(*file, region, &func);
    model.func_by_key[func.key].push_back(model.funcs.size());
    model.funcs.push_back(std::move(func));
  }
  // Resolve lock identities, calls, and dispatch-lambda membership.
  for (Func& func : model.funcs) {
    for (AcqEvent& a : func.acquires) {
      a.mutex = ResolveMutex(model, func, a.raw);
    }
    for (CallEvent& c : func.calls) {
      c.resolved = ResolveCall(model, func, c);
      if (LooksLikePoolDispatch(c)) {
        c.is_dispatch = true;
        Range body;
        if (FindDispatchLambda(*func.file, c.site.line, c.pos + c.name.size(),
                               &body)) {
          func.dispatch_bodies.push_back(body);
        }
      }
    }
    for (const Range& body : func.dispatch_bodies) {
      for (AcqEvent& a : func.acquires) {
        if (body.Contains(a.site.line, a.pos)) a.in_dispatch = true;
      }
      for (CallEvent& c : func.calls) {
        if (body.Contains(c.site.line, c.pos)) c.in_dispatch = true;
      }
      for (BlockEvent& b : func.blocking) {
        if (body.Contains(b.site.line, b.pos)) b.in_dispatch = true;
      }
    }
  }
  return model;
}

}  // namespace internal
}  // namespace lint
}  // namespace nmcdr
