// Include-graph rules: include-layering (the src/ module DAG) and
// include-cycle (file-level acyclicity). See tools/lint/lint.h for the
// rule catalogue.
#include <string>
#include <unordered_map>
#include <vector>

#include "tools/lint/lint_internal.h"

namespace nmcdr {
namespace lint {
namespace internal {
namespace {

/// Layer of a src/ module; -1 for unknown. Including across modules is
/// only legal downward or sideways in this order (same-module includes
/// are always fine; cycles among files are caught by the separate cycle
/// rule). Derived from the dependency order
///   util -> {obs, tensor} -> {autograd, graph} -> {data, program} ->
///   core -> {baselines, eval} -> train -> {analysis, serving, verify}.
/// obs sits beside tensor (above util only) so the kernel dispatchers can
/// open KernelScopes while obs itself stays dependency-free. program (the
/// graph-program compiler/replayer) sits above autograd: it implements the
/// OpStreamHandler seam autograd defines.
int ModuleRank(const std::string& module) {
  static const std::unordered_map<std::string, int> kRanks = {
      {"util", 0},      {"obs", 1},    {"tensor", 1},
      {"autograd", 2},  {"graph", 2},
      {"data", 3},      {"program", 3},
      {"core", 4},      {"baselines", 5}, {"eval", 5},
      {"train", 6},     {"analysis", 7}, {"serving", 7}, {"verify", 7},
  };
  const auto it = kRanks.find(module);
  return it == kRanks.end() ? -1 : it->second;
}

void CheckIncludeLayering(const std::vector<SourceFile>& files,
                          std::vector<Diagnostic>* out) {
  std::unordered_map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;
  for (const SourceFile& f : files) {
    const std::string from_module = SrcModule(f.path);
    if (from_module.empty()) continue;
    const int from_rank = ModuleRank(from_module);
    for (const IncludeEdge& e : ExtractIncludes(f)) {
      const std::string resolved = ResolveInclude(e.target, by_path);
      const std::string to_module = SrcModule(resolved);
      if (to_module.empty() || to_module == from_module) continue;
      const int to_rank = ModuleRank(to_module);
      if (from_rank < 0) {
        Add(f, e.line, "include-layering",
            "module '" + from_module +
                "' has no declared layer; add it to ModuleRank in "
                "tools/lint/rules_include.cc",
            out);
        break;  // one finding per undeclared module is enough
      }
      if (to_rank < 0) {
        Add(f, e.line, "include-layering",
            "included module '" + to_module +
                "' has no declared layer; add it to ModuleRank in "
                "tools/lint/rules_include.cc",
            out);
        continue;
      }
      if (from_rank < to_rank) {
        Add(f, e.line, "include-layering",
            "src/" + from_module + " (layer " + std::to_string(from_rank) +
                ") must not include src/" + to_module + " (layer " +
                std::to_string(to_rank) +
                "); declared order: util -> {obs, tensor} -> "
                "{autograd, graph} -> data -> core -> {baselines, eval} -> "
                "train -> {analysis, serving, verify}",
            out);
      }
    }
  }
}

void CheckIncludeCycles(const std::vector<SourceFile>& files,
                        std::vector<Diagnostic>* out) {
  std::unordered_map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;

  // File-level include DAG restricted to files in the set.
  std::unordered_map<std::string, std::vector<std::string>> graph;
  std::unordered_map<std::string, size_t> first_include_line;
  for (const SourceFile& f : files) {
    for (const IncludeEdge& e : ExtractIncludes(f)) {
      const std::string resolved = ResolveInclude(e.target, by_path);
      if (resolved.empty() || resolved == f.path) continue;
      graph[f.path].push_back(resolved);
      if (first_include_line.count(f.path) == 0) {
        first_include_line[f.path] = e.line;
      }
    }
  }

  // Iterative three-color DFS; a back edge closes a cycle, reported once
  // with the full path along the DFS stack.
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<std::string, Color> color;
  std::vector<std::string> order;
  order.reserve(files.size());
  for (const SourceFile& f : files) order.push_back(f.path);

  for (const std::string& root : order) {
    if (color[root] != Color::kWhite) continue;
    struct Frame {
      std::string node;
      size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({root});
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::vector<std::string>& next = graph[frame.node];
      if (frame.next >= next.size()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const std::string& child = next[frame.next++];
      if (color[child] == Color::kWhite) {
        color[child] = Color::kGray;
        stack.push_back({child});
      } else if (color[child] == Color::kGray) {
        // Cycle: child .. stack.back() .. child.
        std::string chain = child;
        size_t start = 0;
        for (size_t i = 0; i < stack.size(); ++i) {
          if (stack[i].node == child) start = i;
        }
        for (size_t i = start + 1; i < stack.size(); ++i) {
          chain += " -> " + stack[i].node;
        }
        chain += " -> " + child;
        const SourceFile* f = by_path.at(child);
        Add(*f, first_include_line.count(child) ? first_include_line[child] : 0,
            "include-cycle", "#include cycle: " + chain, out);
        color[child] = Color::kBlack;  // report each cycle entry once
      }
    }
  }
}

}  // namespace

void CheckIncludeRules(const std::vector<SourceFile>& files,
                       std::vector<Diagnostic>* out) {
  CheckIncludeLayering(files, out);
  CheckIncludeCycles(files, out);
}

}  // namespace internal
}  // namespace lint
}  // namespace nmcdr
