#ifndef NMCDR_TOOLS_LINT_MODEL_H_
#define NMCDR_TOOLS_LINT_MODEL_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "tools/lint/lint.h"

// The structural source model shared by the whole-program lint passes
// (rules_concurrency.cc, rules_hotpath.cc). A scope-tracking scanner over
// the blanked code channel recovers namespaces, class-like regions,
// function definitions, lock scopes, call sites, blocking primitives, and
// ThreadPool dispatch-lambda bodies, then resolves identities across the
// file set. It is deliberately a heuristic, not a C++ front-end: it
// handles this repo's clang-format style and resolves conservatively — an
// unresolvable receiver degrades to a file-qualified name and an
// unresolvable call is simply dropped from the call graph
// (under-approximation: no false edges from guessing).

namespace nmcdr {
namespace lint {
namespace internal {

struct Site {
  const SourceFile* file = nullptr;
  size_t line = 0;  // 0-based
};

struct ClassInfo {
  std::string name;
  const SourceFile* file = nullptr;
  size_t begin = 0;
  size_t end = 0;
  std::set<std::string> mutexes;                           // member names
  std::unordered_map<std::string, std::string> members;    // name_ -> Type
};

/// One std::lock_guard / unique_lock / scoped_lock acquisition.
struct AcqEvent {
  std::string raw;       // argument text as written ("mu_", "state.mu")
  std::string mutex;     // resolved identity ("ThreadPool::mu_")
  Site site;
  size_t pos = 0;        // column of the lock token
  std::vector<size_t> held;  // indices into Func::acquires held at this site
  bool in_dispatch = false;
};

/// One call site `name(...)`, with enough receiver context to resolve
/// later against the global class/function tables.
struct CallEvent {
  std::string name;
  std::string qualifier;      // X in `X::name(` or `X::Accessor()->name(`
  std::string receiver;       // simple receiver ident in `recv.name(`
  std::string receiver_text;  // raw receiver chars, for pool detection
  bool via_this = false;
  std::string resolved;       // function-index key, "" if unresolved
  Site site;
  size_t pos = 0;
  std::vector<size_t> held;
  bool in_dispatch = false;
  bool is_dispatch = false;   // this call hands a lambda to the ThreadPool
};

struct BlockEvent {
  std::string what;  // "sleep_for", "wait", ...
  Site site;
  size_t pos = 0;
  std::vector<size_t> held;
  bool in_dispatch = false;
};

/// A character range inside one file (dispatch-lambda bodies).
struct Range {
  size_t begin_line = 0, begin_pos = 0;
  size_t end_line = 0, end_pos = 0;
  bool Contains(size_t line, size_t pos) const {
    if (line < begin_line || line > end_line) return false;
    if (line == begin_line && pos <= begin_pos) return false;
    if (line == end_line && pos >= end_pos) return false;
    return true;
  }
};

struct Func {
  std::string cls;   // "" for free functions
  std::string name;
  std::string key;   // "Class::Name" or "path::name"
  const SourceFile* file = nullptr;
  size_t head_line = 0;
  size_t body_begin = 0;      // line of the opening '{'
  size_t body_begin_col = 0;  // column of the opening '{'
  size_t body_end = 0;
  std::vector<AcqEvent> acquires;
  std::vector<CallEvent> calls;
  std::vector<BlockEvent> blocking;
  std::vector<std::string> requires_held;  // qualified, from NMCDR_REQUIRES
  std::vector<Range> dispatch_bodies;      // lambda bodies handed to the pool
};

struct Model {
  std::vector<ClassInfo> classes;
  std::vector<Func> funcs;
  std::unordered_map<std::string, size_t> class_by_name;
  std::unordered_map<std::string, std::vector<size_t>> func_by_key;
  std::unordered_map<std::string, const SourceFile*> file_by_path;
};

/// Control-flow / statement keywords: a block or call can never be named
/// one of these. Type keywords are NOT here — function heads start with
/// them ("void ThreadPool::Submit(...) {").
bool IsControlKeyword(const std::string& s);

/// Words that can look like a call (`word(`) but never are one — the
/// control keywords plus type names appearing in function-pointer /
/// std::function parameter lists ("std::function<void(int64_t)>").
bool IsKeyword(const std::string& s);

bool InUtil(const std::string& path);

std::string IdentBefore(const std::string& s, size_t end);

size_t SkipSpacesBack(const std::string& s, size_t pos);

/// True when `pos` names a member call: `.wait(`, `->wait_for(` etc.
bool IsWaitCall(const std::string& line, size_t pos);

/// Joins `f.code[li]` from `col` with up to three successor lines so
/// multi-line argument lists parse; only the first line's positions
/// matter for events.
std::string JoinedFrom(const SourceFile& f, size_t li, size_t col);

/// Parses the constructor arguments of a `token<T...> name(args)`
/// declaration whose token starts `joined`:
/// "lock_guard<std::mutex> l(mu_);" -> {"mu_"}. With `all_args` every
/// argument is returned, otherwise only the first; lock tag types
/// (defer_lock etc.) are dropped.
std::vector<std::string> LockArgs(const std::string& joined, bool all_args);

/// Member->type lookup through the class table ("" when unknown).
std::string MemberType(const Model& model, const std::string& cls,
                       const std::string& member);

/// The class region (from the model) enclosing `line` in `f`; innermost
/// wins. Returns nullptr outside any class.
const ClassInfo* EnclosingClass(const Model& model, const SourceFile& f,
                                size_t line);

/// Method name owning an annotation macro at (line, pos): the last
/// `ident(` in the joined declaration statement before the macro token.
std::string AnnotatedMethod(const SourceFile& f, size_t line, size_t pos);

/// Builds the whole-program model over the src/ files in the set:
/// structural walk, member extraction, body event scans, cross-file
/// resolution of lock identities and call keys, and dispatch-lambda
/// membership (Func::dispatch_bodies plus the per-event in_dispatch
/// bits).
Model BuildModel(const std::vector<SourceFile>& files);

}  // namespace internal
}  // namespace lint
}  // namespace nmcdr

#endif  // NMCDR_TOOLS_LINT_MODEL_H_
