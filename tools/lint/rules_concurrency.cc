// The four concurrency passes: [lock-order], [thread-annotation],
// [rcu-read-scope], [pool-blocking]. See tools/lint/lint.h for the rule
// catalogue.
//
// Everything here is built on a scope-tracking scanner over the blanked
// code channel. The scanner is deliberately a heuristic, not a C++
// front-end: it recovers namespaces, class-like regions, function
// definitions, brace depth, lock scopes, and call sites well enough for
// this repo's (clang-format style) code, and resolves identities
// conservatively — an unresolvable receiver degrades to a file-qualified
// mutex name and an unresolvable call is simply dropped from the call
// graph (under-approximation: no false cycles from guessing).
//
// Pipeline:
//   1. Per src/ file: structural walk -> class regions + function regions.
//   2. Per class: mutex members and member->type map (trailing-underscore
//      member naming convention).
//   3. Per function: char-ordered event scan (lock acquisitions with the
//      held-stack snapshot, call sites, blocking primitives, ThreadPool
//      dispatch lambdas).
//   4. Cross-file resolution: lock identities ("Class::mu_"), call keys,
//      NMCDR_REQUIRES/NMCDR_EXCLUDES annotations.
//   5. Effective-acquires fixpoint over the resolved call graph.
//   6. The four passes emit diagnostics; BuildLockOrderGraph exports the
//      acquires-while-holding graph for nmcdr_racecheck.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "tools/lint/lint_internal.h"

namespace nmcdr {
namespace lint {
namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Site {
  const SourceFile* file = nullptr;
  size_t line = 0;  // 0-based
};

struct ClassInfo {
  std::string name;
  const SourceFile* file = nullptr;
  size_t begin = 0;
  size_t end = 0;
  std::set<std::string> mutexes;                           // member names
  std::unordered_map<std::string, std::string> members;    // name_ -> Type
};

/// One std::lock_guard / unique_lock / scoped_lock acquisition.
struct AcqEvent {
  std::string raw;       // argument text as written ("mu_", "state.mu")
  std::string mutex;     // resolved identity ("ThreadPool::mu_")
  Site site;
  size_t pos = 0;        // column of the lock token
  std::vector<size_t> held;  // indices into Func::acquires held at this site
  bool in_dispatch = false;
};

/// One call site `name(...)`, with enough receiver context to resolve
/// later against the global class/function tables.
struct CallEvent {
  std::string name;
  std::string qualifier;      // X in `X::name(` or `X::Accessor()->name(`
  std::string receiver;       // simple receiver ident in `recv.name(`
  std::string receiver_text;  // raw receiver chars, for pool detection
  bool via_this = false;
  std::string resolved;       // function-index key, "" if unresolved
  Site site;
  size_t pos = 0;
  std::vector<size_t> held;
  bool in_dispatch = false;
  bool is_dispatch = false;   // this call hands a lambda to the ThreadPool
};

struct BlockEvent {
  std::string what;  // "sleep_for", "wait", ...
  Site site;
  size_t pos = 0;
  std::vector<size_t> held;
  bool in_dispatch = false;
};

struct Func {
  std::string cls;   // "" for free functions
  std::string name;
  std::string key;   // "Class::Name" or "path::name"
  const SourceFile* file = nullptr;
  size_t head_line = 0;
  size_t body_begin = 0;
  size_t body_end = 0;
  std::vector<AcqEvent> acquires;
  std::vector<CallEvent> calls;
  std::vector<BlockEvent> blocking;
  std::vector<std::string> requires_held;  // qualified, from NMCDR_REQUIRES
};

struct Model {
  std::vector<ClassInfo> classes;
  std::vector<Func> funcs;
  std::unordered_map<std::string, size_t> class_by_name;
  std::unordered_map<std::string, std::vector<size_t>> func_by_key;
  std::unordered_map<std::string, const SourceFile*> file_by_path;
};

/// Control-flow / statement keywords: a block or call can never be named
/// one of these. Type keywords are NOT here — function heads start with
/// them ("void ThreadPool::Submit(...) {").
bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kControl = {
      "if", "for", "while", "switch", "return", "sizeof", "catch",
      "new", "delete", "throw", "else", "do", "case", "default",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "alignof", "decltype", "noexcept", "operator", "co_await",
      "lock_guard", "unique_lock", "scoped_lock", "defined"};
  return kControl.count(s) != 0;
}

/// Words that can look like a call (`word(`) but never are one — the
/// control keywords plus type names appearing in function-pointer /
/// std::function parameter lists ("std::function<void(int64_t)>").
bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kTypes = {
      "void", "bool", "char", "int", "float", "double", "auto",
      "int32_t", "int64_t", "uint32_t", "uint64_t", "size_t"};
  return IsControlKeyword(s) || kTypes.count(s) != 0;
}

bool InUtil(const std::string& path) { return path.starts_with("src/util/"); }

std::string IdentBefore(const std::string& s, size_t end) {
  size_t b = end;
  while (b > 0 && IsWordChar(s[b - 1])) --b;
  return s.substr(b, end - b);
}

size_t SkipSpacesBack(const std::string& s, size_t pos) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(s[pos - 1])) != 0) {
    --pos;
  }
  return pos;
}

// ---------------------------------------------------------------------------
// Structural walk: class regions and function regions
// ---------------------------------------------------------------------------

struct FuncRegion {
  std::string cls;
  std::string name;
  size_t head_line = 0;
  size_t open_line = 0;
  size_t open_col = 0;
  size_t close_line = 0;
};

/// Extracts the function name ending just before the first '(' in `head`:
/// "void ThreadPool::Submit(std..." -> "ThreadPool::Submit". Allows '::'
/// and '~' so destructors and qualified definitions resolve. Returns ""
/// when no plausible name precedes the paren (lambdas, initializers).
std::string FuncNameFromHead(const std::string& head) {
  const size_t paren = head.find('(');
  if (paren == std::string::npos) return "";
  size_t e = SkipSpacesBack(head, paren);
  size_t b = e;
  while (b > 0) {
    const char c = head[b - 1];
    if (IsWordChar(c) || c == '~') {
      --b;
    } else if (c == ':' && b > 1 && head[b - 2] == ':') {
      b -= 2;
    } else {
      break;
    }
  }
  std::string name = head.substr(b, e - b);
  if (name.empty()) return "";
  // The trailing simple identifier must not be a keyword ("if", "while").
  const size_t sep = name.rfind("::");
  const std::string last = sep == std::string::npos ? name : name.substr(sep + 2);
  if (last.empty() || IsKeyword(last) ||
      std::isdigit(static_cast<unsigned char>(last[0])) != 0) {
    return "";
  }
  return name;
}

/// Walks a file's blanked code recovering class-like regions (class AND
/// struct, skipping `enum class`) and function-definition regions with
/// their body extents. Preprocessor lines are ignored entirely.
void StructuralWalk(const SourceFile& f, std::vector<ClassInfo>* classes,
                    std::vector<FuncRegion>* funcs) {
  struct Frame {
    enum Kind { kNamespace, kClass, kFunction, kOther } kind = kOther;
    std::string name;       // class name or function name
    size_t begin_line = 0;  // line of the '{'
    size_t head_line = 0;
    size_t func_index = 0;  // into *funcs for kFunction
  };
  std::vector<Frame> stack;
  std::string head;
  size_t head_line = 0;  // line where the current head started

  const auto inside_function = [&] {
    for (const Frame& fr : stack) {
      if (fr.kind == Frame::kFunction) return true;
    }
    return false;
  };
  const auto enclosing_class = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Frame::kClass) return it->name;
    }
    return "";
  };

  for (size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    if (Trimmed(line).starts_with("#")) continue;
    for (size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      if (c == ';' || c == '}') {
        head.clear();
        head_line = li;
        if (c == '}') {
          if (!stack.empty()) {
            Frame done = stack.back();
            stack.pop_back();
            if (done.kind == Frame::kClass) {
              ClassInfo info;
              info.name = done.name;
              info.file = &f;
              info.begin = done.head_line;
              info.end = li;
              classes->push_back(info);
            } else if (done.kind == Frame::kFunction) {
              (*funcs)[done.func_index].close_line = li;
            }
          }
        }
        continue;
      }
      if (c != '{') {
        head += c;
        if (Trimmed(head).size() == 1) head_line = li;
        continue;
      }
      // Classify the block this '{' opens from the statement head.
      Frame fr;
      fr.begin_line = li;
      fr.head_line = head_line;
      const std::string h = Trimmed(head);
      head.clear();
      head_line = li;
      const size_t first_word_end = [&] {
        size_t p = 0;
        while (p < h.size() && IsWordChar(h[p])) ++p;
        return p;
      }();
      const std::string first = h.substr(0, first_word_end);
      if (HasToken(h, "namespace")) {
        fr.kind = Frame::kNamespace;
      } else if ((HasToken(h, "class") || HasToken(h, "struct")) &&
                 !HasToken(h, "enum") && h.find('(') == std::string::npos &&
                 !h.ends_with("=")) {
        fr.kind = Frame::kClass;
        const std::string tok = HasToken(h, "class") ? "class" : "struct";
        size_t p = FindToken(h, tok) + tok.size();
        while (p < h.size() &&
               std::isspace(static_cast<unsigned char>(h[p])) != 0) {
          ++p;
        }
        size_t q = p;
        while (q < h.size() && IsWordChar(h[q])) ++q;
        fr.name = h.substr(p, q - p);
        if (fr.name.empty()) fr.kind = Frame::kOther;
      } else if (!inside_function() && !h.empty() && !h.ends_with("=") &&
                 !h.ends_with(",") && !h.ends_with("(") &&
                 !IsControlKeyword(first)) {
        const std::string name = FuncNameFromHead(h);
        if (!name.empty()) {
          fr.kind = Frame::kFunction;
          FuncRegion region;
          const size_t sep = name.rfind("::");
          if (sep != std::string::npos) {
            region.cls = name.substr(0, sep);
            region.name = name.substr(sep + 2);
            // Strip nested qualifiers ("A::B::f" -> class "B").
            const size_t inner = region.cls.rfind("::");
            if (inner != std::string::npos) {
              region.cls = region.cls.substr(inner + 2);
            }
          } else {
            region.cls = enclosing_class();
            region.name = name;
          }
          region.head_line = fr.head_line;
          region.open_line = li;
          region.open_col = ci;
          fr.func_index = funcs->size();
          fr.name = region.name;
          funcs->push_back(region);
        }
      }
      stack.push_back(fr);
    }
  }
}

// ---------------------------------------------------------------------------
// Class member extraction
// ---------------------------------------------------------------------------

/// Collects `std::mutex name;` members and the member->type map for
/// trailing-underscore members whose type names a known class (resolved
/// later; here we record the last identifier token before the member
/// name, which handles both `AdmissionQueue admission_;` and
/// `std::shared_ptr<ShardedSnapshot> snapshot_;`).
void CollectMembers(const SourceFile& f, ClassInfo* info) {
  for (size_t li = info->begin; li <= info->end && li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    // std::mutex members (any name; `mutable` prefix allowed).
    size_t mpos = FindToken(line, "mutex");
    if (mpos != std::string::npos && mpos >= 5 &&
        line.compare(mpos - 5, 5, "std::") == 0) {
      size_t p = mpos + 5;
      while (p < line.size() &&
             std::isspace(static_cast<unsigned char>(line[p])) != 0) {
        ++p;
      }
      size_t q = p;
      while (q < line.size() && IsWordChar(line[q])) ++q;
      if (q > p) info->mutexes.insert(line.substr(p, q - p));
    }
    // Member declarations: `<...Type...> name_;` (also `= ...;`, `{...};`).
    const std::string t = Trimmed(line);
    if (t.empty() || t[0] == '#') continue;
    for (size_t ci = 0; ci < line.size(); ++ci) {
      if (!IsWordChar(line[ci])) continue;
      size_t q = ci;
      while (q < line.size() && IsWordChar(line[q])) ++q;
      const std::string word = line.substr(ci, q - ci);
      size_t after = q;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0) {
        ++after;
      }
      if (word.size() > 1 && word.ends_with("_") && after < line.size() &&
          (line[after] == ';' || line[after] == '=' || line[after] == '{') &&
          line.find('(') == std::string::npos) {
        // Type: last identifier token before the member name.
        std::string type;
        size_t p = 0;
        while (p < ci) {
          if (IsWordChar(line[p])) {
            size_t e = p;
            while (e < ci && IsWordChar(line[e])) ++e;
            type = line.substr(p, e - p);
            p = e;
          } else {
            ++p;
          }
        }
        if (!type.empty() && type != "std") info->members[word] = type;
      }
      ci = q;
    }
  }
}

// ---------------------------------------------------------------------------
// Function body event scan
// ---------------------------------------------------------------------------

struct LineEvent {
  enum Kind { kBrace, kLock, kCall, kBlock } kind = kBrace;
  size_t pos = 0;
  char brace = 0;
  size_t index = 0;  // into the per-line lock/call/block staging vectors
};

/// Joins `line` with up to three successors so multi-line argument lists
/// parse; only the first line's positions matter for events.
std::string JoinedFrom(const SourceFile& f, size_t li, size_t col) {
  std::string s = f.code[li].substr(col);
  for (size_t j = li + 1; j < f.code.size() && j <= li + 3; ++j) {
    s += " " + f.code[j];
  }
  return s;
}

/// Parses the constructor arguments of a lock declaration starting at the
/// lock token: `lock_guard<std::mutex> l(mu_);` -> {"mu_"}. scoped_lock
/// yields every argument; lock tag types (defer_lock etc.) are dropped.
std::vector<std::string> LockArgs(const std::string& joined, bool all_args) {
  size_t p = 0;
  while (p < joined.size() && IsWordChar(joined[p])) ++p;  // the lock token
  // Skip an optional template argument list.
  while (p < joined.size() &&
         std::isspace(static_cast<unsigned char>(joined[p])) != 0) {
    ++p;
  }
  if (p < joined.size() && joined[p] == '<') {
    int depth = 0;
    while (p < joined.size()) {
      if (joined[p] == '<') ++depth;
      if (joined[p] == '>' && --depth == 0) {
        ++p;
        break;
      }
      ++p;
    }
  }
  // Variable name.
  while (p < joined.size() &&
         (std::isspace(static_cast<unsigned char>(joined[p])) != 0 ||
          IsWordChar(joined[p]))) {
    ++p;
  }
  if (p >= joined.size() || joined[p] != '(') return {};
  // Balanced argument list, split on top-level commas.
  std::vector<std::string> args;
  std::string cur;
  int depth = 1;
  ++p;
  for (; p < joined.size() && depth > 0; ++p) {
    const char c = joined[p];
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') {
      if (--depth == 0) break;
    }
    if (c == ',' && depth == 1) {
      args.push_back(Trimmed(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!Trimmed(cur).empty()) args.push_back(Trimmed(cur));
  if (args.empty()) return {};
  if (!all_args) args.resize(1);
  std::vector<std::string> out;
  for (std::string& a : args) {
    if (a.find("defer_lock") != std::string::npos ||
        a.find("adopt_lock") != std::string::npos ||
        a.find("try_to_lock") != std::string::npos) {
      continue;
    }
    out.push_back(std::move(a));
  }
  return out;
}

/// Parses receiver context for a call whose name starts at `name_pos`.
void ParseReceiver(const std::string& line, size_t name_pos, CallEvent* ev) {
  size_t p = SkipSpacesBack(line, name_pos);
  if (p >= 2 && line[p - 1] == ':' && line[p - 2] == ':') {
    ev->qualifier = IdentBefore(line, SkipSpacesBack(line, p - 2));
    return;
  }
  const bool dot = p >= 1 && line[p - 1] == '.';
  const bool arrow = p >= 2 && line[p - 1] == '>' && line[p - 2] == '-';
  if (!dot && !arrow) return;
  size_t r = p - (dot ? 1 : 2);
  r = SkipSpacesBack(line, r);
  const size_t recv_end = r;
  if (r >= 1 && line[r - 1] == ')') {
    // Receiver is a call: `Qual::Accessor()->name(` — record the
    // accessor's qualifier as the receiver-type hint (singleton pattern).
    int depth = 0;
    while (r > 0) {
      if (line[r - 1] == ')') ++depth;
      if (line[r - 1] == '(' && --depth == 0) {
        --r;
        break;
      }
      --r;
    }
    const size_t callee_end = SkipSpacesBack(line, r > 0 ? r - 1 + 1 : 0);
    const std::string accessor = IdentBefore(line, callee_end);
    size_t q = callee_end - accessor.size();
    q = SkipSpacesBack(line, q);
    if (q >= 2 && line[q - 1] == ':' && line[q - 2] == ':') {
      ev->qualifier = IdentBefore(line, SkipSpacesBack(line, q - 2));
    }
    ev->receiver_text =
        line.substr(std::min(q, callee_end), recv_end - std::min(q, callee_end));
    if (!ev->qualifier.empty()) {
      ev->receiver_text = ev->qualifier + "::" + ev->receiver_text;
    }
    return;
  }
  const std::string recv = IdentBefore(line, r);
  ev->receiver_text = recv;
  if (recv == "this") {
    ev->via_this = true;
  } else {
    ev->receiver = recv;
  }
}

/// True when `pos` names a blocking-wait member call: `.wait(`,
/// `->wait_for(` etc.
bool IsWaitCall(const std::string& line, size_t pos) {
  const size_t p = SkipSpacesBack(line, pos);
  return (p >= 1 && line[p - 1] == '.') ||
         (p >= 2 && line[p - 1] == '>' && line[p - 2] == '-');
}

void ScanFunctionBody(const SourceFile& f, const FuncRegion& region,
                      Func* func) {
  func->file = &f;
  func->head_line = region.head_line;
  func->body_begin = region.open_line;
  func->body_end = region.close_line;

  struct ActiveLock {
    size_t acq_index;
    int depth;
  };
  std::vector<ActiveLock> active;
  int depth = 0;
  bool opened = false;

  for (size_t li = region.open_line;
       li <= region.close_line && li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    if (Trimmed(line).starts_with("#")) continue;
    const size_t start = li == region.open_line ? region.open_col : 0;

    // Stage this line's token events, then merge with braces in
    // char order so held-lock snapshots are exact.
    std::vector<LineEvent> events;
    std::vector<std::vector<std::string>> lock_args;
    std::vector<CallEvent> calls;
    std::vector<BlockEvent> blocks;

    for (const char* tok : {"lock_guard", "unique_lock", "scoped_lock"}) {
      size_t pos = FindToken(line, tok, start);
      while (pos != std::string::npos) {
        LineEvent ev;
        ev.kind = LineEvent::kLock;
        ev.pos = pos;
        ev.index = lock_args.size();
        lock_args.push_back(LockArgs(JoinedFrom(f, li, pos),
                                     std::string(tok) == "scoped_lock"));
        events.push_back(ev);
        pos = FindToken(line, tok, pos + 1);
      }
    }
    for (const char* tok : {"sleep_for", "sleep_until"}) {
      size_t pos = FindToken(line, tok, start);
      while (pos != std::string::npos) {
        LineEvent ev;
        ev.kind = LineEvent::kBlock;
        ev.pos = pos;
        ev.index = blocks.size();
        BlockEvent be;
        be.what = tok;
        be.site = {&f, li};
        be.pos = pos;
        blocks.push_back(be);
        events.push_back(ev);
        pos = FindToken(line, tok, pos + 1);
      }
    }
    for (const char* tok : {"wait", "wait_for", "wait_until"}) {
      size_t pos = FindToken(line, tok, start);
      while (pos != std::string::npos) {
        size_t after = pos + std::string(tok).size();
        while (after < line.size() &&
               std::isspace(static_cast<unsigned char>(line[after])) != 0) {
          ++after;
        }
        if (after < line.size() && line[after] == '(' &&
            IsWaitCall(line, pos)) {
          LineEvent ev;
          ev.kind = LineEvent::kBlock;
          ev.pos = pos;
          ev.index = blocks.size();
          BlockEvent be;
          be.what = tok;
          be.site = {&f, li};
          be.pos = pos;
          blocks.push_back(be);
          events.push_back(ev);
        }
        pos = FindToken(line, tok, pos + 1);
      }
    }
    // Call sites: identifier immediately followed by '('.
    for (size_t ci = start; ci < line.size(); ++ci) {
      if (!IsWordChar(line[ci]) || (ci > 0 && IsWordChar(line[ci - 1]))) {
        continue;
      }
      size_t q = ci;
      while (q < line.size() && IsWordChar(line[q])) ++q;
      const std::string word = line.substr(ci, q - ci);
      size_t after = q;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0) {
        ++after;
      }
      if (after >= line.size() || line[after] != '(' || IsKeyword(word) ||
          word.starts_with("NMCDR_")) {
        ci = q;
        continue;
      }
      LineEvent ev;
      ev.kind = LineEvent::kCall;
      ev.pos = ci;
      ev.index = calls.size();
      CallEvent ce;
      ce.name = word;
      ce.site = {&f, li};
      ce.pos = ci;
      ParseReceiver(line, ci, &ce);
      calls.push_back(ce);
      events.push_back(ev);
      ci = q;
    }
    for (size_t ci = start; ci < line.size(); ++ci) {
      if (line[ci] == '{' || line[ci] == '}') {
        LineEvent ev;
        ev.kind = LineEvent::kBrace;
        ev.pos = ci;
        ev.brace = line[ci];
        events.push_back(ev);
      }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const LineEvent& a, const LineEvent& b) {
                       return a.pos < b.pos;
                     });

    const auto held_now = [&] {
      std::vector<size_t> held;
      held.reserve(active.size());
      for (const ActiveLock& al : active) held.push_back(al.acq_index);
      return held;
    };

    bool done = false;
    for (const LineEvent& ev : events) {
      switch (ev.kind) {
        case LineEvent::kBrace:
          if (ev.brace == '{') {
            ++depth;
            opened = true;
          } else {
            --depth;
            while (!active.empty() && active.back().depth > depth) {
              active.pop_back();
            }
            if (opened && depth == 0) done = true;
          }
          break;
        case LineEvent::kLock:
          for (const std::string& arg : lock_args[ev.index]) {
            AcqEvent ae;
            ae.raw = arg;
            ae.site = {&f, li};
            ae.pos = ev.pos;
            ae.held = held_now();
            func->acquires.push_back(ae);
            active.push_back({func->acquires.size() - 1, depth});
          }
          break;
        case LineEvent::kCall: {
          CallEvent ce = calls[ev.index];
          ce.held = held_now();
          func->calls.push_back(ce);
          break;
        }
        case LineEvent::kBlock: {
          BlockEvent be = blocks[ev.index];
          be.held = held_now();
          func->blocking.push_back(be);
          break;
        }
      }
      if (done) break;
    }
    if (done) break;
  }
}

// ---------------------------------------------------------------------------
// Dispatch lambdas
// ---------------------------------------------------------------------------

struct Range {
  size_t begin_line = 0, begin_pos = 0;
  size_t end_line = 0, end_pos = 0;
  bool Contains(size_t line, size_t pos) const {
    if (line < begin_line || line > end_line) return false;
    if (line == begin_line && pos <= begin_pos) return false;
    if (line == end_line && pos >= end_pos) return false;
    return true;
  }
};

/// Finds the `{ ... }` body of the lambda argument of a dispatch call:
/// scan forward from the call name for '(', then '[', then the first '{'
/// and its matching '}'.
bool FindDispatchLambda(const SourceFile& f, size_t line, size_t pos,
                        Range* out) {
  int paren = 0;
  bool saw_bracket = false;
  int braces = 0;
  for (size_t li = line; li < f.code.size() && li <= line + 80; ++li) {
    const std::string& code = f.code[li];
    for (size_t ci = li == line ? pos : 0; ci < code.size(); ++ci) {
      const char c = code[ci];
      if (braces == 0) {
        if (c == '(') ++paren;
        if (c == ')' && --paren == 0 && !saw_bracket) return false;
        if (c == '[' && paren >= 1) saw_bracket = true;
        if (c == '{' && saw_bracket) {
          braces = 1;
          out->begin_line = li;
          out->begin_pos = ci;
        }
      } else {
        if (c == '{') ++braces;
        if (c == '}' && --braces == 0) {
          out->end_line = li;
          out->end_pos = ci;
          return true;
        }
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

std::string MemberType(const Model& model, const std::string& cls,
                       const std::string& member) {
  const auto cit = model.class_by_name.find(cls);
  if (cit == model.class_by_name.end()) return "";
  const auto& members = model.classes[cit->second].members;
  const auto mit = members.find(member);
  return mit == members.end() ? "" : mit->second;
}

/// Resolves a lock argument to a stable mutex identity. Class-qualified
/// when the owner resolves; file-qualified otherwise (function-local
/// structs, statics).
std::string ResolveMutex(const Model& model, const Func& func,
                         std::string raw) {
  if (raw.starts_with("&")) raw = Trimmed(raw.substr(1));
  if (raw.starts_with("this->")) raw = raw.substr(6);
  const size_t dot = raw.find('.');
  const size_t arrow = raw.find("->");
  const size_t sep = std::min(dot, arrow);
  if (sep == std::string::npos) {
    // Bare identifier: a member of the enclosing class, else file-local.
    const auto cit = model.class_by_name.find(func.cls);
    if (cit != model.class_by_name.end() &&
        model.classes[cit->second].mutexes.count(raw) != 0) {
      return func.cls + "::" + raw;
    }
    return func.file->path + "::" + raw;
  }
  const std::string recv = Trimmed(raw.substr(0, sep));
  const std::string name =
      Trimmed(raw.substr(sep + (raw.compare(sep, 2, "->") == 0 ? 2 : 1)));
  const std::string type = MemberType(model, func.cls, recv);
  if (!type.empty()) {
    const auto cit = model.class_by_name.find(type);
    if (cit != model.class_by_name.end() &&
        model.classes[cit->second].mutexes.count(name) != 0) {
      return type + "::" + name;
    }
  }
  return func.file->path + "::" + name;
}

/// Resolves a call to a function-index key; "" when unknown (the call is
/// then simply absent from the call graph).
std::string ResolveCall(const Model& model, const Func& func,
                        const CallEvent& ev) {
  const auto lookup = [&](const std::string& key) {
    return model.func_by_key.count(key) != 0 ? key : std::string();
  };
  if (!ev.qualifier.empty()) return lookup(ev.qualifier + "::" + ev.name);
  if (!ev.receiver.empty()) {
    const std::string type = MemberType(model, func.cls, ev.receiver);
    if (!type.empty()) return lookup(type + "::" + ev.name);
    return "";
  }
  // Unqualified or this->: enclosing class method, else same-file free fn.
  if (!func.cls.empty()) {
    const std::string key = lookup(func.cls + "::" + ev.name);
    if (!key.empty()) return key;
  }
  if (ev.via_this) return "";
  return lookup(func.file->path + "::" + ev.name);
}

bool LooksLikePoolDispatch(const CallEvent& ev) {
  if (ev.name != "Submit" && ev.name != "ParallelFor") return false;
  if (ev.qualifier == "ThreadPool") return true;
  const std::string& r = ev.receiver_text.empty() ? ev.receiver
                                                  : ev.receiver_text;
  return r.find("pool") != std::string::npos ||
         r.find("Pool") != std::string::npos;
}

// ---------------------------------------------------------------------------
// Model construction
// ---------------------------------------------------------------------------

Model BuildModel(const std::vector<SourceFile>& files) {
  Model model;
  std::vector<std::pair<const SourceFile*, FuncRegion>> regions;
  for (const SourceFile& f : files) {
    if (!f.path.starts_with("src/")) continue;
    model.file_by_path[f.path] = &f;
    std::vector<FuncRegion> funcs;
    StructuralWalk(f, &model.classes, &funcs);
    for (FuncRegion& r : funcs) {
      if (r.close_line >= r.open_line) regions.emplace_back(&f, r);
    }
  }
  for (size_t i = 0; i < model.classes.size(); ++i) {
    CollectMembers(*model.classes[i].file, &model.classes[i]);
    // First definition wins; redefinitions across files are merged into
    // whichever parsed first (identical in practice).
    model.class_by_name.emplace(model.classes[i].name, i);
  }
  for (auto& [file, region] : regions) {
    Func func;
    func.cls = region.cls;
    func.name = region.name;
    func.key = (region.cls.empty() ? file->path : region.cls) +
               "::" + region.name;
    ScanFunctionBody(*file, region, &func);
    model.func_by_key[func.key].push_back(model.funcs.size());
    model.funcs.push_back(std::move(func));
  }
  // Resolve lock identities, calls, and dispatch-lambda membership.
  for (Func& func : model.funcs) {
    for (AcqEvent& a : func.acquires) {
      a.mutex = ResolveMutex(model, func, a.raw);
    }
    std::vector<Range> dispatch_bodies;
    for (CallEvent& c : func.calls) {
      c.resolved = ResolveCall(model, func, c);
      if (LooksLikePoolDispatch(c)) {
        c.is_dispatch = true;
        Range body;
        if (FindDispatchLambda(*func.file, c.site.line, c.pos + c.name.size(),
                               &body)) {
          dispatch_bodies.push_back(body);
        }
      }
    }
    for (const Range& body : dispatch_bodies) {
      for (AcqEvent& a : func.acquires) {
        if (body.Contains(a.site.line, a.pos)) a.in_dispatch = true;
      }
      for (CallEvent& c : func.calls) {
        if (body.Contains(c.site.line, c.pos)) c.in_dispatch = true;
      }
      for (BlockEvent& b : func.blocking) {
        if (body.Contains(b.site.line, b.pos)) b.in_dispatch = true;
      }
    }
  }
  return model;
}

// ---------------------------------------------------------------------------
// Annotations (NMCDR_REQUIRES / NMCDR_EXCLUDES)
// ---------------------------------------------------------------------------

struct Annotation {
  std::set<std::string> requires_held;  // qualified mutex ids
  std::set<std::string> excludes;
};

/// The class region (from the model) enclosing `line` in `f`; innermost
/// wins. Returns nullptr outside any class.
const ClassInfo* EnclosingClass(const Model& model, const SourceFile& f,
                                size_t line) {
  const ClassInfo* best = nullptr;
  for (const ClassInfo& c : model.classes) {
    if (c.file != &f || line < c.begin || line > c.end) continue;
    if (best == nullptr || c.begin > best->begin) best = &c;
  }
  return best;
}

/// Method name owning an annotation: the last `ident(` in the joined
/// declaration statement before the macro token.
std::string AnnotatedMethod(const SourceFile& f, size_t line, size_t pos) {
  std::string stmt;
  size_t start = line;
  while (start > 0) {
    const std::string prev = Trimmed(f.code[start - 1]);
    if (prev.empty() || prev.ends_with(";") || prev.ends_with("{") ||
        prev.ends_with("}") || prev.starts_with("#") || line - start >= 4) {
      break;
    }
    --start;
  }
  size_t macro_pos = pos;
  for (size_t li = start; li < line; ++li) {
    stmt += f.code[li] + " ";
  }
  macro_pos += stmt.size();
  stmt += f.code[line];

  std::string method;
  for (size_t ci = 0; ci < macro_pos && ci < stmt.size(); ++ci) {
    if (!IsWordChar(stmt[ci]) || (ci > 0 && IsWordChar(stmt[ci - 1]))) {
      continue;
    }
    size_t q = ci;
    while (q < stmt.size() && IsWordChar(stmt[q])) ++q;
    const std::string word = stmt.substr(ci, q - ci);
    size_t after = q;
    while (after < stmt.size() &&
           std::isspace(static_cast<unsigned char>(stmt[after])) != 0) {
      ++after;
    }
    if (after < stmt.size() && stmt[after] == '(' && !IsKeyword(word) &&
        !word.starts_with("NMCDR_")) {
      method = word;
    }
    ci = q;
  }
  return method;
}

std::map<std::string, Annotation> CollectAnnotations(
    const Model& model, const std::vector<SourceFile>& files,
    std::vector<Diagnostic>* out) {
  std::map<std::string, Annotation> annotations;
  for (const SourceFile& f : files) {
    if (!f.path.starts_with("src/")) continue;
    for (size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      if (Trimmed(line).starts_with("#")) continue;
      for (const char* macro : {"NMCDR_REQUIRES", "NMCDR_EXCLUDES"}) {
        size_t pos = FindToken(line, macro);
        while (pos != std::string::npos) {
          const size_t open = line.find('(', pos);
          const size_t close =
              open == std::string::npos ? std::string::npos
                                        : line.find(')', open);
          if (close == std::string::npos) break;
          const ClassInfo* cls = EnclosingClass(model, f, li);
          const std::string method = AnnotatedMethod(f, li, pos);
          if (cls == nullptr || method.empty()) {
            Add(f, li, "thread-annotation",
                std::string(macro) +
                    " must annotate a method declaration inside a class",
                out);
            pos = FindToken(line, macro, close);
            continue;
          }
          // Parse the comma-separated mutex list.
          size_t entry = open + 1;
          while (entry < close) {
            size_t comma = line.find(',', entry);
            if (comma == std::string::npos || comma > close) comma = close;
            std::string name = Trimmed(line.substr(entry, comma - entry));
            if (name.starts_with("this->")) name = name.substr(6);
            entry = comma + 1;
            if (name.empty()) continue;
            if (cls->mutexes.count(name) == 0) {
              Add(f, li, "thread-annotation",
                  std::string(macro) + "(" + name + ") on " + cls->name +
                      "::" + method + ": '" + name +
                      "' is not a declared std::mutex member of " + cls->name,
                  out);
              continue;
            }
            Annotation& a = annotations[cls->name + "::" + method];
            if (std::string(macro) == "NMCDR_REQUIRES") {
              a.requires_held.insert(cls->name + "::" + name);
            } else {
              a.excludes.insert(cls->name + "::" + name);
            }
          }
          pos = FindToken(line, macro, close);
        }
      }
    }
  }
  return annotations;
}

// ---------------------------------------------------------------------------
// Lock-order edges
// ---------------------------------------------------------------------------

struct InternalEdge {
  std::string from, to;
  Site from_site, to_site;
  std::string via;
};

/// Qualified mutexes held at an event: the textual held-stack plus the
/// function's NMCDR_REQUIRES-implied holds. Dispatch-lambda events run
/// later on a pool thread, so their textual holds are discarded.
std::vector<std::pair<std::string, Site>> HeldAt(
    const Func& func, const std::vector<size_t>& held, bool in_dispatch) {
  std::vector<std::pair<std::string, Site>> out;
  if (in_dispatch) return out;
  for (const std::string& m : func.requires_held) {
    out.emplace_back(m, Site{func.file, func.head_line});
  }
  for (size_t idx : held) {
    out.emplace_back(func.acquires[idx].mutex, func.acquires[idx].site);
  }
  return out;
}

/// Effective-acquires fixpoint: every (mutex, site) a call to `key` may
/// acquire synchronously, through any chain of resolved calls. Dispatch
/// lambdas are excluded (they run asynchronously).
std::map<std::string, std::map<std::string, Site>> EffectiveAcquires(
    const Model& model) {
  std::map<std::string, std::map<std::string, Site>> eff;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Func& func : model.funcs) {
      auto& mine = eff[func.key];
      for (const AcqEvent& a : func.acquires) {
        if (a.in_dispatch) continue;
        if (mine.emplace(a.mutex, a.site).second) changed = true;
      }
      for (const CallEvent& c : func.calls) {
        if (c.in_dispatch || c.resolved.empty()) continue;
        const auto it = eff.find(c.resolved);
        if (it == eff.end()) continue;
        for (const auto& [m, s] : it->second) {
          if (mine.emplace(m, s).second) changed = true;
        }
      }
    }
  }
  return eff;
}

std::vector<InternalEdge> ComputeEdges(
    const Model& model,
    const std::map<std::string, std::map<std::string, Site>>& eff) {
  std::vector<InternalEdge> edges;
  std::set<std::string> seen;
  const auto add_edge = [&](const std::string& from, const Site& fs,
                            const std::string& to, const Site& ts,
                            const std::string& via) {
    const std::string key = from + "\n" + to + "\n" + via;
    if (!seen.insert(key).second) return;
    edges.push_back({from, to, fs, ts, via});
  };
  for (const Func& func : model.funcs) {
    for (const AcqEvent& a : func.acquires) {
      for (const auto& [m, s] : HeldAt(func, a.held, a.in_dispatch)) {
        add_edge(m, s, a.mutex, a.site, "");
      }
    }
    for (const CallEvent& c : func.calls) {
      if (c.resolved.empty() || c.in_dispatch) continue;
      const auto it = eff.find(c.resolved);
      if (it == eff.end()) continue;
      for (const auto& [m1, s1] : HeldAt(func, c.held, c.in_dispatch)) {
        for (const auto& [m2, s2] : it->second) {
          add_edge(m1, s1, m2, s2, c.resolved);
        }
      }
    }
  }
  return edges;
}

void CheckLockOrder(const std::vector<InternalEdge>& edges,
                    std::vector<Diagnostic>* out) {
  std::map<std::string, std::vector<size_t>> adj;
  std::set<std::string> nodes;
  for (size_t i = 0; i < edges.size(); ++i) {
    adj[edges[i].from].push_back(i);
    nodes.insert(edges[i].from);
    nodes.insert(edges[i].to);
  }
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const std::string& root : nodes) {
    if (color[root] != Color::kWhite) continue;
    struct Frame {
      std::string node;
      size_t next = 0;
      size_t via_edge = 0;  // edge taken to enter this node
    };
    std::vector<Frame> stack;
    stack.push_back({root});
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      std::vector<size_t>& next = adj[frame.node];
      if (frame.next >= next.size()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const size_t ei = next[frame.next++];
      const InternalEdge& e = edges[ei];
      if (color[e.to] == Color::kWhite) {
        color[e.to] = Color::kGray;
        stack.push_back({e.to, 0, ei});
      } else if (color[e.to] == Color::kGray) {
        // Cycle: e.to .. frame.node -> e.to. Collect the edges.
        std::vector<size_t> cycle;
        size_t start = stack.size();
        for (size_t i = 0; i < stack.size(); ++i) {
          if (stack[i].node == e.to) start = i;
        }
        for (size_t i = start + 1; i < stack.size(); ++i) {
          cycle.push_back(stack[i].via_edge);
        }
        cycle.push_back(ei);
        std::string msg = "potential deadlock: lock-order cycle " + e.to;
        for (const size_t ci : cycle) msg += " -> " + edges[ci].to;
        for (const size_t ci : cycle) {
          const InternalEdge& ce = edges[ci];
          msg += "; " + ce.from + " (held since " + ce.from_site.file->path +
                 ":" + std::to_string(ce.from_site.line + 1) + ") -> " +
                 ce.to + " (acquired at " + ce.to_site.file->path + ":" +
                 std::to_string(ce.to_site.line + 1) + ")";
          if (!ce.via.empty()) msg += " via " + ce.via;
        }
        Add(*e.to_site.file, e.to_site.line, "lock-order", msg, out);
        color[e.to] = Color::kBlack;  // report each cycle entry once
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Annotation checks
// ---------------------------------------------------------------------------

void CheckAnnotations(const Model& model,
                      const std::map<std::string, Annotation>& annotations,
                      std::vector<Diagnostic>* out) {
  // A REQUIRES(m) body must not re-lock m.
  for (const Func& func : model.funcs) {
    const auto it = annotations.find(func.key);
    if (it == annotations.end()) continue;
    for (const std::string& m : it->second.requires_held) {
      for (const AcqEvent& a : func.acquires) {
        if (a.mutex == m && !a.in_dispatch) {
          Add(*a.site.file, a.site.line, "thread-annotation",
              func.key + " is NMCDR_REQUIRES(" + m +
                  ") but re-locks it here (self-deadlock)",
              out);
        }
      }
    }
  }
  // Call sites must satisfy the callee's contract.
  for (const Func& func : model.funcs) {
    for (const CallEvent& c : func.calls) {
      if (c.resolved.empty()) continue;
      const auto it = annotations.find(c.resolved);
      if (it == annotations.end()) continue;
      std::set<std::string> held;
      for (const auto& [m, s] : HeldAt(func, c.held, c.in_dispatch)) {
        held.insert(m);
      }
      for (const std::string& m : it->second.requires_held) {
        if (held.count(m) == 0) {
          Add(*c.site.file, c.site.line, "thread-annotation",
              "call to " + c.resolved + " requires " + m +
                  " held (NMCDR_REQUIRES) but it is not held here",
              out);
        }
      }
      for (const std::string& m : it->second.excludes) {
        if (held.count(m) != 0) {
          Add(*c.site.file, c.site.line, "thread-annotation",
              "call to " + c.resolved + " with " + m +
                  " held; the callee locks it (NMCDR_EXCLUDES, "
                  "self-deadlock)",
              out);
        }
      }
    }
  }
}

/// Seeds REQUIRES-implied holds onto the function model; annotation-name
/// validation diagnostics were already emitted by CollectAnnotations.
void ApplyRequires(Model* model,
                   const std::map<std::string, Annotation>& annotations) {
  for (Func& func : model->funcs) {
    const auto it = annotations.find(func.key);
    if (it == annotations.end()) continue;
    func.requires_held.assign(it->second.requires_held.begin(),
                              it->second.requires_held.end());
  }
}

// ---------------------------------------------------------------------------
// RCU read-scope
// ---------------------------------------------------------------------------

/// In src/serving/, a raw snapshot obtained from SnapshotRegistry::Acquire
/// must stay inside the acquiring scope: no member/static stores of the
/// shared_ptr or its .get() pointer, no returning the raw pointer.
void CheckRcuReadScope(const Model& model, std::vector<Diagnostic>* out) {
  for (const Func& func : model.funcs) {
    if (!func.file->path.starts_with("src/serving/")) continue;
    const SourceFile& f = *func.file;
    std::vector<std::string> locals;
    for (size_t li = func.body_begin;
         li <= func.body_end && li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      size_t apos = FindToken(line, "Acquire");
      if (apos != std::string::npos && IsWaitCall(line, apos)) {
        // Member-call Acquire: find the assignment target, if any.
        size_t eq = line.rfind('=', apos);
        while (eq != std::string::npos && eq > 0 &&
               (line[eq - 1] == '=' || line[eq - 1] == '!' ||
                line[eq - 1] == '<' || line[eq - 1] == '>' ||
                (eq + 1 < line.size() && line[eq + 1] == '='))) {
          eq = eq == 0 ? std::string::npos : line.rfind('=', eq - 1);
        }
        if (eq != std::string::npos) {
          const std::string lhs = IdentBefore(line, SkipSpacesBack(line, eq));
          if (!lhs.empty() && lhs.ends_with("_")) {
            Add(f, li, "rcu-read-scope",
                "snapshot from Acquire() stored directly into member '" +
                    lhs + "'; keep it local to the acquiring scope",
                out);
          } else if (HasToken(line, "static")) {
            Add(f, li, "rcu-read-scope",
                "snapshot from Acquire() stored into a static; it must not "
                "outlive the acquiring scope",
                out);
          } else if (!lhs.empty()) {
            locals.push_back(lhs);
          }
        }
        continue;
      }
      // Escapes of a tracked local snapshot.
      for (const std::string& var : locals) {
        const size_t vpos = FindToken(line, var);
        if (vpos == std::string::npos) continue;
        if (HasToken(line, "return") &&
            line.compare(vpos, var.size() + 5, var + ".get(") == 0) {
          Add(f, li, "rcu-read-scope",
              "raw snapshot pointer '" + var +
                  ".get()' escapes via return; return the shared_ptr or "
                  "use it inside the acquiring scope",
              out);
          continue;
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos || eq > vpos) continue;
        const std::string lhs = IdentBefore(line, SkipSpacesBack(line, eq));
        std::string rhs = Trimmed(line.substr(eq + 1));
        if (!rhs.empty() && rhs.back() == ';') {
          rhs = Trimmed(rhs.substr(0, rhs.size() - 1));
        }
        const bool rhs_is_snapshot =
            rhs == var || rhs == var + ".get()" || rhs == "&*" + var;
        if (!rhs_is_snapshot) continue;
        if (lhs.ends_with("_")) {
          Add(f, li, "rcu-read-scope",
              "snapshot '" + var + "' escapes into member '" + lhs +
                  "'; RCU readers must not publish acquired snapshots",
              out);
        } else if (HasToken(line, "static")) {
          Add(f, li, "rcu-read-scope",
              "snapshot '" + var +
                  "' escapes into a static; it must not outlive the "
                  "acquiring scope",
              out);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pool blocking / reentrancy
// ---------------------------------------------------------------------------

void CheckPoolBlocking(const Model& model, std::vector<Diagnostic>* out) {
  // D: mutexes held (textually) around a ThreadPool dispatch outside
  // src/util/. A pool task re-acquiring one of these can deadlock the
  // dispatcher against its own pool.
  std::map<std::string, Site> dispatch_held;
  for (const Func& func : model.funcs) {
    if (InUtil(func.file->path)) continue;
    for (const CallEvent& c : func.calls) {
      if (!c.is_dispatch) continue;
      for (const auto& [m, s] : HeldAt(func, c.held, c.in_dispatch)) {
        dispatch_held.emplace(m, c.site);
      }
    }
  }
  // Pool-reachable functions: closure of resolved calls from dispatch
  // lambda bodies.
  std::set<std::string> reachable;
  std::vector<std::string> work;
  for (const Func& func : model.funcs) {
    for (const CallEvent& c : func.calls) {
      if (c.in_dispatch && !c.resolved.empty() &&
          reachable.insert(c.resolved).second) {
        work.push_back(c.resolved);
      }
    }
  }
  while (!work.empty()) {
    const std::string key = work.back();
    work.pop_back();
    const auto it = model.func_by_key.find(key);
    if (it == model.func_by_key.end()) continue;
    for (const size_t fi : it->second) {
      for (const CallEvent& c : model.funcs[fi].calls) {
        if (!c.resolved.empty() && reachable.insert(c.resolved).second) {
          work.push_back(c.resolved);
        }
      }
    }
  }
  for (const Func& func : model.funcs) {
    if (InUtil(func.file->path)) continue;
    const bool func_reachable = reachable.count(func.key) != 0;
    for (const BlockEvent& b : func.blocking) {
      if (!b.in_dispatch && !func_reachable) continue;
      Add(*b.site.file, b.site.line, "pool-blocking",
          "blocking call '" + b.what +
              "' in pool-reachable code; pool tasks must not block "
              "(starves the shared ThreadPool)",
          out);
    }
    for (const AcqEvent& a : func.acquires) {
      if (!a.in_dispatch && !func_reachable) continue;
      const auto it = dispatch_held.find(a.mutex);
      if (it == dispatch_held.end()) continue;
      Add(*a.site.file, a.site.line, "pool-blocking",
          "pool-reachable code acquires " + a.mutex +
              ", which is held around a ThreadPool dispatch at " +
              it->second.file->path + ":" +
              std::to_string(it->second.line + 1) +
              " (dispatcher can deadlock against its own pool)",
          out);
    }
  }
}

}  // namespace

void CheckConcurrency(const std::vector<SourceFile>& files,
                      std::vector<Diagnostic>* out) {
  Model model = BuildModel(files);
  const std::map<std::string, Annotation> annotations =
      CollectAnnotations(model, files, out);
  ApplyRequires(&model, annotations);
  const auto eff = EffectiveAcquires(model);
  CheckLockOrder(ComputeEdges(model, eff), out);
  CheckAnnotations(model, annotations, out);
  CheckRcuReadScope(model, out);
  CheckPoolBlocking(model, out);
}

}  // namespace internal

LockOrderGraph BuildLockOrderGraph(const std::vector<SourceFile>& files) {
  using internal::Add;
  internal::Model model = internal::BuildModel(files);
  std::vector<Diagnostic> sink;  // annotation-name diags are not our job
  const auto annotations = internal::CollectAnnotations(model, files, &sink);
  internal::ApplyRequires(&model, annotations);
  const auto eff = internal::EffectiveAcquires(model);
  const std::vector<internal::InternalEdge> internal_edges =
      internal::ComputeEdges(model, eff);

  LockOrderGraph graph;
  std::set<std::string> nodes;
  for (const internal::Func& func : model.funcs) {
    for (const internal::AcqEvent& a : func.acquires) nodes.insert(a.mutex);
  }
  for (const internal::InternalEdge& e : internal_edges) {
    nodes.insert(e.from);
    nodes.insert(e.to);
    LockOrderEdge edge;
    edge.from = e.from;
    edge.to = e.to;
    edge.from_file = e.from_site.file->path;
    edge.from_line = static_cast<int>(e.from_site.line) + 1;
    edge.to_file = e.to_site.file->path;
    edge.to_line = static_cast<int>(e.to_site.line) + 1;
    edge.via = e.via;
    graph.edges.push_back(std::move(edge));
  }
  graph.nodes.assign(nodes.begin(), nodes.end());
  return graph;
}

std::string LockOrderDot(const LockOrderGraph& graph) {
  std::string dot = "digraph lock_order {\n";
  for (const std::string& n : graph.nodes) {
    dot += "  \"" + n + "\";\n";
  }
  std::set<std::string> seen;
  for (const LockOrderEdge& e : graph.edges) {
    if (!seen.insert(e.from + "\n" + e.to).second) continue;
    dot += "  \"" + e.from + "\" -> \"" + e.to + "\" [label=\"" + e.to_file +
           ":" + std::to_string(e.to_line) + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

std::string LockOrderText(const LockOrderGraph& graph) {
  std::string text = "lock-order graph: " +
                     std::to_string(graph.nodes.size()) + " nodes, " +
                     std::to_string(graph.edges.size()) + " edges\n";
  for (const std::string& n : graph.nodes) {
    text += "node " + n + "\n";
  }
  for (const LockOrderEdge& e : graph.edges) {
    text += "edge " + e.from + " -> " + e.to + "\n";
    text += "  from: " + e.from_file + ":" + std::to_string(e.from_line) +
            " (held since)\n";
    text += "  to:   " + e.to_file + ":" + std::to_string(e.to_line) +
            " (acquired at)\n";
    if (!e.via.empty()) text += "  via:  " + e.via + "\n";
  }
  return text;
}

}  // namespace lint
}  // namespace nmcdr
