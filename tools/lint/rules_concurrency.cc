// The four concurrency passes: [lock-order], [thread-annotation],
// [rcu-read-scope], [pool-blocking]. See tools/lint/lint.h for the rule
// catalogue.
//
// The passes run over the shared structural model (tools/lint/model.h):
// classes, mutex members, function bodies with char-ordered lock / call /
// blocking events, resolved call keys, and ThreadPool dispatch-lambda
// membership. This file owns only concurrency-specific analysis:
//   1. NMCDR_REQUIRES/NMCDR_EXCLUDES annotation collection + validation.
//   2. Effective-acquires fixpoint over the resolved call graph.
//   3. The four passes; BuildLockOrderGraph exports the
//      acquires-while-holding graph for nmcdr_racecheck.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint_internal.h"
#include "tools/lint/model.h"

namespace nmcdr {
namespace lint {
namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Annotations (NMCDR_REQUIRES / NMCDR_EXCLUDES)
// ---------------------------------------------------------------------------

struct Annotation {
  std::set<std::string> requires_held;  // qualified mutex ids
  std::set<std::string> excludes;
};

std::map<std::string, Annotation> CollectAnnotations(
    const Model& model, const std::vector<SourceFile>& files,
    std::vector<Diagnostic>* out) {
  std::map<std::string, Annotation> annotations;
  for (const SourceFile& f : files) {
    if (!f.path.starts_with("src/")) continue;
    for (size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      if (Trimmed(line).starts_with("#")) continue;
      for (const char* macro : {"NMCDR_REQUIRES", "NMCDR_EXCLUDES"}) {
        size_t pos = FindToken(line, macro);
        while (pos != std::string::npos) {
          const size_t open = line.find('(', pos);
          const size_t close =
              open == std::string::npos ? std::string::npos
                                        : line.find(')', open);
          if (close == std::string::npos) break;
          const ClassInfo* cls = EnclosingClass(model, f, li);
          const std::string method = AnnotatedMethod(f, li, pos);
          if (cls == nullptr || method.empty()) {
            Add(f, li, "thread-annotation",
                std::string(macro) +
                    " must annotate a method declaration inside a class",
                out);
            pos = FindToken(line, macro, close);
            continue;
          }
          // Parse the comma-separated mutex list.
          size_t entry = open + 1;
          while (entry < close) {
            size_t comma = line.find(',', entry);
            if (comma == std::string::npos || comma > close) comma = close;
            std::string name = Trimmed(line.substr(entry, comma - entry));
            if (name.starts_with("this->")) name = name.substr(6);
            entry = comma + 1;
            if (name.empty()) continue;
            if (cls->mutexes.count(name) == 0) {
              Add(f, li, "thread-annotation",
                  std::string(macro) + "(" + name + ") on " + cls->name +
                      "::" + method + ": '" + name +
                      "' is not a declared std::mutex member of " + cls->name,
                  out);
              continue;
            }
            Annotation& a = annotations[cls->name + "::" + method];
            if (std::string(macro) == "NMCDR_REQUIRES") {
              a.requires_held.insert(cls->name + "::" + name);
            } else {
              a.excludes.insert(cls->name + "::" + name);
            }
          }
          pos = FindToken(line, macro, close);
        }
      }
    }
  }
  return annotations;
}

// ---------------------------------------------------------------------------
// Lock-order edges
// ---------------------------------------------------------------------------

struct InternalEdge {
  std::string from, to;
  Site from_site, to_site;
  std::string via;
};

/// Qualified mutexes held at an event: the textual held-stack plus the
/// function's NMCDR_REQUIRES-implied holds. Dispatch-lambda events run
/// later on a pool thread, so their textual holds are discarded.
std::vector<std::pair<std::string, Site>> HeldAt(
    const Func& func, const std::vector<size_t>& held, bool in_dispatch) {
  std::vector<std::pair<std::string, Site>> out;
  if (in_dispatch) return out;
  for (const std::string& m : func.requires_held) {
    out.emplace_back(m, Site{func.file, func.head_line});
  }
  for (size_t idx : held) {
    out.emplace_back(func.acquires[idx].mutex, func.acquires[idx].site);
  }
  return out;
}

/// Effective-acquires fixpoint: every (mutex, site) a call to `key` may
/// acquire synchronously, through any chain of resolved calls. Dispatch
/// lambdas are excluded (they run asynchronously).
std::map<std::string, std::map<std::string, Site>> EffectiveAcquires(
    const Model& model) {
  std::map<std::string, std::map<std::string, Site>> eff;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Func& func : model.funcs) {
      auto& mine = eff[func.key];
      for (const AcqEvent& a : func.acquires) {
        if (a.in_dispatch) continue;
        if (mine.emplace(a.mutex, a.site).second) changed = true;
      }
      for (const CallEvent& c : func.calls) {
        if (c.in_dispatch || c.resolved.empty()) continue;
        const auto it = eff.find(c.resolved);
        if (it == eff.end()) continue;
        for (const auto& [m, s] : it->second) {
          if (mine.emplace(m, s).second) changed = true;
        }
      }
    }
  }
  return eff;
}

std::vector<InternalEdge> ComputeEdges(
    const Model& model,
    const std::map<std::string, std::map<std::string, Site>>& eff) {
  std::vector<InternalEdge> edges;
  std::set<std::string> seen;
  const auto add_edge = [&](const std::string& from, const Site& fs,
                            const std::string& to, const Site& ts,
                            const std::string& via) {
    const std::string key = from + "\n" + to + "\n" + via;
    if (!seen.insert(key).second) return;
    edges.push_back({from, to, fs, ts, via});
  };
  for (const Func& func : model.funcs) {
    for (const AcqEvent& a : func.acquires) {
      for (const auto& [m, s] : HeldAt(func, a.held, a.in_dispatch)) {
        add_edge(m, s, a.mutex, a.site, "");
      }
    }
    for (const CallEvent& c : func.calls) {
      if (c.resolved.empty() || c.in_dispatch) continue;
      const auto it = eff.find(c.resolved);
      if (it == eff.end()) continue;
      for (const auto& [m1, s1] : HeldAt(func, c.held, c.in_dispatch)) {
        for (const auto& [m2, s2] : it->second) {
          add_edge(m1, s1, m2, s2, c.resolved);
        }
      }
    }
  }
  return edges;
}

void CheckLockOrder(const std::vector<InternalEdge>& edges,
                    std::vector<Diagnostic>* out) {
  std::map<std::string, std::vector<size_t>> adj;
  std::set<std::string> nodes;
  for (size_t i = 0; i < edges.size(); ++i) {
    adj[edges[i].from].push_back(i);
    nodes.insert(edges[i].from);
    nodes.insert(edges[i].to);
  }
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const std::string& root : nodes) {
    if (color[root] != Color::kWhite) continue;
    struct Frame {
      std::string node;
      size_t next = 0;
      size_t via_edge = 0;  // edge taken to enter this node
    };
    std::vector<Frame> stack;
    stack.push_back({root});
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      std::vector<size_t>& next = adj[frame.node];
      if (frame.next >= next.size()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const size_t ei = next[frame.next++];
      const InternalEdge& e = edges[ei];
      if (color[e.to] == Color::kWhite) {
        color[e.to] = Color::kGray;
        stack.push_back({e.to, 0, ei});
      } else if (color[e.to] == Color::kGray) {
        // Cycle: e.to .. frame.node -> e.to. Collect the edges.
        std::vector<size_t> cycle;
        size_t start = stack.size();
        for (size_t i = 0; i < stack.size(); ++i) {
          if (stack[i].node == e.to) start = i;
        }
        for (size_t i = start + 1; i < stack.size(); ++i) {
          cycle.push_back(stack[i].via_edge);
        }
        cycle.push_back(ei);
        std::string msg = "potential deadlock: lock-order cycle " + e.to;
        for (const size_t ci : cycle) msg += " -> " + edges[ci].to;
        for (const size_t ci : cycle) {
          const InternalEdge& ce = edges[ci];
          msg += "; " + ce.from + " (held since " + ce.from_site.file->path +
                 ":" + std::to_string(ce.from_site.line + 1) + ") -> " +
                 ce.to + " (acquired at " + ce.to_site.file->path + ":" +
                 std::to_string(ce.to_site.line + 1) + ")";
          if (!ce.via.empty()) msg += " via " + ce.via;
        }
        Add(*e.to_site.file, e.to_site.line, "lock-order", msg, out);
        color[e.to] = Color::kBlack;  // report each cycle entry once
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Annotation checks
// ---------------------------------------------------------------------------

void CheckAnnotations(const Model& model,
                      const std::map<std::string, Annotation>& annotations,
                      std::vector<Diagnostic>* out) {
  // A REQUIRES(m) body must not re-lock m.
  for (const Func& func : model.funcs) {
    const auto it = annotations.find(func.key);
    if (it == annotations.end()) continue;
    for (const std::string& m : it->second.requires_held) {
      for (const AcqEvent& a : func.acquires) {
        if (a.mutex == m && !a.in_dispatch) {
          Add(*a.site.file, a.site.line, "thread-annotation",
              func.key + " is NMCDR_REQUIRES(" + m +
                  ") but re-locks it here (self-deadlock)",
              out);
        }
      }
    }
  }
  // Call sites must satisfy the callee's contract.
  for (const Func& func : model.funcs) {
    for (const CallEvent& c : func.calls) {
      if (c.resolved.empty()) continue;
      const auto it = annotations.find(c.resolved);
      if (it == annotations.end()) continue;
      std::set<std::string> held;
      for (const auto& [m, s] : HeldAt(func, c.held, c.in_dispatch)) {
        held.insert(m);
      }
      for (const std::string& m : it->second.requires_held) {
        if (held.count(m) == 0) {
          Add(*c.site.file, c.site.line, "thread-annotation",
              "call to " + c.resolved + " requires " + m +
                  " held (NMCDR_REQUIRES) but it is not held here",
              out);
        }
      }
      for (const std::string& m : it->second.excludes) {
        if (held.count(m) != 0) {
          Add(*c.site.file, c.site.line, "thread-annotation",
              "call to " + c.resolved + " with " + m +
                  " held; the callee locks it (NMCDR_EXCLUDES, "
                  "self-deadlock)",
              out);
        }
      }
    }
  }
}

/// Seeds REQUIRES-implied holds onto the function model; annotation-name
/// validation diagnostics were already emitted by CollectAnnotations.
void ApplyRequires(Model* model,
                   const std::map<std::string, Annotation>& annotations) {
  for (Func& func : model->funcs) {
    const auto it = annotations.find(func.key);
    if (it == annotations.end()) continue;
    func.requires_held.assign(it->second.requires_held.begin(),
                              it->second.requires_held.end());
  }
}

// ---------------------------------------------------------------------------
// RCU read-scope
// ---------------------------------------------------------------------------

/// In src/serving/, a raw snapshot obtained from SnapshotRegistry::Acquire
/// must stay inside the acquiring scope: no member/static stores of the
/// shared_ptr or its .get() pointer, no returning the raw pointer.
void CheckRcuReadScope(const Model& model, std::vector<Diagnostic>* out) {
  for (const Func& func : model.funcs) {
    if (!func.file->path.starts_with("src/serving/")) continue;
    const SourceFile& f = *func.file;
    std::vector<std::string> locals;
    for (size_t li = func.body_begin;
         li <= func.body_end && li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      size_t apos = FindToken(line, "Acquire");
      if (apos != std::string::npos && IsWaitCall(line, apos)) {
        // Member-call Acquire: find the assignment target, if any.
        size_t eq = line.rfind('=', apos);
        while (eq != std::string::npos && eq > 0 &&
               (line[eq - 1] == '=' || line[eq - 1] == '!' ||
                line[eq - 1] == '<' || line[eq - 1] == '>' ||
                (eq + 1 < line.size() && line[eq + 1] == '='))) {
          eq = eq == 0 ? std::string::npos : line.rfind('=', eq - 1);
        }
        if (eq != std::string::npos) {
          const std::string lhs = IdentBefore(line, SkipSpacesBack(line, eq));
          if (!lhs.empty() && lhs.ends_with("_")) {
            Add(f, li, "rcu-read-scope",
                "snapshot from Acquire() stored directly into member '" +
                    lhs + "'; keep it local to the acquiring scope",
                out);
          } else if (HasToken(line, "static")) {
            Add(f, li, "rcu-read-scope",
                "snapshot from Acquire() stored into a static; it must not "
                "outlive the acquiring scope",
                out);
          } else if (!lhs.empty()) {
            locals.push_back(lhs);
          }
        }
        continue;
      }
      // Escapes of a tracked local snapshot.
      for (const std::string& var : locals) {
        const size_t vpos = FindToken(line, var);
        if (vpos == std::string::npos) continue;
        if (HasToken(line, "return") &&
            line.compare(vpos, var.size() + 5, var + ".get(") == 0) {
          Add(f, li, "rcu-read-scope",
              "raw snapshot pointer '" + var +
                  ".get()' escapes via return; return the shared_ptr or "
                  "use it inside the acquiring scope",
              out);
          continue;
        }
        const size_t eq = line.find('=');
        if (eq == std::string::npos || eq > vpos) continue;
        const std::string lhs = IdentBefore(line, SkipSpacesBack(line, eq));
        std::string rhs = Trimmed(line.substr(eq + 1));
        if (!rhs.empty() && rhs.back() == ';') {
          rhs = Trimmed(rhs.substr(0, rhs.size() - 1));
        }
        const bool rhs_is_snapshot =
            rhs == var || rhs == var + ".get()" || rhs == "&*" + var;
        if (!rhs_is_snapshot) continue;
        if (lhs.ends_with("_")) {
          Add(f, li, "rcu-read-scope",
              "snapshot '" + var + "' escapes into member '" + lhs +
                  "'; RCU readers must not publish acquired snapshots",
              out);
        } else if (HasToken(line, "static")) {
          Add(f, li, "rcu-read-scope",
              "snapshot '" + var +
                  "' escapes into a static; it must not outlive the "
                  "acquiring scope",
              out);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pool blocking / reentrancy
// ---------------------------------------------------------------------------

void CheckPoolBlocking(const Model& model, std::vector<Diagnostic>* out) {
  // D: mutexes held (textually) around a ThreadPool dispatch outside
  // src/util/. A pool task re-acquiring one of these can deadlock the
  // dispatcher against its own pool.
  std::map<std::string, Site> dispatch_held;
  for (const Func& func : model.funcs) {
    if (InUtil(func.file->path)) continue;
    for (const CallEvent& c : func.calls) {
      if (!c.is_dispatch) continue;
      for (const auto& [m, s] : HeldAt(func, c.held, c.in_dispatch)) {
        dispatch_held.emplace(m, c.site);
      }
    }
  }
  // Pool-reachable functions: closure of resolved calls from dispatch
  // lambda bodies.
  std::set<std::string> reachable;
  std::vector<std::string> work;
  for (const Func& func : model.funcs) {
    for (const CallEvent& c : func.calls) {
      if (c.in_dispatch && !c.resolved.empty() &&
          reachable.insert(c.resolved).second) {
        work.push_back(c.resolved);
      }
    }
  }
  while (!work.empty()) {
    const std::string key = work.back();
    work.pop_back();
    const auto it = model.func_by_key.find(key);
    if (it == model.func_by_key.end()) continue;
    for (const size_t fi : it->second) {
      for (const CallEvent& c : model.funcs[fi].calls) {
        if (!c.resolved.empty() && reachable.insert(c.resolved).second) {
          work.push_back(c.resolved);
        }
      }
    }
  }
  for (const Func& func : model.funcs) {
    if (InUtil(func.file->path)) continue;
    const bool func_reachable = reachable.count(func.key) != 0;
    for (const BlockEvent& b : func.blocking) {
      if (!b.in_dispatch && !func_reachable) continue;
      Add(*b.site.file, b.site.line, "pool-blocking",
          "blocking call '" + b.what +
              "' in pool-reachable code; pool tasks must not block "
              "(starves the shared ThreadPool)",
          out);
    }
    for (const AcqEvent& a : func.acquires) {
      if (!a.in_dispatch && !func_reachable) continue;
      const auto it = dispatch_held.find(a.mutex);
      if (it == dispatch_held.end()) continue;
      Add(*a.site.file, a.site.line, "pool-blocking",
          "pool-reachable code acquires " + a.mutex +
              ", which is held around a ThreadPool dispatch at " +
              it->second.file->path + ":" +
              std::to_string(it->second.line + 1) +
              " (dispatcher can deadlock against its own pool)",
          out);
    }
  }
}

}  // namespace

void CheckConcurrency(const std::vector<SourceFile>& files,
                      std::vector<Diagnostic>* out) {
  Model model = BuildModel(files);
  const std::map<std::string, Annotation> annotations =
      CollectAnnotations(model, files, out);
  ApplyRequires(&model, annotations);
  const auto eff = EffectiveAcquires(model);
  CheckLockOrder(ComputeEdges(model, eff), out);
  CheckAnnotations(model, annotations, out);
  CheckRcuReadScope(model, out);
  CheckPoolBlocking(model, out);
}

}  // namespace internal

LockOrderGraph BuildLockOrderGraph(const std::vector<SourceFile>& files) {
  using internal::Add;
  internal::Model model = internal::BuildModel(files);
  std::vector<Diagnostic> sink;  // annotation-name diags are not our job
  const auto annotations = internal::CollectAnnotations(model, files, &sink);
  internal::ApplyRequires(&model, annotations);
  const auto eff = internal::EffectiveAcquires(model);
  const std::vector<internal::InternalEdge> internal_edges =
      internal::ComputeEdges(model, eff);

  LockOrderGraph graph;
  std::set<std::string> nodes;
  for (const internal::Func& func : model.funcs) {
    for (const internal::AcqEvent& a : func.acquires) nodes.insert(a.mutex);
  }
  for (const internal::InternalEdge& e : internal_edges) {
    nodes.insert(e.from);
    nodes.insert(e.to);
    LockOrderEdge edge;
    edge.from = e.from;
    edge.to = e.to;
    edge.from_file = e.from_site.file->path;
    edge.from_line = static_cast<int>(e.from_site.line) + 1;
    edge.to_file = e.to_site.file->path;
    edge.to_line = static_cast<int>(e.to_site.line) + 1;
    edge.via = e.via;
    graph.edges.push_back(std::move(edge));
  }
  graph.nodes.assign(nodes.begin(), nodes.end());
  return graph;
}

std::string LockOrderDot(const LockOrderGraph& graph) {
  std::string dot = "digraph lock_order {\n";
  for (const std::string& n : graph.nodes) {
    dot += "  \"" + DotEscape(n) + "\";\n";
  }
  std::set<std::string> seen;
  for (const LockOrderEdge& e : graph.edges) {
    if (!seen.insert(e.from + "\n" + e.to).second) continue;
    dot += "  \"" + DotEscape(e.from) + "\" -> \"" + DotEscape(e.to) +
           "\" [label=\"" + DotEscape(e.to_file) + ":" +
           std::to_string(e.to_line) + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

std::string LockOrderText(const LockOrderGraph& graph) {
  std::string text = "lock-order graph: " +
                     std::to_string(graph.nodes.size()) + " nodes, " +
                     std::to_string(graph.edges.size()) + " edges\n";
  for (const std::string& n : graph.nodes) {
    text += "node " + n + "\n";
  }
  for (const LockOrderEdge& e : graph.edges) {
    text += "edge " + e.from + " -> " + e.to + "\n";
    text += "  from: " + e.from_file + ":" + std::to_string(e.from_line) +
            " (held since)\n";
    text += "  to:   " + e.to_file + ":" + std::to_string(e.to_line) +
            " (acquired at)\n";
    if (!e.via.empty()) text += "  via:  " + e.via + "\n";
  }
  return text;
}

}  // namespace lint
}  // namespace nmcdr
