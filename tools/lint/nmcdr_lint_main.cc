// Driver for nmcdr_lint: walks the repo's source directories, runs every
// rule, prints findings compiler-style, and exits deterministically:
// 0 = clean, 1 = violations found, 2 = usage / IO error. Registered as
// the `lint_test` and `concurrency_lint_test` CTests, so `ctest`
// enforces the invariants.
//
//   nmcdr_lint [--concurrency] [--hotpath] [--list-rules]
//              [repo_root] [subdir...]
//
// Defaults: repo_root = ".", subdirs = src tests tools bench.
// --concurrency adds the four concurrency passes and --hotpath the four
// hot-path passes (see tools/lint/lint.h); --list-rules prints the rule
// catalogue and exits 0. Fixture trees under
// a `lint_fixtures` directory hold deliberate violations for
// tests/lint_rules_test.cc and are always skipped.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool InFixtureDir(const std::string& rel) {
  return rel.find("lint_fixtures/") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  nmcdr::lint::LintOptions options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--concurrency") {
      options.concurrency = true;
    } else if (arg == "--hotpath") {
      options.hotpath = true;
    } else if (arg == "--list-rules") {
      for (const nmcdr::lint::RuleInfo& r : nmcdr::lint::ListRules()) {
        const char* tag = r.concurrency_only ? " [concurrency] "
                          : r.hotpath_only   ? " [hotpath] "
                                             : " ";
        std::cout << r.id << tag << "- " << r.summary << "\n";
      }
      return 0;
    } else if (arg.starts_with("--")) {
      std::cerr << "nmcdr_lint: unknown flag: " << arg << "\n"
                << "usage: nmcdr_lint [--concurrency] [--hotpath] "
                   "[--list-rules] [repo_root] [subdir...]\n";
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  const fs::path root =
      positional.empty() ? fs::path(".") : fs::path(positional[0]);
  std::vector<std::string> subdirs(positional.begin() + (positional.empty()
                                                             ? 0
                                                             : 1),
                                   positional.end());
  if (subdirs.empty()) subdirs = {"src", "tests", "tools", "bench"};

  std::vector<nmcdr::lint::SourceFile> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) {
      std::cerr << "nmcdr_lint: no such directory: " << dir << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (InFixtureDir(rel)) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        std::cerr << "nmcdr_lint: cannot read " << entry.path() << "\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      files.push_back(nmcdr::lint::Preprocess(rel, buffer.str()));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const nmcdr::lint::SourceFile& a,
               const nmcdr::lint::SourceFile& b) { return a.path < b.path; });

  const std::vector<nmcdr::lint::Diagnostic> diags =
      nmcdr::lint::LintFileSet(files, options);
  for (const nmcdr::lint::Diagnostic& d : diags) {
    std::cout << d.ToString() << "\n";
  }
  std::cout << "nmcdr_lint: " << diags.size() << " finding"
            << (diags.size() == 1 ? "" : "s") << " over " << files.size()
            << " files" << (options.concurrency ? " (with concurrency)" : "")
            << (options.hotpath ? " (with hotpath)" : "") << "\n";
  return diags.empty() ? 0 : 1;
}
