// Driver for nmcdr_lint: walks the repo's source directories, runs every
// rule, prints findings compiler-style, and exits non-zero on any finding.
// Registered as the `lint_test` CTest, so `ctest` enforces the invariants.
//
//   nmcdr_lint [repo_root] [subdir...]
//
// Defaults: repo_root = ".", subdirs = src tests tools bench.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  std::vector<std::string> subdirs;
  for (int i = 2; i < argc; ++i) subdirs.push_back(argv[i]);
  if (subdirs.empty()) subdirs = {"src", "tests", "tools", "bench"};

  std::vector<nmcdr::lint::SourceFile> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) {
      std::cerr << "nmcdr_lint: no such directory: " << dir << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        std::cerr << "nmcdr_lint: cannot read " << entry.path() << "\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      files.push_back(nmcdr::lint::Preprocess(rel, buffer.str()));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const nmcdr::lint::SourceFile& a,
               const nmcdr::lint::SourceFile& b) { return a.path < b.path; });

  const std::vector<nmcdr::lint::Diagnostic> diags =
      nmcdr::lint::LintFileSet(files);
  for (const nmcdr::lint::Diagnostic& d : diags) {
    std::cout << d.ToString() << "\n";
  }
  std::cout << "nmcdr_lint: " << diags.size() << " finding"
            << (diags.size() == 1 ? "" : "s") << " over " << files.size()
            << " files\n";
  return diags.empty() ? 0 : 1;
}
