#ifndef NMCDR_TOOLS_LINT_LINT_INTERNAL_H_
#define NMCDR_TOOLS_LINT_LINT_INTERNAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "tools/lint/lint.h"

// Shared machinery for the per-pass rule translation units
// (rules_text.cc, rules_include.cc, rules_concurrency.cc). Everything here
// operates on the blanked SourceFile representation produced by
// Preprocess() in lint.cc; nothing touches the filesystem.

namespace nmcdr {
namespace lint {
namespace internal {

bool IsWordChar(char c);

/// Finds `tok` in `s` at a position where neither neighbor is a word
/// character (so "rand" does not match inside "operand").
size_t FindToken(const std::string& s, const std::string& tok,
                 size_t from = 0);

bool HasToken(const std::string& s, const std::string& tok);

/// True when `tok` appears as a token immediately followed (modulo
/// whitespace) by '(' — i.e. a call or function-like macro use.
bool HasTokenCall(const std::string& s, const std::string& tok);

std::string Trimmed(const std::string& s);

/// A suppression comment counts on the flagged line itself or anywhere in
/// the contiguous comment-only block directly above it. The marker accepts
/// a comma-separated rule list: NMCDR_LINT_ALLOW(rule-a, rule-b): reason.
bool Suppressed(const SourceFile& f, size_t line_idx, const std::string& rule);

/// Appends a diagnostic unless the line carries a matching
/// NMCDR_LINT_ALLOW suppression comment.
void Add(const SourceFile& f, size_t line_idx, const std::string& rule,
         std::string message, std::vector<Diagnostic>* out);

bool IsHeader(const std::string& path);

/// A `class Foo { ... }` region found by brace matching over blanked code.
struct ClassRegion {
  std::string name;
  size_t begin = 0;  // line of the class token
  size_t end = 0;    // line of the closing brace
};

/// Finds class regions in a file. `enum class` is skipped; forward
/// declarations (';' before '{') too.
std::vector<ClassRegion> FindClasses(const SourceFile& f);

/// One quoted #include directive found in a file.
struct IncludeEdge {
  size_t line = 0;     // 0-based line of the directive
  std::string target;  // path as written between the quotes
};

std::vector<IncludeEdge> ExtractIncludes(const SourceFile& f);

/// Module of a src/ path ("src/train/registry.h" -> "train"); "" for
/// paths outside src/.
std::string SrcModule(const std::string& path);

/// Resolves a quoted include against the file set: project includes are
/// rooted at src/ (every library adds src/ as an include dir), tool and
/// test includes at the repo root. Returns "" for external headers.
std::string ResolveInclude(
    const std::string& target,
    const std::unordered_map<std::string, const SourceFile*>& by_path);

// Per-pass entry points, called from LintFileSet (lint.cc).

/// Per-file text rules: include-guard, using-namespace-header,
/// banned-rand/assert/thread/chrono, iostream-header, naked-new,
/// rcu-only-publish.
void CheckTextRules(const SourceFile& f, std::vector<Diagnostic>* out);

/// Cross-file guarded-by rule over the mutex-bearing headers
/// (src/serving/**, src/util/thread_pool.h, src/obs/metrics.h).
void CheckGuardedBy(const std::vector<SourceFile>& files,
                    std::vector<Diagnostic>* out);

/// include-layering and include-cycle over the file set.
void CheckIncludeRules(const std::vector<SourceFile>& files,
                       std::vector<Diagnostic>* out);

/// The four concurrency passes (lock-order, thread-annotation,
/// rcu-read-scope, pool-blocking) over src/ files in the set.
void CheckConcurrency(const std::vector<SourceFile>& files,
                      std::vector<Diagnostic>* out);

/// The four hot-path passes (hot-alloc, throw-hot, arg-copy,
/// reserve-before-growth) over src/ files in the set.
void CheckHotPath(const std::vector<SourceFile>& files,
                  std::vector<Diagnostic>* out);

}  // namespace internal
}  // namespace lint
}  // namespace nmcdr

#endif  // NMCDR_TOOLS_LINT_LINT_INTERNAL_H_
