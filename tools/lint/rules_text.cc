// Line/token-level rules: include-guard, using-namespace-header,
// banned-rand/assert/thread/chrono, iostream-header, naked-new,
// rcu-only-publish, and the cross-file guarded-by rule. See
// tools/lint/lint.h for the rule catalogue.
#include <cctype>
#include <unordered_map>

#include "tools/lint/lint_internal.h"

namespace nmcdr {
namespace lint {
namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Rule: include-guard
// ---------------------------------------------------------------------------

void CheckIncludeGuard(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (!IsHeader(f.path)) return;
  const std::string expected = ExpectedGuard(f.path);
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string line = Trimmed(f.code[i]);
    if (!line.starts_with("#ifndef")) continue;
    const std::string guard = Trimmed(line.substr(7));
    if (guard != expected) {
      Add(f, i, "include-guard",
          "include guard '" + guard + "' does not match file path; expected '" +
              expected + "'",
          out);
      return;
    }
    // The matching #define must follow on the next code-bearing line.
    for (size_t j = i + 1; j < f.code.size(); ++j) {
      const std::string next = Trimmed(f.code[j]);
      if (next.empty()) continue;
      if (Trimmed(next) != "#define " + expected &&
          !(next.starts_with("#define") && Trimmed(next.substr(7)) == expected)) {
        Add(f, j, "include-guard",
            "#ifndef " + expected + " must be followed by #define " + expected,
            out);
      }
      return;
    }
    return;
  }
  Add(f, 0, "include-guard", "header has no include guard; expected #ifndef " +
                                 expected,
      out);
}

// ---------------------------------------------------------------------------
// Rule: using-namespace-header
// ---------------------------------------------------------------------------

void CheckUsingNamespace(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (!IsHeader(f.path)) return;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const size_t u = FindToken(f.code[i], "using");
    if (u == std::string::npos) continue;
    const size_t ns = FindToken(f.code[i], "namespace", u);
    if (ns == std::string::npos) continue;
    // Only whitespace may separate the two tokens.
    if (Trimmed(f.code[i].substr(u + 5, ns - (u + 5))).empty()) {
      Add(f, i, "using-namespace-header",
          "'using namespace' in a header leaks into every includer", out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: banned-rand / banned-assert
// ---------------------------------------------------------------------------

void CheckBannedCalls(const SourceFile& f, std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (HasTokenCall(line, "rand") || HasTokenCall(line, "srand") ||
        HasTokenCall(line, "rand_r")) {
      Add(f, i, "banned-rand",
          "rand()/srand() is non-reproducible global state; use "
          "nmcdr::Rng (src/tensor/rng.h)",
          out);
    }
    if (HasTokenCall(line, "assert")) {
      Add(f, i, "banned-assert",
          "assert() vanishes under NDEBUG; use NMCDR_CHECK* "
          "(src/util/check.h), which stays armed in Release",
          out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-thread
// ---------------------------------------------------------------------------

void CheckBannedThread(const SourceFile& f, std::vector<Diagnostic>* out) {
  // The one sanctioned home of raw threads. Everything else goes through
  // ThreadPool so thread count, shutdown order, and sanitizer coverage are
  // decided in a single place.
  if (f.path.starts_with("src/util/thread_pool.")) return;
  static const std::string kThreadTypes[] = {"std::thread", "std::jthread"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool flagged = false;
    for (const std::string& tok : kThreadTypes) {
      // FindToken's word-boundary test works for qualified names too: ':'
      // is not a word character, so "std::thread" neither matches inside
      // "std::this_thread" nor needs special casing at its own edges.
      size_t pos = FindToken(line, tok);
      while (pos != std::string::npos && !flagged) {
        // `std::thread::hardware_concurrency()` is a capability query, not
        // a thread construction; a following "::" keeps it legal.
        size_t j = pos + tok.size();
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])) != 0) {
          ++j;
        }
        if (!(j + 1 < line.size() && line[j] == ':' && line[j + 1] == ':')) {
          Add(f, i, "banned-thread",
              tok + " outside src/util/thread_pool.*; run work on "
                    "ThreadPool::Shared() (Submit/ParallelFor) so thread "
                    "count, shutdown, and sanitizer coverage stay "
                    "centralized",
              out);
          flagged = true;
        }
        pos = FindToken(line, tok, pos + tok.size());
      }
      if (flagged) break;
    }
    if (!flagged && FindToken(line, "std::async") != std::string::npos) {
      Add(f, i, "banned-thread",
          "std::async outside src/util/thread_pool.*; it spawns unmanaged "
          "threads with blocking-future semantics — use "
          "ThreadPool::Shared()->Submit with a promise instead",
          out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-chrono
// ---------------------------------------------------------------------------

void CheckBannedChrono(const SourceFile& f, std::vector<Diagnostic>* out) {
  // Raw clock reads live in exactly two places: the observability layer
  // (obs::NowNs) and util's Stopwatch. Everything else measures time
  // through those, so every timing datum flows into one instrumentation
  // pipeline and tests can reason about a single clock.
  if (f.path.starts_with("src/obs/") || f.path.starts_with("src/util/")) {
    return;
  }
  static const std::string kClockTypes[] = {"steady_clock", "system_clock",
                                            "high_resolution_clock"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const std::string& tok : kClockTypes) {
      size_t pos = FindToken(line, tok);
      bool flagged = false;
      while (pos != std::string::npos && !flagged) {
        // Only a `::now` use is a clock read; mentioning the type (say, in
        // a time_point alias that never samples) is legal.
        size_t j = pos + tok.size();
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])) != 0) {
          ++j;
        }
        size_t k = j + 2;
        while (k < line.size() &&
               std::isspace(static_cast<unsigned char>(line[k])) != 0) {
          ++k;
        }
        if (j + 1 < line.size() && line[j] == ':' && line[j + 1] == ':' &&
            FindToken(line, "now", k) == k) {
          Add(f, i, "banned-chrono",
              "std::chrono::" + tok +
                  "::now() outside src/obs/ and src/util/; measure time "
                  "through obs::NowNs / ScopedTimer / TraceSpan "
                  "(src/obs/) or Stopwatch (src/util/) so all timing "
                  "flows through the observability layer",
              out);
          flagged = true;
        }
        pos = FindToken(line, tok, pos + tok.size());
      }
      if (flagged) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: iostream-header
// ---------------------------------------------------------------------------

void CheckIostreamHeader(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (!IsHeader(f.path) || !f.path.starts_with("src/")) return;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string line = Trimmed(f.code[i]);
    if (line.starts_with("#include") &&
        line.find("<iostream>") != std::string::npos) {
      Add(f, i, "iostream-header",
          "<iostream> in a src/ header drags its static init and heavy "
          "includes into every hot-path TU; use util/logging.h or move IO "
          "into a .cc",
          out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: naked-new
// ---------------------------------------------------------------------------

void CheckNakedNew(const SourceFile& f, std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (HasToken(line, "new")) {
      Add(f, i, "naked-new",
          "naked new; use std::make_unique/std::make_shared or a container",
          out);
    }
    size_t pos = FindToken(line, "delete");
    while (pos != std::string::npos) {
      // `= delete` (deleted special members) is not a deallocation.
      size_t k = pos;
      while (k > 0 &&
             std::isspace(static_cast<unsigned char>(line[k - 1])) != 0) {
        --k;
      }
      if (k == 0 || line[k - 1] != '=') {
        Add(f, i, "naked-new",
            "naked delete; ownership must live in a smart pointer or "
            "container",
            out);
        break;
      }
      pos = FindToken(line, "delete", pos + 6);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: rcu-only-publish
// ---------------------------------------------------------------------------

void CheckRcuOnlyPublish(const SourceFile& f, std::vector<Diagnostic>* out) {
  // Snapshot pointers held by serving components are RCU-published state:
  // every replacement must go through SnapshotRegistry::Publish so swaps
  // stay atomic, versioned, and metered. Outside the registry itself, no
  // serving code may assign, reset, or swap a `*snapshot_` member
  // directly. Constructor init-lists (`snapshot_(...)`) and reads
  // (`snapshot_->`, `*snapshot_`) stay legal.
  if (!f.path.starts_with("src/serving/")) return;
  if (f.path.starts_with("src/serving/cluster/snapshot_registry.")) return;
  static const std::string kMember = "snapshot_";
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    size_t pos = line.find(kMember);
    bool flagged = false;
    while (pos != std::string::npos && !flagged) {
      const size_t end = pos + kMember.size();
      // `snapshot_` must END an identifier here (snapshot_version etc.
      // continue with word characters and are unrelated fields).
      if (end < line.size() && IsWordChar(line[end])) {
        pos = line.find(kMember, pos + 1);
        continue;
      }
      size_t j = end;
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j])) != 0) {
        ++j;
      }
      const bool assigns =
          j < line.size() && line[j] == '=' &&
          (j + 1 >= line.size() || line[j + 1] != '=');
      const bool mutates = line.compare(j, 7, ".reset(") == 0 ||
                           line.compare(j, 6, ".swap(") == 0;
      if (assigns || mutates) {
        Add(f, i, "rcu-only-publish",
            "direct mutation of snapshot pointer '" +
                line.substr(pos, kMember.size()) +
                "' outside src/serving/cluster/snapshot_registry.*; route "
                "snapshot replacement through SnapshotRegistry::Publish so "
                "swaps stay atomic, versioned, and refcounted",
            out);
        flagged = true;
      }
      pos = line.find(kMember, pos + 1);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule: guarded-by
// ---------------------------------------------------------------------------

namespace {

struct MutexMember {
  std::string name;
  size_t decl_line = 0;
  int annotations = 0;
};

std::string ExtractGuardedByTarget(const std::string& comment) {
  const size_t pos = comment.find("GUARDED_BY(");
  if (pos == std::string::npos) return "";
  const size_t open = pos + 11;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) return "";
  return Trimmed(comment.substr(open, close - open));
}

bool LineLocksMutex(const std::string& code, const std::string& mutex_name) {
  if (!HasToken(code, mutex_name)) return false;
  if (HasToken(code, "lock_guard") || HasToken(code, "unique_lock") ||
      HasToken(code, "scoped_lock")) {
    return true;
  }
  return code.find(mutex_name + ".lock()") != std::string::npos;
}

/// The headers whose mutex members must carry checked annotations: the
/// whole serving tier plus the two shared concurrent foundations (the
/// thread pool and the metrics registry).
bool GuardedByApplies(const std::string& path) {
  return path.starts_with("src/serving/") ||
         path.starts_with("src/util/thread_pool.") ||
         path.starts_with("src/obs/metrics.");
}

}  // namespace

void CheckGuardedBy(const std::vector<SourceFile>& files,
                    std::vector<Diagnostic>* out) {
  std::unordered_map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;

  for (const SourceFile& f : files) {
    if (!GuardedByApplies(f.path) || !IsHeader(f.path)) continue;
    const SourceFile* impl = nullptr;
    const auto it = by_path.find(f.path.substr(0, f.path.size() - 2) + ".cc");
    if (it != by_path.end()) impl = it->second;

    for (const ClassRegion& region : FindClasses(f)) {
      std::vector<MutexMember> mutexes;
      for (size_t i = region.begin; i <= region.end; ++i) {
        const size_t pos = f.code[i].find("std::mutex");
        if (pos == std::string::npos) continue;
        size_t p = pos + 10;
        while (p < f.code[i].size() &&
               std::isspace(static_cast<unsigned char>(f.code[i][p])) != 0) {
          ++p;
        }
        size_t q = p;
        while (q < f.code[i].size() && IsWordChar(f.code[i][q])) ++q;
        if (q > p) mutexes.push_back({f.code[i].substr(p, q - p), i, 0});
      }

      for (size_t i = region.begin; i <= region.end; ++i) {
        const std::string target = ExtractGuardedByTarget(f.comments[i]);
        if (target.empty()) continue;
        bool known = false;
        for (MutexMember& m : mutexes) {
          if (m.name == target) {
            ++m.annotations;
            known = true;
          }
        }
        if (!known) {
          Add(f, i, "guarded-by",
              "GUARDED_BY(" + target + ") in class " + region.name +
                  " names no std::mutex member of that class",
              out);
        }
      }

      for (const MutexMember& m : mutexes) {
        if (m.annotations == 0) {
          Add(f, m.decl_line, "guarded-by",
              "std::mutex member '" + m.name + "' of concurrent class " +
                  region.name +
                  " has no GUARDED_BY member annotations; document what it "
                  "protects",
              out);
          continue;
        }
        bool locked = false;
        for (size_t i = region.begin; i <= region.end && !locked; ++i) {
          locked = LineLocksMutex(f.code[i], m.name);
        }
        if (impl != nullptr) {
          for (size_t i = 0; i < impl->code.size() && !locked; ++i) {
            locked = LineLocksMutex(impl->code[i], m.name);
          }
        }
        if (!locked) {
          Add(f, m.decl_line, "guarded-by",
              "mutex '" + m.name + "' of concurrent class " + region.name +
                  " carries GUARDED_BY annotations but is never locked in " +
                  f.path + (impl != nullptr ? " or its .cc" : ""),
              out);
        }
      }
    }
  }
}

void CheckTextRules(const SourceFile& f, std::vector<Diagnostic>* out) {
  CheckIncludeGuard(f, out);
  CheckUsingNamespace(f, out);
  CheckBannedCalls(f, out);
  CheckBannedThread(f, out);
  CheckBannedChrono(f, out);
  CheckIostreamHeader(f, out);
  CheckNakedNew(f, out);
  CheckRcuOnlyPublish(f, out);
}

}  // namespace internal
}  // namespace lint
}  // namespace nmcdr
