#ifndef NMCDR_TOOLS_LINT_LINT_H_
#define NMCDR_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace nmcdr {
namespace lint {

/// nmcdr_lint: a zero-dependency source-tree analyzer enforcing this
/// repo's invariants over src/, tests/, tools/, and bench/. It is not a
/// compiler front-end: a lexer-lite pass blanks comments and string
/// literals while preserving line structure, and line/token-level rules
/// run over the result. A scope-tracking scanner (rules_concurrency.cc)
/// additionally recovers brace nesting, lambda bodies, function
/// definitions, and lock scopes for the concurrency passes. Registered as
/// the `lint_test` / `concurrency_lint_test` CTests, so `ctest` fails on
/// any violation.
///
/// Always-on rules (rule ids in brackets):
///  [include-guard]          header guards must derive from the file path
///                           (src/util/check.h -> NMCDR_UTIL_CHECK_H_)
///  [using-namespace-header] no `using namespace` at any scope in headers
///  [banned-rand]            no rand()/srand()/std::rand — use
///                           tensor/rng.h so seeds stay reproducible
///  [banned-assert]          no assert() — use NMCDR_CHECK*, which stays
///                           armed in Release builds
///  [banned-thread]          no std::thread / std::jthread construction or
///                           std::async outside src/util/thread_pool.* —
///                           run work on ThreadPool::Shared() so thread
///                           count, shutdown order, and sanitizer coverage
///                           are decided in one place
///                           (std::thread::hardware_concurrency stays
///                           legal)
///  [banned-chrono]          no std::chrono::{steady,system,
///                           high_resolution}_clock::now() outside
///                           src/obs/ and src/util/ — measure time through
///                           obs::NowNs / ScopedTimer / TraceSpan or
///                           util's Stopwatch so every timing datum flows
///                           through the observability layer (naming the
///                           clock type without sampling it stays legal)
///  [iostream-header]        no <iostream> in src/ headers — iostream's
///                           static init and heavy includes don't belong
///                           in hot-path headers; use util/logging.h
///  [naked-new]              no naked new/delete — use smart pointers or
///                           containers (deleted special members are fine)
///  [rcu-only-publish]       in src/serving/ (outside
///                           src/serving/cluster/snapshot_registry.*), no
///                           direct assignment / .reset() / .swap() of an
///                           identifier ending in `snapshot_` — snapshot
///                           pointers are RCU-published state and every
///                           replacement must go through
///                           SnapshotRegistry::Publish; init-lists
///                           (`snapshot_(...)`) and reads stay legal
///  [guarded-by]             in mutex-bearing headers (src/serving/**,
///                           src/util/thread_pool.h, src/obs/metrics.h),
///                           every std::mutex member must have
///                           // GUARDED_BY(mu) member annotations, every
///                           annotation must name a declared mutex, and
///                           the annotated mutex must actually be locked
///                           in the class's files
///  [include-layering]       src/ modules form layers (util ->
///                           {obs, tensor} -> {autograd, graph} -> data ->
///                           core -> {baselines, eval} -> train ->
///                           {analysis, serving, verify}); a module may
///                           only include modules at its own or a lower
///                           layer
///  [include-cycle]          the quoted-#include graph over the linted
///                           file set must be acyclic (file-level)
///
/// Concurrency rules (LintOptions::concurrency / `nmcdr_lint
/// --concurrency` / `nmcdr_racecheck`), applied to src/ files:
///  [lock-order]             the acquires-while-holding graph over every
///                           std::lock_guard / unique_lock / scoped_lock
///                           site (including lock acquisitions implied by
///                           calling a method whose body locks, and holds
///                           implied by NMCDR_REQUIRES) must be acyclic;
///                           a cycle is a potential deadlock and is
///                           reported with the file:line of every edge's
///                           two acquisition sites
///  [thread-annotation]      NMCDR_REQUIRES(mu) / NMCDR_EXCLUDES(mu)
///                           function annotations
///                           (src/util/thread_annotations.h) must name a
///                           declared mutex member; a REQUIRES(mu) body
///                           must not re-lock mu (self-deadlock) and its
///                           same-class callers must hold mu; an
///                           EXCLUDES(mu) method must not be called with
///                           mu held
///  [rcu-read-scope]         in src/serving/, a snapshot acquired from a
///                           SnapshotRegistry (Acquire()) must not escape
///                           the acquiring scope: no stores of the
///                           shared_ptr or its .get() raw pointer into
///                           members/globals/statics, no returning the
///                           raw pointer — hardening [rcu-only-publish]
///  [pool-blocking]          code reachable from ThreadPool dispatch
///                           lambdas (Submit / ParallelFor bodies and the
///                           methods they call) must not call blocking
///                           primitives (sleep_for / sleep_until /
///                           wait / wait_for / wait_until) outside
///                           src/util/, and must not acquire a mutex that
///                           is elsewhere held around a ThreadPool
///                           dispatch (lock-holder waiting on a pool that
///                           needs the lock)
///
/// Hot-path rules (LintOptions::hotpath / `nmcdr_lint --hotpath` /
/// `nmcdr_hotpath`), applied to src/ files. "Hot" functions are the
/// closure over the resolved call graph of (a) functions annotated
/// NMCDR_HOT (src/util/thread_annotations.h) and (b) ThreadPool
/// dispatch-lambda bodies outside src/util/; NMCDR_COLD prunes a function
/// out of the closure (amortized capacity growth, output
/// materialization):
///  [hot-alloc]              hot code must not heap-allocate: no operator
///                           new, make_unique / make_shared, container
///                           growth (push_back / emplace_back / resize /
///                           insert / emplace — push_back after a
///                           same-receiver reserve() in the same function
///                           is the sanctioned amortized pattern and
///                           stays legal), std::string construction, or
///                           sized std::vector construction. Every
///                           finding carries its hot-reachability
///                           provenance ("hot via A -> B -> C")
///  [throw-hot]              hot code must not `throw` nor use
///                           NMCDR_CHECK* (which stays armed in Release
///                           and formats + aborts); NMCDR_DCHECK* stays
///                           legal (compiled out unless
///                           NMCDR_DEBUG_CHECKS)
///  [arg-copy]               anywhere in src/: no by-value parameters of
///                           heavy types (Matrix, std::vector,
///                           std::string, request / response / snapshot /
///                           layout types) — pass const& / span, or
///                           std::move the parameter in the body (sink
///                           arguments stay legal)
///  [reserve-before-growth]  anywhere in src/ (cold code included): a
///                           push_back / emplace_back inside a `for` loop
///                           requires a prior same-receiver reserve() in
///                           the same function
///
/// A violation on a line carrying a comment `NMCDR_LINT_ALLOW(rule-id):
/// reason` is suppressed; a comma-separated list suppresses several rules
/// on one line (`NMCDR_LINT_ALLOW(naked-new, banned-thread): reason`).
/// Use sparingly (intentional leaky singletons).

/// One finding.
struct Diagnostic {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;  // rule id, e.g. "naked-new"
  std::string message;

  std::string ToString() const;
};

/// A source file split for linting: `code[i]` is line i with comments and
/// string/char literal contents blanked (structure preserved), and
/// `comments[i]` is the comment text that appeared on line i.
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

/// Runs the lexer-lite pass over raw file contents.
SourceFile Preprocess(std::string path, const std::string& content);

/// Expected include-guard symbol for a header path: strip a leading
/// "src/", uppercase, map non-alphanumerics to '_', prefix "NMCDR_",
/// suffix '_' ("tests/test_util.h" -> "NMCDR_TESTS_TEST_UTIL_H_").
std::string ExpectedGuard(const std::string& path);

/// Which rule families LintFileSet runs.
struct LintOptions {
  /// Adds the four concurrency passes (lock-order, thread-annotation,
  /// rcu-read-scope, pool-blocking) on top of the always-on rules.
  bool concurrency = false;
  /// Adds the four hot-path passes (hot-alloc, throw-hot, arg-copy,
  /// reserve-before-growth) on top of the always-on rules.
  bool hotpath = false;
};

/// Per-file rules (everything except the cross-file rules).
std::vector<Diagnostic> LintFile(const SourceFile& file);

/// All always-on rules over a file set, including guarded-by and the
/// include-graph rules.
std::vector<Diagnostic> LintFileSet(const std::vector<SourceFile>& files);

/// All rules selected by `options` over a file set.
std::vector<Diagnostic> LintFileSet(const std::vector<SourceFile>& files,
                                    const LintOptions& options);

/// One registered rule, for --list-rules.
struct RuleInfo {
  std::string id;
  std::string summary;
  bool concurrency_only = false;
  bool hotpath_only = false;
};

/// Every rule id the analyzer knows, in stable (registration) order.
const std::vector<RuleInfo>& ListRules();

/// One acquires-while-holding edge: `to` was acquired at to_file:to_line
/// while `from` (acquired at from_file:from_line) was held. `via` names
/// the callee for call-implied edges ("" for textual nesting).
struct LockOrderEdge {
  std::string from;
  std::string to;
  std::string from_file;
  int from_line = 0;
  std::string to_file;
  int to_line = 0;
  std::string via;
};

/// The tree-wide lock-order graph (nodes are class-qualified mutex
/// identities like "ClusterServer::mu_").
struct LockOrderGraph {
  std::vector<std::string> nodes;
  std::vector<LockOrderEdge> edges;
};

/// Builds the acquires-while-holding graph over src/ files in the set —
/// the artifact behind the [lock-order] rule, exposed for nmcdr_racecheck
/// reports.
LockOrderGraph BuildLockOrderGraph(const std::vector<SourceFile>& files);

/// Graphviz rendering of the lock-order graph (one edge per unique
/// from->to pair, labeled with its first acquisition site).
std::string LockOrderDot(const LockOrderGraph& graph);

/// Human-readable rendering: every node, then every edge with both sites.
std::string LockOrderText(const LockOrderGraph& graph);

/// Escapes a string for use inside a double-quoted DOT label or node id:
/// backslash-escapes '"' and '\' and replaces '<'/'>' (which would start
/// an HTML-like label) with their readable escapes. Shared by
/// LockOrderDot and HotPathDot.
std::string DotEscape(const std::string& s);

/// One hot-path finding attached to the call tree (a [hot-alloc] or
/// [throw-hot] site inside `func`).
struct HotPathSite {
  std::string func;  // owning hot function key
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// One hot function: `why` is its reachability provenance — the root
/// annotation or dispatch site for roots, a "A -> B -> C" chain
/// otherwise.
struct HotPathNode {
  std::string key;   // "Class::Name" or "path::name"
  std::string file;  // defining file
  int line = 0;      // 1-based head line
  std::string why;
  bool root = false;
};

/// One hot call edge: `from` (hot) resolves a call to `to` (hot).
struct HotPathEdge {
  std::string from;
  std::string to;
};

/// The annotated hot call tree plus its findings — the artifact behind
/// `nmcdr_lint --hotpath`, exposed for nmcdr_hotpath reports.
struct HotPathGraph {
  std::vector<HotPathNode> nodes;
  std::vector<HotPathEdge> edges;
  std::vector<HotPathSite> sites;
};

/// Builds the hot call tree over src/ files in the set and attaches the
/// [hot-alloc]/[throw-hot] findings (NMCDR_LINT_ALLOW-suppressed sites
/// excluded, matching the lint pass).
HotPathGraph BuildHotPathGraph(const std::vector<SourceFile>& files);

/// Graphviz rendering: hot functions as boxes (roots double-bordered,
/// allocating nodes red with their site count), hot call edges.
std::string HotPathDot(const HotPathGraph& graph);

/// Human-readable rendering: every hot function with provenance, then
/// every finding grouped under its function.
std::string HotPathText(const HotPathGraph& graph);

}  // namespace lint
}  // namespace nmcdr

#endif  // NMCDR_TOOLS_LINT_LINT_H_
