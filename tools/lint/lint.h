#ifndef NMCDR_TOOLS_LINT_LINT_H_
#define NMCDR_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace nmcdr {
namespace lint {

/// nmcdr_lint: a zero-dependency source-tree analyzer enforcing this
/// repo's invariants over src/, tests/, tools/, and bench/. It is not a
/// compiler front-end: a lexer-lite pass blanks comments and string
/// literals while preserving line structure, and line/token-level rules
/// run over the result. Registered as the `lint_test` CTest, so `ctest`
/// fails on any violation.
///
/// Rules (rule ids in brackets):
///  [include-guard]          header guards must derive from the file path
///                           (src/util/check.h -> NMCDR_UTIL_CHECK_H_)
///  [using-namespace-header] no `using namespace` at any scope in headers
///  [banned-rand]            no rand()/srand()/std::rand — use
///                           tensor/rng.h so seeds stay reproducible
///  [banned-assert]          no assert() — use NMCDR_CHECK*, which stays
///                           armed in Release builds
///  [banned-thread]          no std::thread / std::jthread construction or
///                           std::async outside src/util/thread_pool.* —
///                           run work on ThreadPool::Shared() so thread
///                           count, shutdown order, and sanitizer coverage
///                           are decided in one place
///                           (std::thread::hardware_concurrency stays
///                           legal)
///  [banned-chrono]          no std::chrono::{steady,system,
///                           high_resolution}_clock::now() outside
///                           src/obs/ and src/util/ — measure time through
///                           obs::NowNs / ScopedTimer / TraceSpan or
///                           util's Stopwatch so every timing datum flows
///                           through the observability layer (naming the
///                           clock type without sampling it stays legal)
///  [iostream-header]        no <iostream> in src/ headers — iostream's
///                           static init and heavy includes don't belong
///                           in hot-path headers; use util/logging.h
///  [naked-new]              no naked new/delete — use smart pointers or
///                           containers (deleted special members are fine)
///  [rcu-only-publish]       in src/serving/ (outside
///                           src/serving/cluster/snapshot_registry.*), no
///                           direct assignment / .reset() / .swap() of an
///                           identifier ending in `snapshot_` — snapshot
///                           pointers are RCU-published state and every
///                           replacement must go through
///                           SnapshotRegistry::Publish; init-lists
///                           (`snapshot_(...)`) and reads stay legal
///  [guarded-by]             in src/serving headers, every std::mutex
///                           member must have // GUARDED_BY(mu) member
///                           annotations, every annotation must name a
///                           declared mutex, and the annotated mutex must
///                           actually be locked in the class's files
///  [include-layering]       src/ modules form layers (util ->
///                           {obs, tensor} -> {autograd, graph} -> data ->
///                           core -> {baselines, eval} -> train ->
///                           {analysis, serving, verify}); a module may
///                           only include modules at its own or a lower
///                           layer
///  [include-cycle]          the quoted-#include graph over the linted
///                           file set must be acyclic (file-level)
///
/// A violation on a line carrying a comment `NMCDR_LINT_ALLOW(rule-id):
/// reason` is suppressed; use sparingly (intentional leaky singletons).

/// One finding.
struct Diagnostic {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;  // rule id, e.g. "naked-new"
  std::string message;

  std::string ToString() const;
};

/// A source file split for linting: `code[i]` is line i with comments and
/// string/char literal contents blanked (structure preserved), and
/// `comments[i]` is the comment text that appeared on line i.
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

/// Runs the lexer-lite pass over raw file contents.
SourceFile Preprocess(std::string path, const std::string& content);

/// Expected include-guard symbol for a header path: strip a leading
/// "src/", uppercase, map non-alphanumerics to '_', prefix "NMCDR_",
/// suffix '_' ("tests/test_util.h" -> "NMCDR_TESTS_TEST_UTIL_H_").
std::string ExpectedGuard(const std::string& path);

/// Per-file rules (everything except the cross-file guarded-by rule).
std::vector<Diagnostic> LintFile(const SourceFile& file);

/// All rules over a file set, including guarded-by, which cross-checks a
/// serving header's annotations against lock sites in its sibling .cc.
std::vector<Diagnostic> LintFileSet(const std::vector<SourceFile>& files);

}  // namespace lint
}  // namespace nmcdr

#endif  // NMCDR_TOOLS_LINT_LINT_H_
