#include "tools/lint/lint.h"

#include <cctype>
#include <unordered_map>

namespace nmcdr {
namespace lint {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds `tok` in `s` at a position where neither neighbor is a word
/// character (so "rand" does not match inside "operand").
size_t FindToken(const std::string& s, const std::string& tok,
                 size_t from = 0) {
  size_t pos = s.find(tok, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(s[pos - 1]);
    const size_t end = pos + tok.size();
    const bool right_ok = end >= s.size() || !IsWordChar(s[end]);
    if (left_ok && right_ok) return pos;
    pos = s.find(tok, pos + 1);
  }
  return std::string::npos;
}

bool HasToken(const std::string& s, const std::string& tok) {
  return FindToken(s, tok) != std::string::npos;
}

/// True when `tok` appears as a token immediately followed (modulo
/// whitespace) by '(' — i.e. a call or function-like macro use.
bool HasTokenCall(const std::string& s, const std::string& tok) {
  size_t pos = FindToken(s, tok);
  while (pos != std::string::npos) {
    size_t j = pos + tok.size();
    while (j < s.size() &&
           std::isspace(static_cast<unsigned char>(s[j])) != 0) {
      ++j;
    }
    if (j < s.size() && s[j] == '(') return true;
    pos = FindToken(s, tok, pos + tok.size());
  }
  return false;
}

std::string Trimmed(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// A suppression comment counts on the flagged line itself or anywhere in
/// the contiguous comment-only block directly above it (the usual place
/// for the justification sentence).
bool Suppressed(const SourceFile& f, size_t line_idx,
                const std::string& rule) {
  const std::string marker = "NMCDR_LINT_ALLOW(" + rule + ")";
  const auto has_marker = [&](size_t i) {
    return i < f.comments.size() &&
           f.comments[i].find(marker) != std::string::npos;
  };
  if (has_marker(line_idx)) return true;
  for (size_t i = line_idx; i > 0; --i) {
    const size_t above = i - 1;
    if (above >= f.code.size() || !Trimmed(f.code[above]).empty() ||
        f.comments[above].empty()) {
      break;
    }
    if (has_marker(above)) return true;
  }
  return false;
}

/// Appends a diagnostic unless the line carries a matching
/// NMCDR_LINT_ALLOW suppression comment.
void Add(const SourceFile& f, size_t line_idx, const std::string& rule,
         std::string message, std::vector<Diagnostic>* out) {
  if (Suppressed(f, line_idx, rule)) return;
  Diagnostic d;
  d.file = f.path;
  d.line = static_cast<int>(line_idx) + 1;
  d.rule = rule;
  d.message = std::move(message);
  out->push_back(std::move(d));
}

bool IsHeader(const std::string& path) { return path.ends_with(".h"); }

// ---------------------------------------------------------------------------
// Rule: include-guard
// ---------------------------------------------------------------------------

void CheckIncludeGuard(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (!IsHeader(f.path)) return;
  const std::string expected = ExpectedGuard(f.path);
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string line = Trimmed(f.code[i]);
    if (!line.starts_with("#ifndef")) continue;
    const std::string guard = Trimmed(line.substr(7));
    if (guard != expected) {
      Add(f, i, "include-guard",
          "include guard '" + guard + "' does not match file path; expected '" +
              expected + "'",
          out);
      return;
    }
    // The matching #define must follow on the next code-bearing line.
    for (size_t j = i + 1; j < f.code.size(); ++j) {
      const std::string next = Trimmed(f.code[j]);
      if (next.empty()) continue;
      if (Trimmed(next) != "#define " + expected &&
          !(next.starts_with("#define") && Trimmed(next.substr(7)) == expected)) {
        Add(f, j, "include-guard",
            "#ifndef " + expected + " must be followed by #define " + expected,
            out);
      }
      return;
    }
    return;
  }
  Add(f, 0, "include-guard", "header has no include guard; expected #ifndef " +
                                 expected,
      out);
}

// ---------------------------------------------------------------------------
// Rule: using-namespace-header
// ---------------------------------------------------------------------------

void CheckUsingNamespace(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (!IsHeader(f.path)) return;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const size_t u = FindToken(f.code[i], "using");
    if (u == std::string::npos) continue;
    const size_t ns = FindToken(f.code[i], "namespace", u);
    if (ns == std::string::npos) continue;
    // Only whitespace may separate the two tokens.
    if (Trimmed(f.code[i].substr(u + 5, ns - (u + 5))).empty()) {
      Add(f, i, "using-namespace-header",
          "'using namespace' in a header leaks into every includer", out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: banned-rand / banned-assert
// ---------------------------------------------------------------------------

void CheckBannedCalls(const SourceFile& f, std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (HasTokenCall(line, "rand") || HasTokenCall(line, "srand") ||
        HasTokenCall(line, "rand_r")) {
      Add(f, i, "banned-rand",
          "rand()/srand() is non-reproducible global state; use "
          "nmcdr::Rng (src/tensor/rng.h)",
          out);
    }
    if (HasTokenCall(line, "assert")) {
      Add(f, i, "banned-assert",
          "assert() vanishes under NDEBUG; use NMCDR_CHECK* "
          "(src/util/check.h), which stays armed in Release",
          out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-thread
// ---------------------------------------------------------------------------

void CheckBannedThread(const SourceFile& f, std::vector<Diagnostic>* out) {
  // The one sanctioned home of raw threads. Everything else goes through
  // ThreadPool so thread count, shutdown order, and sanitizer coverage are
  // decided in a single place.
  if (f.path.starts_with("src/util/thread_pool.")) return;
  static const std::string kThreadTypes[] = {"std::thread", "std::jthread"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool flagged = false;
    for (const std::string& tok : kThreadTypes) {
      // FindToken's word-boundary test works for qualified names too: ':'
      // is not a word character, so "std::thread" neither matches inside
      // "std::this_thread" nor needs special casing at its own edges.
      size_t pos = FindToken(line, tok);
      while (pos != std::string::npos && !flagged) {
        // `std::thread::hardware_concurrency()` is a capability query, not
        // a thread construction; a following "::" keeps it legal.
        size_t j = pos + tok.size();
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])) != 0) {
          ++j;
        }
        if (!(j + 1 < line.size() && line[j] == ':' && line[j + 1] == ':')) {
          Add(f, i, "banned-thread",
              tok + " outside src/util/thread_pool.*; run work on "
                    "ThreadPool::Shared() (Submit/ParallelFor) so thread "
                    "count, shutdown, and sanitizer coverage stay "
                    "centralized",
              out);
          flagged = true;
        }
        pos = FindToken(line, tok, pos + tok.size());
      }
      if (flagged) break;
    }
    if (!flagged && FindToken(line, "std::async") != std::string::npos) {
      Add(f, i, "banned-thread",
          "std::async outside src/util/thread_pool.*; it spawns unmanaged "
          "threads with blocking-future semantics — use "
          "ThreadPool::Shared()->Submit with a promise instead",
          out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-chrono
// ---------------------------------------------------------------------------

void CheckBannedChrono(const SourceFile& f, std::vector<Diagnostic>* out) {
  // Raw clock reads live in exactly two places: the observability layer
  // (obs::NowNs) and util's Stopwatch. Everything else measures time
  // through those, so every timing datum flows into one instrumentation
  // pipeline and tests can reason about a single clock.
  if (f.path.starts_with("src/obs/") || f.path.starts_with("src/util/")) {
    return;
  }
  static const std::string kClockTypes[] = {"steady_clock", "system_clock",
                                            "high_resolution_clock"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const std::string& tok : kClockTypes) {
      size_t pos = FindToken(line, tok);
      bool flagged = false;
      while (pos != std::string::npos && !flagged) {
        // Only a `::now` use is a clock read; mentioning the type (say, in
        // a time_point alias that never samples) is legal.
        size_t j = pos + tok.size();
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j])) != 0) {
          ++j;
        }
        size_t k = j + 2;
        while (k < line.size() &&
               std::isspace(static_cast<unsigned char>(line[k])) != 0) {
          ++k;
        }
        if (j + 1 < line.size() && line[j] == ':' && line[j + 1] == ':' &&
            FindToken(line, "now", k) == k) {
          Add(f, i, "banned-chrono",
              "std::chrono::" + tok +
                  "::now() outside src/obs/ and src/util/; measure time "
                  "through obs::NowNs / ScopedTimer / TraceSpan "
                  "(src/obs/) or Stopwatch (src/util/) so all timing "
                  "flows through the observability layer",
              out);
          flagged = true;
        }
        pos = FindToken(line, tok, pos + tok.size());
      }
      if (flagged) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: iostream-header
// ---------------------------------------------------------------------------

void CheckIostreamHeader(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (!IsHeader(f.path) || !f.path.starts_with("src/")) return;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string line = Trimmed(f.code[i]);
    if (line.starts_with("#include") &&
        line.find("<iostream>") != std::string::npos) {
      Add(f, i, "iostream-header",
          "<iostream> in a src/ header drags its static init and heavy "
          "includes into every hot-path TU; use util/logging.h or move IO "
          "into a .cc",
          out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: naked-new
// ---------------------------------------------------------------------------

void CheckNakedNew(const SourceFile& f, std::vector<Diagnostic>* out) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (HasToken(line, "new")) {
      Add(f, i, "naked-new",
          "naked new; use std::make_unique/std::make_shared or a container",
          out);
    }
    size_t pos = FindToken(line, "delete");
    while (pos != std::string::npos) {
      // `= delete` (deleted special members) is not a deallocation.
      size_t k = pos;
      while (k > 0 &&
             std::isspace(static_cast<unsigned char>(line[k - 1])) != 0) {
        --k;
      }
      if (k == 0 || line[k - 1] != '=') {
        Add(f, i, "naked-new",
            "naked delete; ownership must live in a smart pointer or "
            "container",
            out);
        break;
      }
      pos = FindToken(line, "delete", pos + 6);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: rcu-only-publish
// ---------------------------------------------------------------------------

void CheckRcuOnlyPublish(const SourceFile& f, std::vector<Diagnostic>* out) {
  // Snapshot pointers held by serving components are RCU-published state:
  // every replacement must go through SnapshotRegistry::Publish so swaps
  // stay atomic, versioned, and metered. Outside the registry itself, no
  // serving code may assign, reset, or swap a `*snapshot_` member
  // directly. Constructor init-lists (`snapshot_(...)`) and reads
  // (`snapshot_->`, `*snapshot_`) stay legal.
  if (!f.path.starts_with("src/serving/")) return;
  if (f.path.starts_with("src/serving/cluster/snapshot_registry.")) return;
  static const std::string kMember = "snapshot_";
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    size_t pos = line.find(kMember);
    bool flagged = false;
    while (pos != std::string::npos && !flagged) {
      const size_t end = pos + kMember.size();
      // `snapshot_` must END an identifier here (snapshot_version etc.
      // continue with word characters and are unrelated fields).
      if (end < line.size() && IsWordChar(line[end])) {
        pos = line.find(kMember, pos + 1);
        continue;
      }
      size_t j = end;
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j])) != 0) {
        ++j;
      }
      const bool assigns =
          j < line.size() && line[j] == '=' &&
          (j + 1 >= line.size() || line[j + 1] != '=');
      const bool mutates = line.compare(j, 7, ".reset(") == 0 ||
                           line.compare(j, 6, ".swap(") == 0;
      if (assigns || mutates) {
        Add(f, i, "rcu-only-publish",
            "direct mutation of snapshot pointer '" +
                line.substr(pos, kMember.size()) +
                "' outside src/serving/cluster/snapshot_registry.*; route "
                "snapshot replacement through SnapshotRegistry::Publish so "
                "swaps stay atomic, versioned, and refcounted",
            out);
        flagged = true;
      }
      pos = line.find(kMember, pos + 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: guarded-by
// ---------------------------------------------------------------------------

struct MutexMember {
  std::string name;
  size_t decl_line = 0;
  int annotations = 0;
};

struct ClassRegion {
  std::string name;
  size_t begin = 0;  // line of the class token
  size_t end = 0;    // line of the closing brace
};

/// Finds `class Foo { ... }` regions by brace matching over blanked code.
/// `enum class` is skipped; forward declarations (';' before '{') too.
std::vector<ClassRegion> FindClasses(const SourceFile& f) {
  std::vector<ClassRegion> regions;
  for (size_t i = 0; i < f.code.size(); ++i) {
    size_t pos = FindToken(f.code[i], "class");
    if (pos == std::string::npos) continue;
    // Reject `enum class`.
    const std::string before = Trimmed(f.code[i].substr(0, pos));
    if (before.ends_with("enum")) continue;
    // Class name: next identifier token.
    size_t p = pos + 5;
    while (p < f.code[i].size() &&
           std::isspace(static_cast<unsigned char>(f.code[i][p])) != 0) {
      ++p;
    }
    size_t q = p;
    while (q < f.code[i].size() && IsWordChar(f.code[i][q])) ++q;
    if (q == p) continue;
    ClassRegion region;
    region.name = f.code[i].substr(p, q - p);
    region.begin = i;
    // Scan forward for '{' (definition) or ';' (forward declaration).
    int depth = 0;
    bool open_found = false;
    for (size_t j = i; j < f.code.size() && region.end == 0; ++j) {
      const std::string& line = f.code[j];
      for (size_t k = (j == i ? q : 0); k < line.size(); ++k) {
        const char c = line[k];
        if (!open_found) {
          if (c == ';') break;  // forward declaration
          if (c == '{') {
            open_found = true;
            depth = 1;
          }
          continue;
        }
        if (c == '{') ++depth;
        if (c == '}' && --depth == 0) {
          region.end = j;
          break;
        }
      }
      if (!open_found) break;
    }
    if (open_found && region.end != 0) regions.push_back(region);
  }
  return regions;
}

std::string ExtractGuardedByTarget(const std::string& comment) {
  const size_t pos = comment.find("GUARDED_BY(");
  if (pos == std::string::npos) return "";
  const size_t open = pos + 11;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) return "";
  return Trimmed(comment.substr(open, close - open));
}

bool LineLocksMutex(const std::string& code, const std::string& mutex_name) {
  if (!HasToken(code, mutex_name)) return false;
  if (HasToken(code, "lock_guard") || HasToken(code, "unique_lock") ||
      HasToken(code, "scoped_lock")) {
    return true;
  }
  return code.find(mutex_name + ".lock()") != std::string::npos;
}

void CheckGuardedBy(const std::vector<SourceFile>& files,
                    std::vector<Diagnostic>* out) {
  std::unordered_map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;

  for (const SourceFile& f : files) {
    if (!f.path.starts_with("src/serving/") || !IsHeader(f.path)) continue;
    const SourceFile* impl = nullptr;
    const auto it = by_path.find(f.path.substr(0, f.path.size() - 2) + ".cc");
    if (it != by_path.end()) impl = it->second;

    for (const ClassRegion& region : FindClasses(f)) {
      std::vector<MutexMember> mutexes;
      for (size_t i = region.begin; i <= region.end; ++i) {
        const size_t pos = f.code[i].find("std::mutex");
        if (pos == std::string::npos) continue;
        size_t p = pos + 10;
        while (p < f.code[i].size() &&
               std::isspace(static_cast<unsigned char>(f.code[i][p])) != 0) {
          ++p;
        }
        size_t q = p;
        while (q < f.code[i].size() && IsWordChar(f.code[i][q])) ++q;
        if (q > p) mutexes.push_back({f.code[i].substr(p, q - p), i, 0});
      }

      for (size_t i = region.begin; i <= region.end; ++i) {
        const std::string target = ExtractGuardedByTarget(f.comments[i]);
        if (target.empty()) continue;
        bool known = false;
        for (MutexMember& m : mutexes) {
          if (m.name == target) {
            ++m.annotations;
            known = true;
          }
        }
        if (!known) {
          Add(f, i, "guarded-by",
              "GUARDED_BY(" + target + ") in class " + region.name +
                  " names no std::mutex member of that class",
              out);
        }
      }

      for (const MutexMember& m : mutexes) {
        if (m.annotations == 0) {
          Add(f, m.decl_line, "guarded-by",
              "std::mutex member '" + m.name + "' of serving class " +
                  region.name +
                  " has no GUARDED_BY member annotations; document what it "
                  "protects",
              out);
          continue;
        }
        bool locked = false;
        for (size_t i = region.begin; i <= region.end && !locked; ++i) {
          locked = LineLocksMutex(f.code[i], m.name);
        }
        if (impl != nullptr) {
          for (size_t i = 0; i < impl->code.size() && !locked; ++i) {
            locked = LineLocksMutex(impl->code[i], m.name);
          }
        }
        if (!locked) {
          Add(f, m.decl_line, "guarded-by",
              "mutex '" + m.name + "' of serving class " + region.name +
                  " carries GUARDED_BY annotations but is never locked in " +
                  f.path + (impl != nullptr ? " or its .cc" : ""),
              out);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: include-layering / include-cycle
// ---------------------------------------------------------------------------

/// Declared module layering over src/ subdirectories. An #include edge is
/// legal when the includer's rank is >= the includee's rank (equal ranks
/// form one layer; file-level cycles inside a layer are caught by the
/// separate cycle rule). Derived from the dependency order
///   util -> {obs, tensor} -> {autograd, graph} -> data -> core ->
///   {baselines, eval} -> train -> {analysis, serving, verify}.
/// obs sits beside tensor (above util only) so the kernel dispatchers can
/// open KernelScopes while obs itself stays dependency-free.
int ModuleRank(const std::string& module) {
  static const std::unordered_map<std::string, int> kRanks = {
      {"util", 0},      {"obs", 1},    {"tensor", 1},
      {"autograd", 2},  {"graph", 2},
      {"data", 3},      {"core", 4},   {"baselines", 5}, {"eval", 5},
      {"train", 6},     {"analysis", 7}, {"serving", 7}, {"verify", 7},
  };
  const auto it = kRanks.find(module);
  return it == kRanks.end() ? -1 : it->second;
}

/// One quoted #include directive found in a file.
struct IncludeEdge {
  size_t line = 0;      // 0-based line of the directive
  std::string target;   // path as written between the quotes
};

std::vector<IncludeEdge> ExtractIncludes(const SourceFile& f) {
  std::vector<IncludeEdge> edges;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string line = Trimmed(f.code[i]);
    if (!line.starts_with("#include")) continue;
    const size_t open = line.find('"');
    if (open == std::string::npos) continue;
    const size_t close = line.find('"', open + 1);
    if (close == std::string::npos || close == open + 1) continue;
    edges.push_back({i, line.substr(open + 1, close - open - 1)});
  }
  return edges;
}

/// Module of a src/ path ("src/train/registry.h" -> "train"); "" for
/// paths outside src/.
std::string SrcModule(const std::string& path) {
  if (!path.starts_with("src/")) return "";
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

/// Resolves a quoted include against the file set: project includes are
/// rooted at src/ (every library adds src/ as an include dir), tool and
/// test includes at the repo root. Returns "" for external headers.
std::string ResolveInclude(
    const std::string& target,
    const std::unordered_map<std::string, const SourceFile*>& by_path) {
  const std::string under_src = "src/" + target;
  if (by_path.count(under_src) != 0) return under_src;
  if (by_path.count(target) != 0) return target;
  return "";
}

void CheckIncludeLayering(const std::vector<SourceFile>& files,
                          std::vector<Diagnostic>* out) {
  std::unordered_map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;
  for (const SourceFile& f : files) {
    const std::string from_module = SrcModule(f.path);
    if (from_module.empty()) continue;
    const int from_rank = ModuleRank(from_module);
    for (const IncludeEdge& e : ExtractIncludes(f)) {
      const std::string resolved = ResolveInclude(e.target, by_path);
      const std::string to_module = SrcModule(resolved);
      if (to_module.empty() || to_module == from_module) continue;
      const int to_rank = ModuleRank(to_module);
      if (from_rank < 0) {
        Add(f, e.line, "include-layering",
            "module '" + from_module +
                "' has no declared layer; add it to ModuleRank in "
                "tools/lint/lint.cc",
            out);
        break;  // one finding per undeclared module is enough
      }
      if (to_rank < 0) {
        Add(f, e.line, "include-layering",
            "included module '" + to_module +
                "' has no declared layer; add it to ModuleRank in "
                "tools/lint/lint.cc",
            out);
        continue;
      }
      if (from_rank < to_rank) {
        Add(f, e.line, "include-layering",
            "src/" + from_module + " (layer " + std::to_string(from_rank) +
                ") must not include src/" + to_module + " (layer " +
                std::to_string(to_rank) +
                "); declared order: util -> {obs, tensor} -> "
                "{autograd, graph} -> data -> core -> {baselines, eval} -> "
                "train -> {analysis, serving, verify}",
            out);
      }
    }
  }
}

void CheckIncludeCycles(const std::vector<SourceFile>& files,
                        std::vector<Diagnostic>* out) {
  std::unordered_map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;

  // File-level include DAG restricted to files in the set.
  std::unordered_map<std::string, std::vector<std::string>> graph;
  std::unordered_map<std::string, size_t> first_include_line;
  for (const SourceFile& f : files) {
    for (const IncludeEdge& e : ExtractIncludes(f)) {
      const std::string resolved = ResolveInclude(e.target, by_path);
      if (resolved.empty() || resolved == f.path) continue;
      graph[f.path].push_back(resolved);
      if (first_include_line.count(f.path) == 0) {
        first_include_line[f.path] = e.line;
      }
    }
  }

  // Iterative three-color DFS; a back edge closes a cycle, reported once
  // with the full path along the DFS stack.
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<std::string, Color> color;
  std::vector<std::string> order;
  order.reserve(files.size());
  for (const SourceFile& f : files) order.push_back(f.path);

  for (const std::string& root : order) {
    if (color[root] != Color::kWhite) continue;
    struct Frame {
      std::string node;
      size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({root});
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::vector<std::string>& next = graph[frame.node];
      if (frame.next >= next.size()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const std::string& child = next[frame.next++];
      if (color[child] == Color::kWhite) {
        color[child] = Color::kGray;
        stack.push_back({child});
      } else if (color[child] == Color::kGray) {
        // Cycle: child .. stack.back() .. child.
        std::string chain = child;
        size_t start = 0;
        for (size_t i = 0; i < stack.size(); ++i) {
          if (stack[i].node == child) start = i;
        }
        for (size_t i = start + 1; i < stack.size(); ++i) {
          chain += " -> " + stack[i].node;
        }
        chain += " -> " + child;
        const SourceFile* f = by_path.at(child);
        Add(*f, first_include_line.count(child) ? first_include_line[child] : 0,
            "include-cycle", "#include cycle: " + chain, out);
        color[child] = Color::kBlack;  // report each cycle entry once
      }
    }
  }
}

}  // namespace

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

SourceFile Preprocess(std::string path, const std::string& content) {
  SourceFile f;
  f.path = std::move(path);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string code_line;
  std::string comment_line;
  std::string raw_end;  // ')' + delim + '"' terminating the raw literal
  bool preserve_string = false;  // keep contents of "#include" paths
  const size_t n = content.size();
  size_t i = 0;

  const auto flush = [&] {
    f.code.push_back(code_line);
    f.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  while (i < n) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      flush();
      ++i;
      // Line comments end; unterminated string/char literals are abandoned
      // (robustness over strictness); block comments and raw strings span.
      if (state == State::kLineComment || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;
      }
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line += "//";
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line += "/*";
          i += 2;
        } else if (c == '"') {
          // Include paths must survive blanking: the include-graph rules
          // read them out of the code lines.
          preserve_string = Trimmed(code_line).starts_with("#include");
          const bool raw_prefix =
              !code_line.empty() && code_line.back() == 'R' &&
              (code_line.size() < 2 ||
               !IsWordChar(code_line[code_line.size() - 2]));
          bool entered_raw = false;
          if (raw_prefix) {
            std::string delim;
            size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '"' &&
                   content[j] != '\n' && delim.size() < 16) {
              delim += content[j++];
            }
            if (j < n && content[j] == '(') {
              raw_end = ")" + delim + "\"";
              state = State::kRaw;
              code_line += '"';
              i = j + 1;
              entered_raw = true;
            }
          }
          if (!entered_raw) {
            state = State::kString;
            code_line += '"';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
          ++i;
        } else {
          code_line += c;
          ++i;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          comment_line += "*/";
          state = State::kCode;
          i += 2;
        } else {
          comment_line += c;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          i += 2;
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
          ++i;
        } else {
          code_line += preserve_string ? c : ' ';
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          i += 2;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
          ++i;
        } else {
          code_line += ' ';
          ++i;
        }
        break;
      case State::kRaw:
        if (content.compare(i, raw_end.size(), raw_end) == 0) {
          code_line += '"';
          i += raw_end.size();
          state = State::kCode;
        } else {
          code_line += ' ';
          ++i;
        }
        break;
    }
  }
  if (!code_line.empty() || !comment_line.empty() || f.code.empty()) flush();
  return f;
}

std::string ExpectedGuard(const std::string& path) {
  std::string p = path;
  if (p.starts_with("src/")) p = p.substr(4);
  std::string guard = "NMCDR_";
  for (const char c : p) {
    guard += IsWordChar(c)
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

std::vector<Diagnostic> LintFile(const SourceFile& file) {
  std::vector<Diagnostic> out;
  CheckIncludeGuard(file, &out);
  CheckUsingNamespace(file, &out);
  CheckBannedCalls(file, &out);
  CheckBannedThread(file, &out);
  CheckBannedChrono(file, &out);
  CheckIostreamHeader(file, &out);
  CheckNakedNew(file, &out);
  CheckRcuOnlyPublish(file, &out);
  return out;
}

std::vector<Diagnostic> LintFileSet(const std::vector<SourceFile>& files) {
  std::vector<Diagnostic> out;
  for (const SourceFile& f : files) {
    std::vector<Diagnostic> d = LintFile(f);
    out.insert(out.end(), d.begin(), d.end());
  }
  CheckGuardedBy(files, &out);
  CheckIncludeLayering(files, &out);
  CheckIncludeCycles(files, &out);
  return out;
}

}  // namespace lint
}  // namespace nmcdr
