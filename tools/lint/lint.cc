// Core of the nmcdr_lint analyzer: the lexer-lite Preprocess pass, the
// shared token/scope helpers, the suppression machinery, and the
// LintFile/LintFileSet drivers. The rules themselves live in per-pass
// translation units: rules_text.cc (line/token rules + guarded-by),
// rules_include.cc (include graph), rules_concurrency.cc (the four
// concurrency passes), rules_hotpath.cc (the four hot-path passes); the
// two whole-program families share the structural model in model.cc.
#include "tools/lint/lint.h"

#include <cctype>
#include <unordered_map>

#include "tools/lint/lint_internal.h"

namespace nmcdr {
namespace lint {
namespace internal {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

size_t FindToken(const std::string& s, const std::string& tok, size_t from) {
  size_t pos = s.find(tok, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(s[pos - 1]);
    const size_t end = pos + tok.size();
    const bool right_ok = end >= s.size() || !IsWordChar(s[end]);
    if (left_ok && right_ok) return pos;
    pos = s.find(tok, pos + 1);
  }
  return std::string::npos;
}

bool HasToken(const std::string& s, const std::string& tok) {
  return FindToken(s, tok) != std::string::npos;
}

bool HasTokenCall(const std::string& s, const std::string& tok) {
  size_t pos = FindToken(s, tok);
  while (pos != std::string::npos) {
    size_t j = pos + tok.size();
    while (j < s.size() &&
           std::isspace(static_cast<unsigned char>(s[j])) != 0) {
      ++j;
    }
    if (j < s.size() && s[j] == '(') return true;
    pos = FindToken(s, tok, pos + tok.size());
  }
  return false;
}

std::string Trimmed(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

namespace {

/// True when `comment` carries an NMCDR_LINT_ALLOW whose comma-separated
/// rule list contains `rule`.
bool AllowMarkerMatches(const std::string& comment, const std::string& rule) {
  static const std::string kMarker = "NMCDR_LINT_ALLOW(";
  size_t pos = comment.find(kMarker);
  while (pos != std::string::npos) {
    const size_t open = pos + kMarker.size();
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) return false;
    // Split the parenthesized list on commas; each entry is one rule id.
    size_t entry = open;
    while (entry < close) {
      size_t comma = comment.find(',', entry);
      if (comma == std::string::npos || comma > close) comma = close;
      if (Trimmed(comment.substr(entry, comma - entry)) == rule) return true;
      entry = comma + 1;
    }
    pos = comment.find(kMarker, close);
  }
  return false;
}

}  // namespace

bool Suppressed(const SourceFile& f, size_t line_idx,
                const std::string& rule) {
  const auto has_marker = [&](size_t i) {
    return i < f.comments.size() && AllowMarkerMatches(f.comments[i], rule);
  };
  if (has_marker(line_idx)) return true;
  for (size_t i = line_idx; i > 0; --i) {
    const size_t above = i - 1;
    if (above >= f.code.size() || !Trimmed(f.code[above]).empty() ||
        f.comments[above].empty()) {
      break;
    }
    if (has_marker(above)) return true;
  }
  return false;
}

void Add(const SourceFile& f, size_t line_idx, const std::string& rule,
         std::string message, std::vector<Diagnostic>* out) {
  if (Suppressed(f, line_idx, rule)) return;
  Diagnostic d;
  d.file = f.path;
  d.line = static_cast<int>(line_idx) + 1;
  d.rule = rule;
  d.message = std::move(message);
  out->push_back(std::move(d));
}

bool IsHeader(const std::string& path) { return path.ends_with(".h"); }

std::vector<ClassRegion> FindClasses(const SourceFile& f) {
  std::vector<ClassRegion> regions;
  for (size_t i = 0; i < f.code.size(); ++i) {
    size_t pos = FindToken(f.code[i], "class");
    if (pos == std::string::npos) continue;
    // Reject `enum class`.
    const std::string before = Trimmed(f.code[i].substr(0, pos));
    if (before.ends_with("enum")) continue;
    // Class name: next identifier token.
    size_t p = pos + 5;
    while (p < f.code[i].size() &&
           std::isspace(static_cast<unsigned char>(f.code[i][p])) != 0) {
      ++p;
    }
    size_t q = p;
    while (q < f.code[i].size() && IsWordChar(f.code[i][q])) ++q;
    if (q == p) continue;
    ClassRegion region;
    region.name = f.code[i].substr(p, q - p);
    region.begin = i;
    // Scan forward for '{' (definition) or ';' (forward declaration).
    int depth = 0;
    bool open_found = false;
    for (size_t j = i; j < f.code.size() && region.end == 0; ++j) {
      const std::string& line = f.code[j];
      for (size_t k = (j == i ? q : 0); k < line.size(); ++k) {
        const char c = line[k];
        if (!open_found) {
          if (c == ';') break;  // forward declaration
          if (c == '{') {
            open_found = true;
            depth = 1;
          }
          continue;
        }
        if (c == '{') ++depth;
        if (c == '}' && --depth == 0) {
          region.end = j;
          break;
        }
      }
      if (!open_found) break;
    }
    if (open_found && region.end != 0) regions.push_back(region);
  }
  return regions;
}

std::vector<IncludeEdge> ExtractIncludes(const SourceFile& f) {
  std::vector<IncludeEdge> edges;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string line = Trimmed(f.code[i]);
    if (!line.starts_with("#include")) continue;
    const size_t open = line.find('"');
    if (open == std::string::npos) continue;
    const size_t close = line.find('"', open + 1);
    if (close == std::string::npos || close == open + 1) continue;
    edges.push_back({i, line.substr(open + 1, close - open - 1)});
  }
  return edges;
}

std::string SrcModule(const std::string& path) {
  if (!path.starts_with("src/")) return "";
  const size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

std::string ResolveInclude(
    const std::string& target,
    const std::unordered_map<std::string, const SourceFile*>& by_path) {
  const std::string under_src = "src/" + target;
  if (by_path.count(under_src) != 0) return under_src;
  if (by_path.count(target) != 0) return target;
  return "";
}

}  // namespace internal

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

SourceFile Preprocess(std::string path, const std::string& content) {
  using internal::IsWordChar;
  using internal::Trimmed;
  SourceFile f;
  f.path = std::move(path);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string code_line;
  std::string comment_line;
  std::string raw_end;  // ')' + delim + '"' terminating the raw literal
  bool preserve_string = false;  // keep contents of "#include" paths
  const size_t n = content.size();
  size_t i = 0;

  const auto flush = [&] {
    f.code.push_back(code_line);
    f.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  while (i < n) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      flush();
      ++i;
      // Line comments end; unterminated string/char literals are abandoned
      // (robustness over strictness); block comments and raw strings span.
      if (state == State::kLineComment || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;
      }
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line += "//";
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_line += "/*";
          i += 2;
        } else if (c == '"') {
          // Include paths must survive blanking: the include-graph rules
          // read them out of the code lines.
          preserve_string = Trimmed(code_line).starts_with("#include");
          const bool raw_prefix =
              !code_line.empty() && code_line.back() == 'R' &&
              (code_line.size() < 2 ||
               !IsWordChar(code_line[code_line.size() - 2]));
          bool entered_raw = false;
          if (raw_prefix) {
            std::string delim;
            size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '"' &&
                   content[j] != '\n' && delim.size() < 16) {
              delim += content[j++];
            }
            if (j < n && content[j] == '(') {
              raw_end = ")" + delim + "\"";
              state = State::kRaw;
              code_line += '"';
              i = j + 1;
              entered_raw = true;
            }
          }
          if (!entered_raw) {
            state = State::kString;
            code_line += '"';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
          ++i;
        } else {
          code_line += c;
          ++i;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          comment_line += "*/";
          state = State::kCode;
          i += 2;
        } else {
          comment_line += c;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          i += 2;
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
          ++i;
        } else {
          code_line += preserve_string ? c : ' ';
          ++i;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          i += 2;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
          ++i;
        } else {
          code_line += ' ';
          ++i;
        }
        break;
      case State::kRaw:
        if (content.compare(i, raw_end.size(), raw_end) == 0) {
          code_line += '"';
          i += raw_end.size();
          state = State::kCode;
        } else {
          code_line += ' ';
          ++i;
        }
        break;
    }
  }
  if (!code_line.empty() || !comment_line.empty() || f.code.empty()) flush();
  return f;
}

std::string ExpectedGuard(const std::string& path) {
  std::string p = path;
  if (p.starts_with("src/")) p = p.substr(4);
  std::string guard = "NMCDR_";
  for (const char c : p) {
    guard += internal::IsWordChar(c)
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

std::vector<Diagnostic> LintFile(const SourceFile& file) {
  std::vector<Diagnostic> out;
  internal::CheckTextRules(file, &out);
  return out;
}

std::vector<Diagnostic> LintFileSet(const std::vector<SourceFile>& files) {
  return LintFileSet(files, LintOptions());
}

std::vector<Diagnostic> LintFileSet(const std::vector<SourceFile>& files,
                                    const LintOptions& options) {
  std::vector<Diagnostic> out;
  for (const SourceFile& f : files) {
    std::vector<Diagnostic> d = LintFile(f);
    out.insert(out.end(), d.begin(), d.end());
  }
  internal::CheckGuardedBy(files, &out);
  internal::CheckIncludeRules(files, &out);
  if (options.concurrency) internal::CheckConcurrency(files, &out);
  if (options.hotpath) internal::CheckHotPath(files, &out);
  return out;
}

std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      // '<' / '>' would read as an HTML-like label delimiter in some DOT
      // consumers; render them as readable escapes.
      case '<':
        out += "\\<";
        break;
      case '>':
        out += "\\>";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const std::vector<RuleInfo>& ListRules() {
  static const std::vector<RuleInfo> kRules = {
      {"include-guard", "header guards must derive from the file path",
       false},
      {"using-namespace-header", "no `using namespace` in headers", false},
      {"banned-rand", "no rand()/srand(); use tensor/rng.h", false},
      {"banned-assert", "no assert(); use NMCDR_CHECK*", false},
      {"banned-thread",
       "no std::thread/std::async outside src/util/thread_pool.*", false},
      {"banned-chrono",
       "no raw clock reads outside src/obs/ and src/util/", false},
      {"iostream-header", "no <iostream> in src/ headers", false},
      {"naked-new", "no naked new/delete", false},
      {"rcu-only-publish",
       "snapshot pointer replacement only via SnapshotRegistry::Publish",
       false},
      {"guarded-by",
       "mutex members in concurrent headers need checked GUARDED_BY "
       "annotations",
       false},
      {"include-layering", "src/ module includes must respect the declared "
                           "layer order", false},
      {"include-cycle", "the quoted-#include graph must be acyclic", false},
      {"lock-order",
       "the acquires-while-holding graph over all lock sites must be "
       "acyclic (potential deadlock)",
       true},
      {"thread-annotation",
       "NMCDR_REQUIRES/NMCDR_EXCLUDES must name declared mutexes and hold "
       "at call sites / lock scopes",
       true},
      {"rcu-read-scope",
       "a snapshot acquired from a SnapshotRegistry must not escape the "
       "acquiring scope",
       true},
      {"pool-blocking",
       "pool-reachable code must not block or take dispatch-held mutexes",
       true},
      {"hot-alloc",
       "no heap allocation or container growth in NMCDR_HOT-reachable "
       "code (reserve-then-push_back stays legal)",
       false, true},
      {"throw-hot",
       "no throw or NMCDR_CHECK* in NMCDR_HOT-reachable code "
       "(NMCDR_DCHECK* stays legal)",
       false, true},
      {"arg-copy",
       "no by-value heavy-type parameters (Matrix, std::vector, "
       "std::string, snapshot/layout types) in src/",
       false, true},
      {"reserve-before-growth",
       "push_back inside a for loop requires a prior same-receiver "
       "reserve()",
       false, true},
  };
  return kRules;
}

}  // namespace lint
}  // namespace nmcdr
