// The four hot-path passes: [hot-alloc], [throw-hot], [arg-copy],
// [reserve-before-growth]. See tools/lint/lint.h for the rule catalogue.
//
// Built on the shared structural model (tools/lint/model.h). Hot
// reachability is a fixpoint over the resolved call graph:
//
//   seeds  = functions annotated NMCDR_HOT (matched by enclosing class +
//            method name; class-less annotations match free functions)
//          + resolved callees of calls made inside ThreadPool
//            dispatch-lambda bodies outside src/util/ (drainer lambdas,
//            backend ParallelFor bodies — hot without annotation)
//   close  = BFS over Func::calls' resolved keys, recording a provenance
//            chain ("A -> B -> C") per reached function
//   prune  = NMCDR_COLD functions are neither scanned nor descended into
//            (amortized capacity growth, output materialization);
//            BumpArena::{Alloc, ResetStep} are implicitly cold — the bump
//            arena IS the sanctioned hot-path allocator
//
// [hot-alloc] and [throw-hot] then scan every hot function body plus
// every dispatch-lambda body of non-hot functions; src/util/ is exempt
// (the pool/queue machinery allocates by design and is not steady-state
// request work). [arg-copy] and [reserve-before-growth] run over every
// src/ function definition, hot or not.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint_internal.h"
#include "tools/lint/model.h"

namespace nmcdr {
namespace lint {
namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Hot reachability
// ---------------------------------------------------------------------------

struct HotComputation {
  Model model;
  // Hot function key -> provenance chain ("root" or "A -> B -> C").
  std::map<std::string, std::string> chain;
  // Root key -> why it is a root ("NMCDR_HOT", "ThreadPool dispatch in X").
  std::map<std::string, std::string> root_why;
  std::set<std::string> cold;  // keys pruned by NMCDR_COLD
};

/// Collects NMCDR_HOT / NMCDR_COLD annotation targets as (class, method)
/// pairs; class is "" for free functions (annotations outside any class
/// region). Malformed annotations (no owning declaration) are diagnosed
/// under the family's primary rule.
void CollectHotAnnotations(const Model& model,
                           const std::vector<SourceFile>& files,
                           std::set<std::pair<std::string, std::string>>* hot,
                           std::set<std::pair<std::string, std::string>>* cold,
                           std::vector<Diagnostic>* out) {
  for (const SourceFile& f : files) {
    if (!f.path.starts_with("src/")) continue;
    for (size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      if (Trimmed(line).starts_with("#")) continue;
      for (const char* macro : {"NMCDR_HOT", "NMCDR_COLD"}) {
        size_t pos = FindToken(line, macro);
        while (pos != std::string::npos) {
          const std::string method = AnnotatedMethod(f, li, pos);
          if (method.empty()) {
            Add(f, li, "hot-alloc",
                std::string(macro) +
                    " must annotate a function declaration (in-class method "
                    "or free function)",
                out);
          } else {
            const ClassInfo* cls = EnclosingClass(model, f, li);
            const std::string cls_name = cls == nullptr ? "" : cls->name;
            auto* target = std::string(macro) == "NMCDR_HOT" ? hot : cold;
            target->emplace(cls_name, method);
          }
          pos = FindToken(line, macro, pos + 1);
        }
      }
    }
  }
}

HotComputation ComputeHot(const std::vector<SourceFile>& files,
                          std::vector<Diagnostic>* out) {
  HotComputation hc;
  hc.model = BuildModel(files);
  std::set<std::pair<std::string, std::string>> hot_pairs;
  std::set<std::pair<std::string, std::string>> cold_pairs;
  CollectHotAnnotations(hc.model, files, &hot_pairs, &cold_pairs, out);
  // The bump arena is the sanctioned hot-path allocator: Alloc() is a
  // pointer bump and ResetStep() a rewind, so hot code may call both
  // freely. Their bodies are pruned like NMCDR_COLD — any allocation
  // inside them is the arena's own amortized growth machinery (counted by
  // growth_events(), asserted flat in steady state by program_test), not
  // per-op heap traffic.
  cold_pairs.emplace("BumpArena", "Alloc");
  cold_pairs.emplace("BumpArena", "ResetStep");

  std::vector<std::string> work;
  for (const Func& func : hc.model.funcs) {
    if (cold_pairs.count({func.cls, func.name}) != 0) {
      hc.cold.insert(func.key);
      continue;
    }
    if (hot_pairs.count({func.cls, func.name}) != 0 &&
        hc.chain.emplace(func.key, func.key).second) {
      hc.root_why[func.key] = "NMCDR_HOT";
      work.push_back(func.key);
    }
  }
  // Dispatch-lambda callees are hot roots without annotation.
  for (const Func& func : hc.model.funcs) {
    if (InUtil(func.file->path) || hc.cold.count(func.key) != 0) continue;
    for (const CallEvent& c : func.calls) {
      if (!c.in_dispatch || c.resolved.empty() ||
          hc.cold.count(c.resolved) != 0) {
        continue;
      }
      if (hc.chain
              .emplace(c.resolved,
                       "pool dispatch in " + func.key + " -> " + c.resolved)
              .second) {
        hc.root_why[c.resolved] = "ThreadPool dispatch in " + func.key;
        work.push_back(c.resolved);
      }
    }
  }
  // Closure over resolved calls.
  while (!work.empty()) {
    const std::string key = work.back();
    work.pop_back();
    const auto it = hc.model.func_by_key.find(key);
    if (it == hc.model.func_by_key.end()) continue;
    for (const size_t fi : it->second) {
      for (const CallEvent& c : hc.model.funcs[fi].calls) {
        if (c.resolved.empty() || hc.cold.count(c.resolved) != 0) continue;
        if (hc.chain.emplace(c.resolved, hc.chain[key] + " -> " + c.resolved)
                .second) {
          work.push_back(c.resolved);
        }
      }
    }
  }
  return hc;
}

// ---------------------------------------------------------------------------
// Receiver helpers
// ---------------------------------------------------------------------------

/// Receiver identifier of a member call whose name starts at `pos`
/// ("candidates" for `candidates.push_back(`); "" when the receiver is
/// not a simple identifier (`a[i].push_back`, `get()->push_back`).
std::string SimpleReceiver(const std::string& line, size_t pos) {
  const size_t p = SkipSpacesBack(line, pos);
  size_t r;
  if (p >= 1 && line[p - 1] == '.') {
    r = p - 1;
  } else if (p >= 2 && line[p - 1] == '>' && line[p - 2] == '-') {
    r = p - 2;
  } else {
    return "";
  }
  r = SkipSpacesBack(line, r);
  if (r >= 1 && (line[r - 1] == ')' || line[r - 1] == ']')) return "";
  return IdentBefore(line, r);
}

/// True when `recv` has a member reserve() call earlier in `func`'s body
/// (any line up to `li`, column-ordered on `li` itself) — the sanctioned
/// amortize-capacity-then-append pattern.
bool HasPriorReserve(const Func& func, const std::string& recv, size_t li,
                     size_t pos) {
  if (recv.empty()) return false;
  const SourceFile& f = *func.file;
  for (size_t lj = func.body_begin; lj <= li && lj < f.code.size(); ++lj) {
    const std::string& line = f.code[lj];
    size_t rp = FindToken(line, "reserve");
    while (rp != std::string::npos) {
      if (lj == li && rp >= pos) break;
      if (SimpleReceiver(line, rp) == recv) return true;
      rp = FindToken(line, "reserve", rp + 1);
    }
  }
  return false;
}

/// True when `recv` is declared as a std::deque somewhere in the file
/// (deques have no reserve(); growth is chunked, not reallocating).
bool IsDequeReceiver(const SourceFile& f, const std::string& recv) {
  for (const std::string& line : f.code) {
    if (HasToken(line, "deque") && HasToken(line, recv)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// [hot-alloc] + [throw-hot] region scan
// ---------------------------------------------------------------------------

struct HotSink {
  const std::string* owner;
  const std::string* chain;
  std::vector<HotPathSite>* sites;
};

void Emit(const SourceFile& f, size_t li, const std::string& rule,
          std::string message, const HotSink& sink) {
  if (Suppressed(f, li, rule)) return;
  HotPathSite site;
  site.func = *sink.owner;
  site.file = f.path;
  site.line = static_cast<int>(li) + 1;
  site.rule = rule;
  site.message = std::move(message) + " [hot via " + *sink.chain + "]";
  sink.sites->push_back(std::move(site));
}

/// Scans one hot region (a function body or a dispatch-lambda body) for
/// the [hot-alloc] and [throw-hot] patterns. `begin_col` bounds the first
/// line, `end_col` the last (std::string::npos = whole line).
void ScanHotRegion(const SourceFile& f, const Func& func, size_t begin_line,
                   size_t begin_col, size_t end_line, size_t end_col,
                   const HotSink& sink) {
  for (size_t li = begin_line; li <= end_line && li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    if (Trimmed(line).starts_with("#")) continue;
    const size_t start = li == begin_line ? begin_col : 0;
    const size_t limit =
        li == end_line && end_col != std::string::npos ? end_col : line.size();
    const auto in_window = [&](size_t pos) {
      return pos != std::string::npos && pos < limit;
    };

    // Direct heap allocation.
    for (size_t pos = FindToken(line, "new", start); in_window(pos);
         pos = FindToken(line, "new", pos + 1)) {
      Emit(f, li, "hot-alloc", "operator new in hot code", sink);
    }
    for (const char* tok : {"make_unique", "make_shared"}) {
      for (size_t pos = FindToken(line, tok, start); in_window(pos);
           pos = FindToken(line, tok, pos + 1)) {
        Emit(f, li, "hot-alloc",
             std::string(tok) + " allocates in hot code", sink);
      }
    }
    // Container growth. push_back/emplace_back after a same-receiver
    // reserve() is the amortized scratch pattern and stays legal;
    // resize/insert/emplace always flag (use a NMCDR_COLD Prepare()).
    for (const char* tok :
         {"push_back", "emplace_back", "resize", "insert", "emplace"}) {
      for (size_t pos = FindToken(line, tok, start); in_window(pos);
           pos = FindToken(line, tok, pos + 1)) {
        size_t after = pos + std::string(tok).size();
        while (after < line.size() &&
               std::isspace(static_cast<unsigned char>(line[after])) != 0) {
          ++after;
        }
        if (after >= line.size() || line[after] != '(' ||
            !IsWaitCall(line, pos)) {
          continue;
        }
        const std::string recv = SimpleReceiver(line, pos);
        const bool growth_only =
            std::string(tok) == "push_back" || std::string(tok) == "emplace_back";
        if (growth_only && HasPriorReserve(func, recv, li, pos)) continue;
        std::string what = recv.empty() ? std::string(tok)
                                        : recv + "." + tok;
        Emit(f, li, "hot-alloc",
             "'" + what + "' grows a container in hot code" +
                 (growth_only ? " without a prior reserve on '" + recv + "'"
                              : "; move it into a NMCDR_COLD helper or "
                                "reuse caller-owned scratch"),
             sink);
      }
    }
    // std::string construction (temporaries, sized/copied locals,
    // to_string).
    for (size_t pos = FindToken(line, "string", start); in_window(pos);
         pos = FindToken(line, "string", pos + 1)) {
      if (pos < 5 || line.compare(pos - 5, 5, "std::") != 0) continue;
      size_t p = pos + 6;
      while (p < line.size() &&
             std::isspace(static_cast<unsigned char>(line[p])) != 0) {
        ++p;
      }
      if (p < line.size() && line[p] == '(') {
        Emit(f, li, "hot-alloc", "std::string construction in hot code",
             sink);
        continue;
      }
      size_t q = p;
      while (q < line.size() && IsWordChar(line[q])) ++q;
      if (q == p) continue;  // reference, template argument, etc.
      size_t after = q;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0) {
        ++after;
      }
      if (after < line.size() &&
          (line[after] == '(' ||
           (line[after] == '=' &&
            (after + 1 >= line.size() || line[after + 1] != '=')))) {
        Emit(f, li, "hot-alloc", "std::string construction in hot code",
             sink);
      }
    }
    for (size_t pos = FindToken(line, "to_string", start); in_window(pos);
         pos = FindToken(line, "to_string", pos + 1)) {
      Emit(f, li, "hot-alloc", "std::to_string allocates in hot code", sink);
    }
    // Sized std::vector construction (`std::vector<T> v(n)`).
    for (size_t pos = FindToken(line, "vector", start); in_window(pos);
         pos = FindToken(line, "vector", pos + 1)) {
      if (pos < 5 || line.compare(pos - 5, 5, "std::") != 0) continue;
      if (!LockArgs(JoinedFrom(f, li, pos), true).empty()) {
        Emit(f, li, "hot-alloc",
             "sized std::vector construction in hot code; reuse "
             "caller-owned scratch",
             sink);
      }
    }
    // [throw-hot]: throws and always-armed checks.
    for (size_t pos = FindToken(line, "throw", start); in_window(pos);
         pos = FindToken(line, "throw", pos + 1)) {
      Emit(f, li, "throw-hot", "throw in hot code", sink);
    }
    for (size_t ci = start; ci < limit; ++ci) {
      if (!IsWordChar(line[ci]) || (ci > 0 && IsWordChar(line[ci - 1]))) {
        continue;
      }
      size_t q = ci;
      while (q < line.size() && IsWordChar(line[q])) ++q;
      const std::string word = line.substr(ci, q - ci);
      if (word.starts_with("NMCDR_CHECK")) {
        Emit(f, li, "throw-hot",
             word + " aborts with formatting in hot code; use NMCDR_DCHECK*",
             sink);
      }
      ci = q;
    }
  }
}

/// Runs [hot-alloc]/[throw-hot] over every hot function body and every
/// dispatch-lambda body of non-hot functions. src/util/ is exempt.
void CollectHotSites(const HotComputation& hc,
                     std::vector<HotPathSite>* sites) {
  for (const Func& func : hc.model.funcs) {
    if (InUtil(func.file->path) || hc.cold.count(func.key) != 0) continue;
    const auto it = hc.chain.find(func.key);
    if (it != hc.chain.end()) {
      HotSink sink{&func.key, &it->second, sites};
      ScanHotRegion(*func.file, func, func.body_begin, func.body_begin_col,
                    func.body_end, std::string::npos, sink);
      continue;
    }
    const std::string chain = "pool dispatch in " + func.key;
    for (const Range& r : func.dispatch_bodies) {
      HotSink sink{&func.key, &chain, sites};
      ScanHotRegion(*func.file, func, r.begin_line, r.begin_pos, r.end_line,
                    r.end_pos, sink);
    }
  }
}

// ---------------------------------------------------------------------------
// [arg-copy]
// ---------------------------------------------------------------------------

/// Heavy nominal value types beyond the template containers; identifier
/// suffixes Snapshot / Layout also count (ModelSnapshot, ShardLayout).
bool IsHeavyTypeToken(const std::string& tok) {
  static const std::set<std::string> kHeavy = {
      "Matrix", "RecRequest", "Recommendation", "AdmissionTicket",
      "ClusterRequest", "ClusterResponse", "FrozenPredictionHead",
      "FrozenDomainState", "Pending", "ServerStats", "vector", "string"};
  if (kHeavy.count(tok) != 0) return true;
  return (tok.size() > 8 && tok.ends_with("Snapshot")) ||
         (tok.size() > 6 && tok.ends_with("Layout"));
}

/// Splits the head's top-level parameter list: the first '(' outside any
/// template argument list opens it.
std::vector<std::string> HeadParams(const std::string& head) {
  int angle = 0;
  size_t open = std::string::npos;
  for (size_t i = 0; i < head.size(); ++i) {
    const char c = head[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '(' && angle == 0) {
      open = i;
      break;
    }
  }
  if (open == std::string::npos) return {};
  std::vector<std::string> params;
  std::string cur;
  int depth = 1;
  for (size_t i = open + 1; i < head.size() && depth > 0; ++i) {
    const char c = head[i];
    if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == '>' || c == ']' || c == '}') {
      if (--depth == 0) break;
    }
    if (c == ',' && depth == 1) {
      params.push_back(Trimmed(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!Trimmed(cur).empty()) params.push_back(Trimmed(cur));
  return params;
}

void CheckArgCopy(const Model& model, std::vector<Diagnostic>* out) {
  for (const Func& func : model.funcs) {
    const SourceFile& f = *func.file;
    // Reconstruct the declaration head: head_line up to the body's '{'.
    std::string head;
    for (size_t li = func.head_line;
         li <= func.body_begin && li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      head += (li == func.body_begin ? line.substr(0, func.body_begin_col)
                                     : line) +
              " ";
    }
    for (const std::string& raw : HeadParams(head)) {
      std::string param = raw;
      // Strip a default argument.
      int depth = 0;
      for (size_t i = 0; i < param.size(); ++i) {
        const char c = param[i];
        if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
        if (c == '=' && depth == 0) {
          param = Trimmed(param.substr(0, i));
          break;
        }
      }
      if (param.empty() || param == "void") continue;
      if (param.find('&') != std::string::npos ||
          param.find('*') != std::string::npos ||
          param.find("...") != std::string::npos) {
        continue;
      }
      // Indirection wrappers are cheap to copy/move by design.
      if (HasToken(param, "shared_ptr") || HasToken(param, "unique_ptr") ||
          HasToken(param, "span") || HasToken(param, "function") ||
          HasToken(param, "initializer_list")) {
        continue;
      }
      // Tokenize: heavy type present? Parameter name = last identifier.
      bool heavy = false;
      std::string name;
      for (size_t ci = 0; ci < param.size(); ++ci) {
        if (!IsWordChar(param[ci]) ||
            (ci > 0 && IsWordChar(param[ci - 1]))) {
          continue;
        }
        size_t q = ci;
        while (q < param.size() && IsWordChar(param[q])) ++q;
        const std::string tok = param.substr(ci, q - ci);
        if (IsHeavyTypeToken(tok)) heavy = true;
        name = tok;
        ci = q;
      }
      if (!heavy) continue;
      // Sink parameters (moved in the init list or body) stay legal.
      if (!name.empty()) {
        const std::string needle = "std::move(" + name + ")";
        bool moved = head.find(needle) != std::string::npos;
        for (size_t li = func.body_begin;
             !moved && li <= func.body_end && li < f.code.size(); ++li) {
          moved = f.code[li].find(needle) != std::string::npos;
        }
        if (moved) continue;
      }
      Add(f, func.head_line, "arg-copy",
          "parameter '" + param + "' of " + func.key +
              " passes a heavy type by value; take const&/span, or "
              "std::move it into a member (sink)",
          out);
    }
  }
}

// ---------------------------------------------------------------------------
// [reserve-before-growth]
// ---------------------------------------------------------------------------

void CheckReserveBeforeGrowth(const Model& model,
                              std::vector<Diagnostic>* out) {
  for (const Func& func : model.funcs) {
    const SourceFile& f = *func.file;
    int brace_depth = 0;
    std::vector<int> loops;    // brace depth at entry of each for body
    int paren_depth = 0;
    bool pending_for = false;  // inside the `for (...)` header parens
    bool await_body = false;   // header closed; next token opens the body
    int stmt_loops = 0;        // braceless for bodies, active until ';'
    for (size_t li = func.body_begin;
         li <= func.body_end && li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      if (Trimmed(line).starts_with("#")) continue;
      const size_t start = li == func.body_begin ? func.body_begin_col : 0;
      for (size_t ci = start; ci < line.size(); ++ci) {
        const char c = line[ci];
        if (await_body && std::isspace(static_cast<unsigned char>(c)) == 0) {
          await_body = false;
          if (c == '{') {
            loops.push_back(brace_depth);
            ++brace_depth;
            continue;
          }
          ++stmt_loops;  // braceless body: one statement
        }
        if (IsWordChar(c) && (ci == start || !IsWordChar(line[ci - 1]))) {
          size_t q = ci;
          while (q < line.size() && IsWordChar(line[q])) ++q;
          const std::string word = line.substr(ci, q - ci);
          if (word == "for" && paren_depth == 0) {
            pending_for = true;
          } else if ((word == "push_back" || word == "emplace_back") &&
                     (loops.size() + static_cast<size_t>(stmt_loops)) > 0) {
            size_t after = q;
            while (after < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[after])) !=
                       0) {
              ++after;
            }
            if (after < line.size() && line[after] == '(' &&
                IsWaitCall(line, ci)) {
              const std::string recv = SimpleReceiver(line, ci);
              if (!recv.empty() && !HasPriorReserve(func, recv, li, ci) &&
                  !IsDequeReceiver(f, recv)) {
                Add(f, li, "reserve-before-growth",
                    "'" + recv + "." + word +
                        "' inside a for loop without a prior '" + recv +
                        ".reserve(...)' in " + func.key +
                        "; reserve the bound before the loop",
                    out);
              }
            }
          }
          ci = q - 1;
          continue;
        }
        switch (c) {
          case '(':
            ++paren_depth;
            break;
          case ')':
            if (paren_depth > 0 && --paren_depth == 0 && pending_for) {
              pending_for = false;
              await_body = true;
            }
            break;
          case '{':
            ++brace_depth;
            break;
          case '}':
            --brace_depth;
            while (!loops.empty() && loops.back() >= brace_depth) {
              loops.pop_back();
            }
            break;
          case ';':
            if (paren_depth == 0) stmt_loops = 0;
            break;
          default:
            break;
        }
      }
    }
  }
}

}  // namespace

void CheckHotPath(const std::vector<SourceFile>& files,
                  std::vector<Diagnostic>* out) {
  const HotComputation hc = ComputeHot(files, out);
  std::vector<HotPathSite> sites;
  CollectHotSites(hc, &sites);
  for (const HotPathSite& s : sites) {
    Diagnostic d;
    d.file = s.file;
    d.line = s.line;
    d.rule = s.rule;
    d.message = s.message;
    out->push_back(std::move(d));
  }
  CheckArgCopy(hc.model, out);
  CheckReserveBeforeGrowth(hc.model, out);
}

}  // namespace internal

HotPathGraph BuildHotPathGraph(const std::vector<SourceFile>& files) {
  using internal::CallEvent;
  using internal::Func;
  using internal::Range;
  std::vector<Diagnostic> sink;  // malformed-annotation diags: lint's job
  const internal::HotComputation hc = internal::ComputeHot(files, &sink);

  HotPathGraph graph;
  std::set<std::string> node_keys;
  const auto add_node = [&](const std::string& key, const std::string& why,
                            bool root, const Func* def) {
    if (!node_keys.insert(key).second) return;
    HotPathNode node;
    node.key = key;
    node.why = why;
    node.root = root;
    if (def != nullptr) {
      node.file = def->file->path;
      node.line = static_cast<int>(def->head_line) + 1;
    }
    graph.nodes.push_back(std::move(node));
  };
  const auto first_def = [&](const std::string& key) -> const Func* {
    const auto it = hc.model.func_by_key.find(key);
    if (it == hc.model.func_by_key.end() || it->second.empty()) {
      return nullptr;
    }
    return &hc.model.funcs[it->second.front()];
  };
  // Hot functions, roots first so their `root` flag wins.
  for (const auto& [key, why] : hc.root_why) {
    add_node(key, why + "; " + hc.chain.at(key), true, first_def(key));
  }
  for (const auto& [key, chain] : hc.chain) {
    add_node(key, chain, false, first_def(key));
  }
  // Dispatching functions appear as roots even when not hot themselves
  // (their lambda bodies are).
  std::set<std::string> edge_seen;
  for (const Func& func : hc.model.funcs) {
    if (internal::InUtil(func.file->path) ||
        hc.cold.count(func.key) != 0) {
      continue;
    }
    const bool func_hot = hc.chain.count(func.key) != 0;
    if (!func_hot && !func.dispatch_bodies.empty()) {
      add_node(func.key, "ThreadPool dispatch site", true, &func);
    }
    for (const CallEvent& c : func.calls) {
      if (c.resolved.empty() || hc.chain.count(c.resolved) == 0) continue;
      if (!func_hot && !c.in_dispatch) continue;
      if (edge_seen.insert(func.key + "\n" + c.resolved).second) {
        graph.edges.push_back({func.key, c.resolved});
      }
    }
  }
  internal::CollectHotSites(hc, &graph.sites);
  return graph;
}

std::string HotPathDot(const HotPathGraph& graph) {
  std::map<std::string, int> site_count;
  for (const HotPathSite& s : graph.sites) ++site_count[s.func];
  std::string dot = "digraph hot_path {\n  node [shape=box];\n";
  for (const HotPathNode& n : graph.nodes) {
    const int sites = site_count.count(n.key) ? site_count[n.key] : 0;
    std::string label = DotEscape(n.key);
    if (sites > 0) {
      label += "\\n" + std::to_string(sites) + " finding" +
               (sites == 1 ? "" : "s");
    }
    dot += "  \"" + DotEscape(n.key) + "\" [label=\"" + label + "\"";
    if (n.root) dot += ", peripheries=2";
    if (sites > 0) dot += ", color=red";
    dot += "];\n";
  }
  for (const HotPathEdge& e : graph.edges) {
    dot += "  \"" + DotEscape(e.from) + "\" -> \"" + DotEscape(e.to) +
           "\";\n";
  }
  dot += "}\n";
  return dot;
}

std::string HotPathText(const HotPathGraph& graph) {
  std::string text = "hot-path call tree: " +
                     std::to_string(graph.nodes.size()) + " hot functions, " +
                     std::to_string(graph.edges.size()) + " edges, " +
                     std::to_string(graph.sites.size()) + " findings\n";
  for (const HotPathNode& n : graph.nodes) {
    text += std::string(n.root ? "root " : "hot  ") + n.key;
    if (!n.file.empty()) {
      text += " (" + n.file + ":" + std::to_string(n.line) + ")";
    }
    text += "\n  via: " + n.why + "\n";
    for (const HotPathSite& s : graph.sites) {
      if (s.func != n.key) continue;
      text += "  [" + s.rule + "] " + s.file + ":" + std::to_string(s.line) +
              ": " + s.message + "\n";
    }
  }
  for (const HotPathEdge& e : graph.edges) {
    text += "edge " + e.from + " -> " + e.to + "\n";
  }
  return text;
}

}  // namespace lint
}  // namespace nmcdr
