// nmcdr_hotpath: report mode for the static hot-path cost analyzer. Runs
// the four hot-path passes over src/ and prints the annotated hot call
// tree — every NMCDR_HOT-reachable function with its reachability
// provenance and any allocation/throw sites — so the steady-state
// allocation surface is an inspectable artifact instead of only a
// pass/fail bit.
//
//   nmcdr_hotpath [--dot=FILE] [--text=FILE] [repo_root]
//
// Exit codes: 0 = clean, 1 = hot-path findings, 2 = usage / IO error.
// CI runs this after the tree-wide lint and uploads the DOT + text tree
// renderings as build artifacts.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "nmcdr_hotpath: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dot_path;
  std::string text_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.starts_with("--dot=")) {
      dot_path = arg.substr(6);
    } else if (arg.starts_with("--text=")) {
      text_path = arg.substr(7);
    } else if (arg.starts_with("--")) {
      std::cerr << "nmcdr_hotpath: unknown flag: " << arg << "\n"
                << "usage: nmcdr_hotpath [--dot=FILE] [--text=FILE] "
                   "[repo_root]\n";
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() > 1) {
    std::cerr << "nmcdr_hotpath: expected at most one repo_root\n";
    return 2;
  }
  const fs::path root =
      positional.empty() ? fs::path(".") : fs::path(positional[0]);
  const fs::path src = root / "src";
  if (!fs::exists(src)) {
    std::cerr << "nmcdr_hotpath: no such directory: " << src << "\n";
    return 2;
  }

  std::vector<nmcdr::lint::SourceFile> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) {
      std::cerr << "nmcdr_hotpath: cannot read " << entry.path() << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string rel = fs::relative(entry.path(), root).generic_string();
    files.push_back(nmcdr::lint::Preprocess(rel, buffer.str()));
  }
  std::sort(files.begin(), files.end(),
            [](const nmcdr::lint::SourceFile& a,
               const nmcdr::lint::SourceFile& b) { return a.path < b.path; });

  const nmcdr::lint::HotPathGraph graph =
      nmcdr::lint::BuildHotPathGraph(files);
  const std::string text = nmcdr::lint::HotPathText(graph);
  std::cout << text;
  if (!text_path.empty() && !WriteFileOrDie(text_path, text)) return 2;
  if (!dot_path.empty() &&
      !WriteFileOrDie(dot_path, nmcdr::lint::HotPathDot(graph))) {
    return 2;
  }

  nmcdr::lint::LintOptions options;
  options.hotpath = true;
  std::vector<nmcdr::lint::Diagnostic> findings;
  for (const nmcdr::lint::Diagnostic& d :
       nmcdr::lint::LintFileSet(files, options)) {
    // Report mode is about the hot-path surface; the always-on rules
    // already gate CI through lint_test.
    for (const nmcdr::lint::RuleInfo& r : nmcdr::lint::ListRules()) {
      if (r.id == d.rule && r.hotpath_only) {
        findings.push_back(d);
        break;
      }
    }
  }
  for (const nmcdr::lint::Diagnostic& d : findings) {
    std::cout << d.ToString() << "\n";
  }
  std::cout << "nmcdr_hotpath: " << findings.size() << " hot-path finding"
            << (findings.size() == 1 ? "" : "s") << " over " << files.size()
            << " src files\n";
  return findings.empty() ? 0 : 1;
}
