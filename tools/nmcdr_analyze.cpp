// nmcdr_analyze: semantic tensor-program verifier for the whole model zoo.
//
// Symbolically executes every registered model's computation graph — one
// TrainStep and one Score call per (model, scenario preset) — on meta
// tensors (shape inference only, no FLOPs; src/autograd/meta.h) and
// reports shape contradictions with op-provenance chains, ops without a
// registered shape rule, ops without finite-difference backward coverage,
// and per-model parameter/activation footprints. Exits non-zero on any
// finding, so it gates CI (registered as the `analyze_test` CTest).
//
//   nmcdr_analyze [--scale=smoke|small|full] [--gradcheck] [--programs]
//                 [--no-fusion] [--snapshot=PATH] [--report=PATH]
//                 [--metrics-out=PATH]
//
//   --scale      scenario preset scale (default smoke; analysis cost is
//                shape-only, so even full is cheap)
//   --gradcheck  additionally run the finite-difference gradient checks of
//                the op suite (real kernels; still fast), once per kernel
//                backend (serial and parallel)
//   --programs   additionally audit the graph-program compiler
//                (src/program): per (model, scenario), record one real
//                training step, replay a second, and require the compiled
//                program to match an eager twin bitwise (losses) and
//                structurally (op counts / output elements); reports
//                fusion groups and arena reserved/peak bytes
//   --no-fusion  skip the program audit even with --programs (also
//                honored via NMCDR_FUSION=0 in the environment)
//   --snapshot   validate a frozen NMCDRSV1 snapshot file's scoring chain
//                against the same shape rules
//   --report     also write the report text to this path
//   --metrics-out  write the observability dump (NMCDR_OBS_V1 JSON,
//                src/obs/export.h) after analysis — with --gradcheck the
//                kernel table shows exactly which kernels the
//                finite-difference suite exercised

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "program/program.h"
#include "serving/model_snapshot.h"
#include "tensor/backend.h"
#include "util/flags.h"
#include "verify/analyzer.h"
#include "verify/op_suite.h"

int main(int argc, char** argv) {
  nmcdr::FlagParser flags(argc, argv);
  const std::string scale_name = flags.GetString("scale", "smoke");
  nmcdr::BenchScale scale = nmcdr::BenchScale::kSmoke;
  if (scale_name == "small") {
    scale = nmcdr::BenchScale::kSmall;
  } else if (scale_name == "full") {
    scale = nmcdr::BenchScale::kFull;
  } else if (scale_name != "smoke") {
    std::cerr << "nmcdr_analyze: unknown --scale '" << scale_name
              << "' (want smoke|small|full)\n";
    return 2;
  }

  nmcdr::verify::AnalyzeReport report =
      nmcdr::verify::AnalyzeAllModels(scale);
  std::string text = report.ToString();
  int findings = report.finding_count();

  if (flags.GetBool("programs", false)) {
    if (flags.GetBool("no-fusion", false) ||
        !nmcdr::prog::FusionEnvEnabled()) {
      text += "\nprogram audit: skipped (fusion disabled)\n";
    } else {
      const nmcdr::verify::ProgramReport programs =
          nmcdr::verify::AuditPrograms(scale);
      text += "\n" + programs.ToString();
      findings += programs.finding_count();
    }
  }

  if (flags.GetBool("gradcheck", false)) {
    // Every backward pass must verify under BOTH kernel backends: the
    // backends are bit-exact by contract, so any divergence here is a
    // backend bug, not a gradient bug.
    const nmcdr::KernelBackend* backends[] = {
        &nmcdr::SerialKernelBackend(), &nmcdr::ParallelKernelBackend()};
    for (const nmcdr::KernelBackend* backend : backends) {
      const std::vector<nmcdr::verify::GradCheckIssue> issues =
          nmcdr::verify::RunAllGradChecks(backend);
      text += "\ngradcheck[" + std::string(backend->name()) + "]: " +
              std::to_string(nmcdr::verify::OpSuite().size()) + " cases, " +
              std::to_string(issues.size()) + " failures\n";
      for (const nmcdr::verify::GradCheckIssue& i : issues) {
        text += "  [gradcheck " + std::string(backend->name()) + "] " +
                i.case_name + ": " + i.detail + "\n";
      }
      findings += static_cast<int>(issues.size());
    }
  }

  const std::string snapshot_path = flags.GetString("snapshot");
  if (!snapshot_path.empty()) {
    nmcdr::ModelSnapshot snapshot;
    if (!nmcdr::ModelSnapshot::Load(snapshot_path, &snapshot)) {
      text += "\nsnapshot " + snapshot_path + ": failed to load\n";
      ++findings;
    } else {
      const std::vector<nmcdr::verify::Finding> snap_findings =
          nmcdr::verify::VerifySnapshotShapes(snapshot);
      text += "\nsnapshot " + snapshot_path + ": " +
              std::to_string(snapshot.num_domains()) + " domains, " +
              std::to_string(snap_findings.size()) + " shape findings\n";
      for (const nmcdr::verify::Finding& f : snap_findings) {
        text += "  " + f.ToString() + "\n";
      }
      findings += static_cast<int>(snap_findings.size());
    }
  }

  std::cout << text;
  const std::string metrics_path = flags.GetString("metrics-out");
  if (!metrics_path.empty() && !nmcdr::obs::WriteJsonFile(metrics_path)) {
    return 2;
  }
  const std::string report_path = flags.GetString("report");
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::cerr << "nmcdr_analyze: cannot write " << report_path << "\n";
      return 2;
    }
    out << text;
  }
  return findings == 0 ? 0 : 1;
}
