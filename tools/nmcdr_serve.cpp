// nmcdr_serve — end-to-end serving demo: train NMCDR on a synthetic
// two-domain scenario, freeze it into a snapshot file, reload the file,
// and serve a concurrent request mix through the InferenceServer.
//
//   nmcdr_serve [--scenario loan-fund] [--scale smoke|small|full]
//               [--steps 600] [--dim 16] [--seed 7]
//               [--snapshot model.snapshot] [--threads 4] [--batch 8]
//               [--requests 400] [--k 10] [--mode exact|fast]
//               [--metrics-out metrics.json] [--profile]
//
// The tool prints the engine's usage counters and the server's latency /
// throughput stats, and leaves the snapshot file on disk so a later run
// can be pointed at it (skipping training) with --load-only.
//
// --threads N sizes both the shared kernel pool (training + batched
// scoring; defaults to NMCDR_THREADS or all cores) and the server's
// concurrent drainer limit.
//
// --metrics-out PATH writes the full observability dump (schema
// NMCDR_OBS_V1, src/obs/export.h): trainer epoch spans, per-kernel call
// counts + FLOP estimates, scoring counters, and the serving latency
// histogram with p50/p95/p99 (the server is bound to the global registry
// here). --profile additionally enables per-op / per-kernel wall-clock
// timing for this run.

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/nmcdr_model.h"
#include "data/presets.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serving/inference_server.h"
#include "serving/model_snapshot.h"
#include "serving/score_engine.h"
#include "train/experiment.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

BenchScale ParseScale(const std::string& s) {
  if (s == "smoke") return BenchScale::kSmoke;
  if (s == "full") return BenchScale::kFull;
  return BenchScale::kSmall;
}

bool PresetByName(const std::string& name, BenchScale scale,
                  SyntheticScenarioSpec* spec) {
  for (const SyntheticScenarioSpec& candidate : AllScenarioSpecs(scale)) {
    std::string key = candidate.name;
    for (char& c : key) c = c == ' ' ? '-' : static_cast<char>(tolower(c));
    if (key == name) {
      *spec = candidate;
      return true;
    }
  }
  return false;
}

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("profile", false)) obs::SetProfilingEnabled(true);
  const std::string metrics_out = flags.GetString("metrics-out", "");
  if (flags.Has("threads")) {
    ThreadPool::SetSharedThreads(flags.GetInt("threads", 0));
  }
  const std::string snapshot_path =
      flags.GetString("snapshot", "model.snapshot");
  ModelSnapshot snapshot;

  if (flags.GetBool("load-only", false)) {
    if (!ModelSnapshot::Load(snapshot_path, &snapshot)) return 1;
    std::printf("loaded %s (%d domains, %d persons)\n", snapshot_path.c_str(),
                snapshot.num_domains(), snapshot.num_persons());
  } else {
    const BenchScale scale = ParseScale(flags.GetString("scale", "smoke"));
    SyntheticScenarioSpec spec;
    if (!PresetByName(flags.GetString("scenario", "loan-fund"), scale,
                      &spec)) {
      std::fprintf(stderr, "unknown scenario (try loan-fund, music-movie)\n");
      return 2;
    }
    ExperimentData data(GenerateScenario(spec), /*seed=*/17);
    NmcdrConfig config;
    config.hidden_dim = flags.GetInt("dim", 16);
    NmcdrModel model(data.View(), config,
                     static_cast<uint64_t>(flags.GetInt("seed", 7)), 1e-3f);
    TrainConfig train;
    train.min_total_steps = flags.GetInt("steps", 600);
    Trainer trainer(data.View(), train);
    const TrainSummary summary = trainer.Train(&model);
    std::printf("trained %s: %d epochs, %.1fs, final loss %.4f\n",
                spec.name.c_str(), summary.epochs_run, summary.train_seconds,
                summary.final_loss);

    if (!ModelSnapshot::FreezePair(&model, data.scenario(), &snapshot)) {
      return 1;
    }
    if (!snapshot.Save(snapshot_path)) return 1;
    // Serve from the reloaded file, proving the on-disk snapshot is the
    // deployable artifact (Save/Load round-trips bit-exactly).
    ModelSnapshot reloaded;
    if (!ModelSnapshot::Load(snapshot_path, &reloaded)) return 1;
    if (!snapshot.Equals(reloaded)) {
      std::fprintf(stderr, "snapshot round-trip mismatch\n");
      return 1;
    }
    snapshot = std::move(reloaded);
    std::printf("froze + saved %s\n", snapshot_path.c_str());
  }

  ScoreEngine::Options engine_options;
  engine_options.mode = flags.GetString("mode", "fast") == "exact"
                            ? ScoreEngine::Mode::kExact
                            : ScoreEngine::Mode::kFast;
  ScoreEngine engine(&snapshot, engine_options);

  InferenceServer::Options server_options;
  server_options.num_threads = flags.GetInt("threads", 4);
  server_options.max_batch = flags.GetInt("batch", 8);
  // Bind the server to the global registry so its serving.* metrics land
  // in the --metrics-out dump alongside the trainer and kernel tables.
  server_options.metrics = &obs::MetricsRegistry::Global();
  InferenceServer server(&engine, server_options);

  // Mixed request stream: same-domain traffic for both domains plus a
  // cross-domain slice (domain-1 users asking for domain-0 items, served
  // cold-start when the identity link is unknown).
  const int num_requests = flags.GetInt("requests", 400);
  const int k = flags.GetInt("k", 10);
  std::vector<std::future<Recommendation>> futures;
  futures.reserve(num_requests);
  for (int i = 0; i < num_requests; ++i) {
    RecRequest request;
    if (i % 4 == 3 && snapshot.num_domains() >= 2) {
      request.target_domain = 0;
      request.user_domain = 1;
    } else {
      request.target_domain = request.user_domain =
          i % snapshot.num_domains();
    }
    request.user = i % snapshot.domain(request.user_domain).num_users();
    request.k = k;
    futures.push_back(server.Submit(request));
  }
  int64_t cold = 0;
  for (auto& future : futures) {
    if (future.get().cold_start) ++cold;
  }
  server.Stop();

  const ScoreEngine::Counters counters = engine.counters();
  std::printf("\nserved %d top-%d requests (%lld cold-start)\n", num_requests,
              k, static_cast<long long>(cold));
  std::printf("engine: %lld requests, %lld pairs scored\n",
              static_cast<long long>(counters.requests),
              static_cast<long long>(counters.pairs_scored));
  std::printf("%s", server.stats().ToString().c_str());
  if (!metrics_out.empty()) {
    if (!obs::WriteJsonFile(metrics_out)) return 1;
    std::printf("wrote metrics dump to %s\n", metrics_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) { return nmcdr::Run(argc, argv); }
