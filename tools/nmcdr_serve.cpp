// nmcdr_serve — end-to-end serving demo: train NMCDR on a synthetic
// two-domain scenario, freeze it into a snapshot file, reload the file,
// and serve a concurrent request mix through the InferenceServer.
//
//   nmcdr_serve [--scenario loan-fund] [--scale smoke|small|full]
//               [--steps 600] [--dim 16] [--seed 7]
//               [--snapshot model.snapshot] [--threads 4] [--batch 8]
//               [--requests 400] [--k 10] [--mode exact|fast|quantized]
//               [--backend serial|vector|parallel]
//               [--shards N] [--layout layout.json]
//               [--metrics-out metrics.json] [--profile]
//
// The tool prints the engine's usage counters and the server's latency /
// throughput stats, and leaves the snapshot file on disk so a later run
// can be pointed at it (skipping training) with --load-only.
//
// --threads N sizes both the shared kernel pool (training + batched
// scoring; defaults to NMCDR_THREADS or all cores) and the server's
// concurrent drainer limit.
//
// --backend pins the process-default kernel backend (same knob as
// NMCDR_BACKEND, which it overrides): `serial` is the bit-exact
// reference, `vector` the register-blocked SIMD kernels, `parallel`
// (default) the pool-sharded tiles over the vector cores. Results are
// bit-identical across all three by the backend contract.
//
// --mode quantized serves the per-row int8 item tables
// (serving/quantized_snapshot.h): the tool quantizes at freeze, saves the
// artifact next to the snapshot (<snapshot>.quant), reloads it, and
// serves from the reloaded artifact — the full deployment pipeline.
// Ranking agreement vs exact is reported by bench_quant and gated in CI.
//
// --shards N serves through the sharded cluster runtime instead of the
// monolithic InferenceServer: the snapshot is partitioned by a uniform
// ShardLayout into N shards, published through a SnapshotRegistry, and
// the request mix is driven through the ClusterServer's admission queue
// (every 4th request in the batch class, the rest interactive).
// --layout PATH loads a declarative NMCDR_SHARD_LAYOUT_V1 JSON instead
// of the uniform split; it must Validate against the snapshot.
//
// --metrics-out PATH writes the full observability dump (schema
// NMCDR_OBS_V1, src/obs/export.h): trainer epoch spans, per-kernel call
// counts + FLOP estimates, scoring counters, and the serving latency
// histogram with p50/p95/p99 (the server is bound to the global registry
// here; the cluster path lands its cluster.* metrics the same way). The
// dump is flushed on EVERY exit path, including early failures, so a
// crashed run still leaves its partial metrics behind for diagnosis.
// --profile additionally enables per-op / per-kernel wall-clock timing
// for this run.

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/nmcdr_model.h"
#include "data/presets.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serving/cluster/cluster_server.h"
#include "serving/cluster/shard_layout.h"
#include "serving/cluster/sharded_snapshot.h"
#include "serving/inference_server.h"
#include "serving/model_snapshot.h"
#include "serving/quantized_snapshot.h"
#include "serving/score_engine.h"
#include "tensor/backend.h"
#include "train/experiment.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

BenchScale ParseScale(const std::string& s) {
  if (s == "smoke") return BenchScale::kSmoke;
  if (s == "full") return BenchScale::kFull;
  return BenchScale::kSmall;
}

/// Flushes the --metrics-out dump on every exit path. The early `return
/// 1` failure paths (unreadable snapshot, freeze/save errors) used to
/// skip the flush, losing exactly the metrics needed to diagnose the
/// failure; scope-exit semantics make skipping impossible. Call Flush()
/// on the success path to surface write errors in the exit code; the
/// destructor's flush is the best-effort backstop for everything else.
class MetricsFlusher {
 public:
  explicit MetricsFlusher(std::string path) : path_(std::move(path)) {}
  ~MetricsFlusher() {
    if (!flushed_) Flush();
  }
  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  bool Flush() {
    flushed_ = true;
    if (path_.empty()) return true;
    if (!obs::WriteJsonFile(path_)) return false;
    std::printf("wrote metrics dump to %s\n", path_.c_str());
    return true;
  }

 private:
  std::string path_;
  bool flushed_ = false;
};

bool PresetByName(const std::string& name, BenchScale scale,
                  SyntheticScenarioSpec* spec) {
  for (const SyntheticScenarioSpec& candidate : AllScenarioSpecs(scale)) {
    std::string key = candidate.name;
    for (char& c : key) c = c == ' ' ? '-' : static_cast<char>(tolower(c));
    if (key == name) {
      *spec = candidate;
      return true;
    }
  }
  return false;
}

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("profile", false)) obs::SetProfilingEnabled(true);
  MetricsFlusher metrics_flusher(flags.GetString("metrics-out", ""));
  if (flags.Has("threads")) {
    ThreadPool::SetSharedThreads(flags.GetInt("threads", 0));
  }
  if (flags.Has("backend")) {
    const std::string backend_name = flags.GetString("backend", "");
    const KernelBackend* backend = BackendByName(backend_name);
    if (backend == nullptr) {
      std::fprintf(stderr,
                   "--backend %s: unknown (serial, vector, parallel)\n",
                   backend_name.c_str());
      return 2;
    }
    SetDefaultBackend(backend);
    std::printf("kernel backend: %s\n", backend->name());
  }
  // Flag validation before the (seconds-long) train/freeze work below.
  ScoreEngine::Options engine_options;
  const std::string mode_name = flags.GetString("mode", "fast");
  if (mode_name == "exact") {
    engine_options.mode = ScoreEngine::Mode::kExact;
  } else if (mode_name == "quantized") {
    engine_options.mode = ScoreEngine::Mode::kQuantized;
  } else if (mode_name == "fast") {
    engine_options.mode = ScoreEngine::Mode::kFast;
  } else {
    std::fprintf(stderr, "--mode %s: unknown (exact, fast, quantized)\n",
                 mode_name.c_str());
    return 2;
  }
  const std::string snapshot_path =
      flags.GetString("snapshot", "model.snapshot");
  ModelSnapshot snapshot;

  if (flags.GetBool("load-only", false)) {
    if (!ModelSnapshot::Load(snapshot_path, &snapshot)) return 1;
    std::printf("loaded %s (%d domains, %d persons)\n", snapshot_path.c_str(),
                snapshot.num_domains(), snapshot.num_persons());
  } else {
    const BenchScale scale = ParseScale(flags.GetString("scale", "smoke"));
    SyntheticScenarioSpec spec;
    if (!PresetByName(flags.GetString("scenario", "loan-fund"), scale,
                      &spec)) {
      std::fprintf(stderr, "unknown scenario (try loan-fund, music-movie)\n");
      return 2;
    }
    ExperimentData data(GenerateScenario(spec), /*seed=*/17);
    NmcdrConfig config;
    config.hidden_dim = flags.GetInt("dim", 16);
    NmcdrModel model(data.View(), config,
                     static_cast<uint64_t>(flags.GetInt("seed", 7)), 1e-3f);
    TrainConfig train;
    train.min_total_steps = flags.GetInt("steps", 600);
    Trainer trainer(data.View(), train);
    const TrainSummary summary = trainer.Train(&model);
    std::printf("trained %s: %d epochs, %.1fs, final loss %.4f\n",
                spec.name.c_str(), summary.epochs_run, summary.train_seconds,
                summary.final_loss);

    if (!ModelSnapshot::FreezePair(&model, data.scenario(), &snapshot)) {
      return 1;
    }
    if (!snapshot.Save(snapshot_path)) return 1;
    // Serve from the reloaded file, proving the on-disk snapshot is the
    // deployable artifact (Save/Load round-trips bit-exactly).
    ModelSnapshot reloaded;
    if (!ModelSnapshot::Load(snapshot_path, &reloaded)) return 1;
    if (!snapshot.Equals(reloaded)) {
      std::fprintf(stderr, "snapshot round-trip mismatch\n");
      return 1;
    }
    snapshot = std::move(reloaded);
    std::printf("froze + saved %s\n", snapshot_path.c_str());
  }

  // Sharded cluster path: --shards and/or --layout route the same mixed
  // request stream through ShardedSnapshot + SnapshotRegistry +
  // ClusterServer instead of the monolithic engine. Results are
  // bit-exact either way (per-item scores are row-independent); what
  // changes is the execution shape — per-shard fan-out over the shared
  // pool and class-aware admission.
  const int num_shards = flags.GetInt("shards", 0);
  const std::string layout_path = flags.GetString("layout", "");
  if (num_shards > 0 || !layout_path.empty()) {
    cluster::ShardLayout layout;
    std::string error;
    if (!layout_path.empty()) {
      if (!cluster::ShardLayout::Load(layout_path, &layout, &error)) {
        std::fprintf(stderr, "--layout %s: %s\n", layout_path.c_str(),
                     error.c_str());
        return 2;
      }
      if (!layout.Validate(snapshot, &error)) {
        std::fprintf(stderr, "--layout %s does not match the snapshot: %s\n",
                     layout_path.c_str(), error.c_str());
        return 2;
      }
    } else {
      layout = cluster::ShardLayout::Uniform(snapshot, num_shards);
    }
    cluster::ShardedSnapshot::Options sharded_options;
    sharded_options.mode = engine_options.mode;
    const auto sharded = std::make_shared<const cluster::ShardedSnapshot>(
        snapshot, layout, sharded_options);

    cluster::ClusterServer::Options cluster_options;
    cluster_options.num_threads = flags.GetInt("threads", 4);
    cluster_options.max_batch = flags.GetInt("batch", 8);
    cluster_options.metrics = &obs::MetricsRegistry::Global();
    cluster::ClusterServer server(sharded, cluster_options);

    const int num_requests = flags.GetInt("requests", 400);
    const int k = flags.GetInt("k", 10);
    std::vector<std::future<cluster::ClusterResponse>> futures;
    futures.reserve(num_requests);
    for (int i = 0; i < num_requests; ++i) {
      cluster::ClusterRequest request;
      request.cls = i % 4 == 1 ? cluster::RequestClass::kBatch
                               : cluster::RequestClass::kInteractive;
      if (i % 4 == 3 && snapshot.num_domains() >= 2) {
        request.rec.target_domain = 0;
        request.rec.user_domain = 1;
      } else {
        request.rec.target_domain = request.rec.user_domain =
            i % snapshot.num_domains();
      }
      request.rec.user =
          i % snapshot.domain(request.rec.user_domain).num_users();
      request.rec.k = k;
      futures.push_back(server.Submit(std::move(request)));
    }
    int64_t served = 0;
    int64_t cold = 0;
    for (auto& future : futures) {
      const cluster::ClusterResponse response = future.get();
      if (response.status != cluster::ClusterStatus::kOk) continue;
      ++served;
      if (response.rec.cold_start) ++cold;
    }
    server.Stop();
    std::printf(
        "\ncluster: served %lld/%d top-%d requests (%lld cold-start) over "
        "%d shards, snapshot v%lld\n",
        static_cast<long long>(served), num_requests, k,
        static_cast<long long>(cold), layout.num_shards,
        static_cast<long long>(server.last_observed_version()));
    return metrics_flusher.Flush() ? 0 : 1;
  }

  // Quantized mode runs the full artifact pipeline: quantize at freeze,
  // save, reload, verify the round trip bit-exactly, and serve from the
  // reloaded artifact (the three-argument engine constructor).
  std::unique_ptr<ScoreEngine> engine_storage;
  if (engine_options.mode == ScoreEngine::Mode::kQuantized) {
    const std::string quant_path = snapshot_path + ".quant";
    const QuantizedSnapshot quantized = QuantizedSnapshot::Quantize(snapshot);
    if (!quantized.Save(quant_path)) return 1;
    QuantizedSnapshot reloaded;
    std::string error;
    if (!QuantizedSnapshot::Load(quant_path, &reloaded, &error)) {
      std::fprintf(stderr, "reload %s: %s\n", quant_path.c_str(),
                   error.c_str());
      return 1;
    }
    if (!quantized.Equals(reloaded)) {
      std::fprintf(stderr, "quantized artifact round-trip mismatch\n");
      return 1;
    }
    std::printf("quantized + saved %s (int8 item tables, %d domains)\n",
                quant_path.c_str(), reloaded.num_domains());
    engine_storage = std::make_unique<ScoreEngine>(&snapshot, engine_options,
                                                   std::move(reloaded));
  } else {
    engine_storage = std::make_unique<ScoreEngine>(&snapshot, engine_options);
  }
  const ScoreEngine& engine = *engine_storage;

  InferenceServer::Options server_options;
  server_options.num_threads = flags.GetInt("threads", 4);
  server_options.max_batch = flags.GetInt("batch", 8);
  // Bind the server to the global registry so its serving.* metrics land
  // in the --metrics-out dump alongside the trainer and kernel tables.
  server_options.metrics = &obs::MetricsRegistry::Global();
  InferenceServer server(&engine, server_options);

  // Mixed request stream: same-domain traffic for both domains plus a
  // cross-domain slice (domain-1 users asking for domain-0 items, served
  // cold-start when the identity link is unknown).
  const int num_requests = flags.GetInt("requests", 400);
  const int k = flags.GetInt("k", 10);
  std::vector<std::future<Recommendation>> futures;
  futures.reserve(num_requests);
  for (int i = 0; i < num_requests; ++i) {
    RecRequest request;
    if (i % 4 == 3 && snapshot.num_domains() >= 2) {
      request.target_domain = 0;
      request.user_domain = 1;
    } else {
      request.target_domain = request.user_domain =
          i % snapshot.num_domains();
    }
    request.user = i % snapshot.domain(request.user_domain).num_users();
    request.k = k;
    futures.push_back(server.Submit(request));
  }
  int64_t cold = 0;
  for (auto& future : futures) {
    if (future.get().cold_start) ++cold;
  }
  server.Stop();

  const ScoreEngine::Counters counters = engine.counters();
  std::printf("\nserved %d top-%d requests (%lld cold-start)\n", num_requests,
              k, static_cast<long long>(cold));
  std::printf("engine: %lld requests, %lld pairs scored\n",
              static_cast<long long>(counters.requests),
              static_cast<long long>(counters.pairs_scored));
  std::printf("%s", server.stats().ToString().c_str());
  return metrics_flusher.Flush() ? 0 : 1;
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) { return nmcdr::Run(argc, argv); }
