// Workload diagnostics: for each scenario preset, reports the leave-one-out
// ranking quality of three reference policies:
//   random    — the floor,
//   popularity— ranking by train interaction count (no personalization),
//   oracle    — ranking by the generator's ground-truth affinity (ceiling).
// The popularity-to-oracle gap is the headroom personalized models compete
// over; presets are tuned so that gap is wide (DESIGN.md §1).
//
//   ./build/examples/data_diagnostics [smoke|small|full]

#include <cstdio>
#include <cmath>
#include <cstring>

#include "data/presets.h"
#include "eval/evaluator.h"
#include "train/experiment.h"

namespace nmcdr {
namespace {

/// Reference policy wrapped as a RecModel (Score only; TrainStep is a
/// no-op) so it can run through the standard evaluator.
class PolicyModel : public RecModel {
 public:
  using ScoreFn = std::function<float(DomainSide, int user, int item)>;
  PolicyModel(std::string name, ScoreFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  float TrainStep(const LabeledBatch&, const LabeledBatch&) override {
    return 0.f;
  }
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override {
    std::vector<float> out(users.size());
    for (size_t i = 0; i < users.size(); ++i) {
      out[i] = fn_(side, users[i], items[i]);
    }
    return out;
  }
  ag::ParameterStore* params() override { return &store_; }

 private:
  std::string name_;
  ScoreFn fn_;
  ag::ParameterStore store_;
};

void Report(const char* policy, const ScenarioMetrics& m,
            const CdrScenario& s) {
  std::printf("  %-11s %-8s HR@10 %6.2f%%  NDCG@10 %6.2f%%   %-8s HR@10 "
              "%6.2f%%  NDCG@10 %6.2f%%\n",
              policy, s.z.name.c_str(), 100 * m.z.hr, 100 * m.z.ndcg,
              s.zbar.name.c_str(), 100 * m.zbar.hr, 100 * m.zbar.ndcg);
}

void Diagnose(const SyntheticScenarioSpec& spec) {
  SyntheticGroundTruth gt;
  CdrScenario scenario = GenerateScenario(spec, &gt);
  std::printf("%s\n  %s\n  %s\n", scenario.name.c_str(),
              DomainStatsString(scenario.z).c_str(),
              DomainStatsString(scenario.zbar).c_str());
  ExperimentData data(std::move(scenario), /*seed=*/11);
  EvalConfig eval;

  auto evaluate = [&](RecModel* model) {
    return EvaluateScenario(model, data.full_graph_z(), data.full_graph_zbar(),
                            data.split_z(), data.split_zbar(),
                            EvalPhase::kTest, eval);
  };

  Rng rng(3);
  PolicyModel random_policy("random", [&rng](DomainSide, int, int) {
    return static_cast<float>(rng.UniformDouble());
  });
  Report("random", evaluate(&random_policy), data.scenario());

  std::vector<int> pop_z(data.scenario().z.num_items, 0);
  std::vector<int> pop_zbar(data.scenario().zbar.num_items, 0);
  for (const Interaction& e : data.split_z().train) ++pop_z[e.item];
  for (const Interaction& e : data.split_zbar().train) ++pop_zbar[e.item];
  PolicyModel popularity("popularity",
                         [&](DomainSide side, int, int item) {
                           return static_cast<float>(
                               side == DomainSide::kZ ? pop_z[item]
                                                      : pop_zbar[item]);
                         });
  Report("popularity", evaluate(&popularity), data.scenario());

  // Item-item co-occurrence KNN: score(u,v) = sum over the user's train
  // items j of cosine similarity between v's and j's user sets. A strong
  // non-parametric reference for how much collaborative signal the
  // observed interactions carry.
  auto knn_score = [&](const InteractionGraph& g, int user, int item) {
    double score = 0.0;
    const std::vector<int>& item_users = g.ItemNeighbors(item);
    for (int j : g.UserNeighbors(user)) {
      if (j == item) continue;
      const std::vector<int>& ju = g.ItemNeighbors(j);
      // |intersection| via two-pointer (both sorted).
      size_t a = 0, b = 0;
      int common = 0;
      while (a < item_users.size() && b < ju.size()) {
        if (item_users[a] == ju[b]) { ++common; ++a; ++b; }
        else if (item_users[a] < ju[b]) ++a;
        else ++b;
      }
      const double denom = std::sqrt(double(item_users.size()) * ju.size());
      if (denom > 0) score += common / denom;
    }
    return static_cast<float>(score);
  };
  PolicyModel item_knn("item-knn", [&](DomainSide side, int user, int item) {
    return knn_score(side == DomainSide::kZ ? data.train_graph_z()
                                            : data.train_graph_zbar(),
                     user, item);
  });
  Report("item-knn", evaluate(&item_knn), data.scenario());

  PolicyModel oracle("oracle", [&gt](DomainSide side, int user, int item) {
    return side == DomainSide::kZ ? gt.AffinityZ(user, item)
                                  : gt.AffinityZbar(user, item);
  });
  Report("oracle", evaluate(&oracle), data.scenario());
  std::printf("\n");
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) {
  using namespace nmcdr;
  BenchScale scale = BenchScale::kSmall;
  if (argc > 1) {
    if (std::strcmp(argv[1], "smoke") == 0) scale = BenchScale::kSmoke;
    if (std::strcmp(argv[1], "full") == 0) scale = BenchScale::kFull;
  }
  for (const SyntheticScenarioSpec& spec : AllScenarioSpecs(scale)) {
    Diagnose(spec);
  }
  return 0;
}
