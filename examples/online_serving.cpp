// Online-serving demo (§III.C in miniature): build a two-domain financial
// serving world, train NMCDR offline on the pairwise scenario, and run a
// three-group A/B test — Control (popularity), random, and NMCDR — for a
// few simulated days, reporting the CVR per domain.
//
//   ./build/examples/online_serving

#include <cstdio>
#include <memory>

#include "core/nmcdr_model.h"
#include "serving/ab_test.h"
#include "train/experiment.h"
#include "util/table_printer.h"

int main() {
  using namespace nmcdr;

  // 1. A small Loan/Fund world with a shared person population.
  std::vector<ServingWorld::DomainSpec> specs(2);
  specs[0].data = {"Loan", 0, 50, 6.0, 0.9};
  specs[0].target_base_cvr = 0.10;
  specs[1].data = {"Fund", 0, 35, 4.0, 0.9};
  specs[1].target_base_cvr = 0.06;
  ServingWorld world(specs, /*num_persons=*/900,
                     /*membership_prob=*/{0.85, 0.35},
                     /*latent_dim=*/8, /*preference_sharpness=*/4.5,
                     /*seed=*/5);
  for (int d = 0; d < world.num_domains(); ++d) {
    std::printf("  %s\n", DomainStatsString(world.domain(d)).c_str());
  }

  // 2. Offline training of NMCDR on the pairwise projection.
  ExperimentData data(world.MakePairScenario(0, 1), /*seed=*/7);
  NmcdrConfig config;
  config.hidden_dim = 16;
  auto model = std::make_unique<NmcdrModel>(data.View(), config, 42, 2e-3f);
  TrainConfig train;
  train.min_total_steps = 900;
  train.eval_every = -1;
  train.early_stop_patience = 3;
  Trainer trainer(data.View(), train, &data.full_graph_z(),
                  &data.full_graph_zbar());
  const TrainSummary summary = trainer.Train(model.get());
  std::printf("trained NMCDR for %d epochs (%.1fs)\n", summary.epochs_run,
              summary.train_seconds);

  // 3. Deploy: 3 groups share traffic for 8 days.
  Ranker nmcdr_ranker = [&model](int domain, int user,
                                 const std::vector<int>& candidates) {
    const DomainSide side = domain == 0 ? DomainSide::kZ : DomainSide::kZbar;
    return model->Score(side, std::vector<int>(candidates.size(), user),
                        candidates);
  };
  Rng noise(13);
  Ranker random_ranker = [&noise](int, int, const std::vector<int>& cands) {
    std::vector<float> s(cands.size());
    for (float& v : s) v = static_cast<float>(noise.UniformDouble());
    return s;
  };
  AbTestConfig ab;
  ab.days = 8;
  ab.impressions_per_day_per_domain = 1200;
  const std::vector<GroupResult> results =
      RunAbTest(world,
                {{"Random", random_ranker},
                 {"Control (popularity)", PopularityRanker(world)},
                 {"NMCDR", nmcdr_ranker}},
                ab);

  TablePrinter table;
  table.SetHeader({"Group", "Loan CVR", "Fund CVR"});
  for (const GroupResult& r : results) {
    table.AddRow({r.name, FormatFloat(r.cvr[0] * 100, 2) + "%",
                  FormatFloat(r.cvr[1] * 100, 2) + "%"});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
