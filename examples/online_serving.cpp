// Online-serving demo (§III.C in miniature): build a two-domain financial
// serving world, train NMCDR offline on the pairwise scenario, freeze it
// into a serving snapshot, and deploy the frozen ScoreEngine in a
// three-group A/B test — Control (popularity), random, and NMCDR — then
// hammer the concurrent InferenceServer with a burst of mixed requests
// (including cross-domain cold-start users) and print its stats.
//
//   ./build/examples/online_serving

#include <cstdio>
#include <future>
#include <memory>

#include "core/nmcdr_model.h"
#include "serving/ab_test.h"
#include "serving/inference_server.h"
#include "serving/model_snapshot.h"
#include "serving/score_engine.h"
#include "train/experiment.h"
#include "util/table_printer.h"

int main() {
  using namespace nmcdr;

  // 1. A small Loan/Fund world with a shared person population.
  std::vector<ServingWorld::DomainSpec> specs(2);
  specs[0].data = {"Loan", 0, 50, 6.0, 0.9};
  specs[0].target_base_cvr = 0.10;
  specs[1].data = {"Fund", 0, 35, 4.0, 0.9};
  specs[1].target_base_cvr = 0.06;
  ServingWorld world(specs, /*num_persons=*/900,
                     /*membership_prob=*/{0.85, 0.35},
                     /*latent_dim=*/8, /*preference_sharpness=*/4.5,
                     /*seed=*/5);
  for (int d = 0; d < world.num_domains(); ++d) {
    std::printf("  %s\n", DomainStatsString(world.domain(d)).c_str());
  }

  // 2. Offline training of NMCDR on the pairwise projection.
  ExperimentData data(world.MakePairScenario(0, 1), /*seed=*/7);
  NmcdrConfig config;
  config.hidden_dim = 16;
  auto model = std::make_unique<NmcdrModel>(data.View(), config, 42, 2e-3f);
  TrainConfig train;
  train.min_total_steps = 900;
  train.eval_every = -1;
  train.early_stop_patience = 3;
  Trainer trainer(data.View(), train, &data.full_graph_z(),
                  &data.full_graph_zbar());
  const TrainSummary summary = trainer.Train(model.get());
  std::printf("trained NMCDR for %d epochs (%.1fs)\n", summary.epochs_run,
              summary.train_seconds);

  // 3. Freeze the trained model into an autograd-free serving snapshot:
  // all online traffic below is scored by the ScoreEngine, never by the
  // training graph.
  ModelSnapshot snapshot;
  if (!ModelSnapshot::FreezePair(model.get(), data.scenario(), &snapshot)) {
    std::fprintf(stderr, "freeze failed\n");
    return 1;
  }
  ScoreEngine engine(&snapshot);
  std::printf("frozen snapshot: %d domains, %d persons\n",
              snapshot.num_domains(), snapshot.num_persons());

  // 4. Deploy: 3 groups share traffic for 8 days; the NMCDR group serves
  // from the frozen engine.
  Ranker nmcdr_ranker = [&engine](int domain, int user,
                                  const std::vector<int>& candidates) {
    return engine.ScoreCandidates(domain, user, candidates);
  };
  Rng noise(13);
  Ranker random_ranker = [&noise](int, int, const std::vector<int>& cands) {
    std::vector<float> s(cands.size());
    for (float& v : s) v = static_cast<float>(noise.UniformDouble());
    return s;
  };
  AbTestConfig ab;
  ab.days = 8;
  ab.impressions_per_day_per_domain = 1200;
  const std::vector<GroupResult> results =
      RunAbTest(world,
                {{"Random", random_ranker},
                 {"Control (popularity)", PopularityRanker(world)},
                 {"NMCDR (frozen engine)", nmcdr_ranker}},
                ab);

  TablePrinter table;
  table.SetHeader({"Group", "Loan CVR", "Fund CVR"});
  for (const GroupResult& r : results) {
    table.AddRow({r.name, FormatFloat(r.cvr[0] * 100, 2) + "%",
                  FormatFloat(r.cvr[1] * 100, 2) + "%"});
  }
  std::printf("%s", table.ToString().c_str());

  const ScoreEngine::Counters ab_counters = engine.counters();
  std::printf("engine during A/B test: %lld requests, %lld pairs scored\n",
              static_cast<long long>(ab_counters.requests),
              static_cast<long long>(ab_counters.pairs_scored));

  // 5. Concurrent serving burst: 4 workers drain a queue of top-10
  // retrievals, a third of them cross-domain (Fund users asking for Loan
  // recommendations — cold-start for users without a Loan account).
  InferenceServer::Options server_options;
  server_options.num_threads = 4;
  server_options.max_batch = 8;
  InferenceServer server(&engine, server_options);
  std::vector<std::future<Recommendation>> futures;
  const int burst = 600;
  for (int i = 0; i < burst; ++i) {
    RecRequest request;
    if (i % 3 == 0) {
      request.target_domain = 0;  // Loan recommendations...
      request.user_domain = 1;    // ...for Fund users
      request.user = i % world.NumUsers(1);
    } else {
      request.target_domain = request.user_domain = i % 2;
      request.user = i % world.NumUsers(request.user_domain);
    }
    request.k = 10;
    futures.push_back(server.Submit(request));
  }
  int64_t cold = 0;
  for (auto& future : futures) {
    if (future.get().cold_start) ++cold;
  }
  server.Stop();
  std::printf("\nburst of %d top-10 requests (%lld served cold-start)\n",
              burst, static_cast<long long>(cold));
  std::printf("%s", server.stats().ToString().c_str());
  return 0;
}
