// Overlap-robustness demo (the paper's headline claim): sweep the visible
// overlap ratio K_u and compare NMCDR against a single-domain baseline
// that cannot transfer (LR) and a transfer method that depends on links
// (GA-DTCDR). NMCDR's intra/inter matching keeps transfer alive even when
// almost no identity links remain.
//
//   ./build/examples/overlap_sweep [smoke|small|full]

#include <cstdio>
#include <cstring>

#include "data/presets.h"
#include "train/registry.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace nmcdr;
  RegisterAllModels();

  BenchScale scale = BenchScale::kSmoke;
  if (argc > 1 && std::strcmp(argv[1], "small") == 0) {
    scale = BenchScale::kSmall;
  }
  if (argc > 1 && std::strcmp(argv[1], "full") == 0) scale = BenchScale::kFull;

  const SyntheticScenarioSpec spec = MusicMovieSpec(scale);
  CdrScenario base = GenerateScenario(spec);
  std::printf("scenario %s (%d true overlapping users)\n",
              base.name.c_str(), base.NumOverlapping());

  CommonHyper hyper;
  hyper.embed_dim = 16;
  TrainConfig train;
  train.min_total_steps = scale == BenchScale::kSmoke ? 300 : 1500;
  train.eval_every = -1;
  train.early_stop_patience = 3;
  train.learning_rate = 2e-3f;
  EvalConfig eval;

  TablePrinter table;
  table.SetHeader({"K_u", "Model", "HR@10 Z", "NDCG@10 Z", "HR@10 Z̄",
                   "NDCG@10 Z̄"});
  for (double ratio : {0.001, 0.1, 0.9}) {
    Rng rng(31);
    ExperimentData data(ApplyOverlapRatio(base, ratio, &rng), 7);
    for (const char* model_name : {"LR", "GA-DTCDR", "NMCDR"}) {
      const ExperimentResult result = RunExperiment(
          data, ModelRegistry::Instance().Get(model_name), hyper, train,
          eval);
      table.AddRow({FormatFloat(ratio * 100, 1) + "%", model_name,
                    FormatFloat(result.test.z.hr * 100, 2),
                    FormatFloat(result.test.z.ndcg * 100, 2),
                    FormatFloat(result.test.zbar.hr * 100, 2),
                    FormatFloat(result.test.zbar.ndcg * 100, 2)});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
