// Single-run exploration tool: trains one model on one scenario with a
// verbose validation trace and prints the final test metrics. This is the
// tool behind the hyper-parameter calibration documented in DESIGN.md.
//
//   ./build/examples/model_trace <model|NMCDR-flags> [lr]
//
// The first argument is a registry name (LR, BPR, ..., NMCDR) or
// "NMCDR-<flags>", where flags concatenate any of:
//   noI noC noN noS  — drop intra / inter / complementing / companions
//   obs              — literal Eq. 18 (observed candidates only)
//   w03 / w10        — companion weights 0.3 / 1.0
//   lr5              — learning rate 5e-3
//   h1 / h3          — 1 or 3 encoder layers
//   L2               — 2 stacked intra+inter blocks
//
// Environment:
//   SCEN=mm|cs|lf    — scenario (default Phone-Elec)
//   KU=0.5           — overlap ratio
//   STEPS=4000       — minimum optimizer steps
//   WD=0.001         — weight decay override for baselines (NMCDR_WD)

#include <cstdio>
#include <cstring>
#include <memory>

#include "train/registry.h"
#include "bench/bench_util.h"
#include "core/nmcdr_model.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace nmcdr;
  if (argc < 2) {
    std::fprintf(stderr, "usage: model_trace <model> [lr]\n");
    return 2;
  }
  RegisterAllModels();
  Rng rng(91);
  SyntheticScenarioSpec spec = PhoneElecSpec(BenchScale::kSmall);
  if (const char* sc = std::getenv("SCEN")) {
    const std::string s2(sc);
    if (s2 == "mm") spec = MusicMovieSpec(BenchScale::kSmall);
    if (s2 == "cs") spec = ClothSportSpec(BenchScale::kSmall);
    if (s2 == "lf") spec = LoanFundSpec(BenchScale::kSmall);
  }
  const double ku = std::getenv("KU") ? std::atof(std::getenv("KU")) : 0.5;
  CdrScenario masked = ApplyOverlapRatio(GenerateScenario(spec), ku, &rng);
  ExperimentData data(std::move(masked), 7);

  CommonHyper hyper;
  hyper.embed_dim = 16;
  TrainConfig train;
  train.learning_rate =
      argc > 2 ? static_cast<float>(std::atof(argv[2])) : 2e-3f;
  if (const char* wd = std::getenv("WD")) setenv("NMCDR_WD", wd, 1);
  train.min_total_steps =
      std::getenv("STEPS") ? std::atoi(std::getenv("STEPS")) : 4000;
  train.eval_every = 4;
  train.early_stop_patience = 0;
  train.verbose = true;
  EvalConfig eval;

  std::unique_ptr<RecModel> model;
  if (std::strncmp(argv[1], "NMCDR-", 6) == 0) {
    NmcdrConfig cfg;
    cfg.hidden_dim = 16;
    const std::string flags(argv[1] + 6);
    if (flags.find("noI") != std::string::npos) cfg.use_intra = false;
    if (flags.find("noC") != std::string::npos) cfg.use_inter = false;
    if (flags.find("noN") != std::string::npos) cfg.use_complement = false;
    if (flags.find("noS") != std::string::npos) cfg.use_companion = false;
    if (flags.find("obs") != std::string::npos) {
      cfg.complement_observed_only = true;
    }
    if (flags.find("w03") != std::string::npos) {
      cfg.companion_weights = {0.3f, 0.3f, 0.3f, 0.3f};
    }
    if (flags.find("w10") != std::string::npos) {
      cfg.companion_weights = {1.f, 1.f, 1.f, 1.f};
    }
    if (flags.find("lr5") != std::string::npos) train.learning_rate = 5e-3f;
    if (flags.find("h1") != std::string::npos) cfg.hge_layers = 1;
    if (flags.find("h3") != std::string::npos) cfg.hge_layers = 3;
    if (flags.find("L2") != std::string::npos) cfg.intra_inter_layers = 2;
    model = std::make_unique<NmcdrModel>(data.View(), cfg, hyper.seed,
                                         train.learning_rate);
  } else {
    model = ModelRegistry::Instance().Get(argv[1])(data.View(), hyper,
                                                   train.learning_rate);
  }
  Trainer trainer(data.View(), train, &data.full_graph_z(),
                  &data.full_graph_zbar());
  trainer.Train(model.get());
  const ScenarioMetrics test = EvaluateScenario(
      model.get(), data.full_graph_z(), data.full_graph_zbar(),
      data.split_z(), data.split_zbar(), EvalPhase::kTest, eval);
  std::printf("TEST %s: Z %.2f/%.2f  Zbar %.2f/%.2f\n", argv[1],
              100 * test.z.ndcg, 100 * test.z.hr, 100 * test.zbar.ndcg,
              100 * test.zbar.hr);
  return 0;
}
