// Tail-user analysis (the paper's CH2): trains NMCDR with and without the
// intra node complementing module and reports test metrics separately for
// head users (> K_head train interactions) and tail users, plus the
// head/tail embedding separation per stage (the Fig. 5 statistic).
//
//   ./build/examples/tail_user_analysis

#include <cstdio>

#include "analysis/embedding_stats.h"
#include "core/nmcdr_model.h"
#include "data/presets.h"
#include "train/experiment.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace {

struct GroupMetrics {
  RankingMetrics head;
  RankingMetrics tail;
};

/// Evaluates one domain's test split split by head/tail user group, via
/// the library's grouped-evaluation API.
GroupMetrics EvaluateByGroup(RecModel* model, DomainSide side,
                             const ExperimentData& data, int k_head) {
  const InteractionGraph& train_graph = side == DomainSide::kZ
                                            ? data.train_graph_z()
                                            : data.train_graph_zbar();
  const InteractionGraph& full_graph = side == DomainSide::kZ
                                           ? data.full_graph_z()
                                           : data.full_graph_zbar();
  const DomainSplit& split =
      side == DomainSide::kZ ? data.split_z() : data.split_zbar();
  const std::vector<RankingMetrics> groups = EvaluateRankingGrouped(
      model, side, full_graph, split, EvalPhase::kTest, EvalConfig{},
      [&train_graph, k_head](int user) {
        return train_graph.UserDegree(user) > k_head ? 0 : 1;
      },
      /*num_groups=*/2);
  return GroupMetrics{groups[0], groups[1]};
}

}  // namespace
}  // namespace nmcdr

int main() {
  using namespace nmcdr;
  Rng rng(91);
  ExperimentData data(
      ApplyOverlapRatio(GenerateScenario(ClothSportSpec(BenchScale::kSmoke)),
                        0.5, &rng),
      7);

  TrainConfig train;
  train.min_total_steps = 600;
  train.eval_every = -1;
  train.early_stop_patience = 3;

  TablePrinter table;
  table.SetHeader({"Variant", "Group", "HR@10", "NDCG@10", "users"});
  NmcdrConfig with_inc;
  with_inc.hidden_dim = 16;
  NmcdrConfig without_inc = with_inc;
  without_inc.use_complement = false;

  for (const auto& [label, config] :
       {std::pair<const char*, NmcdrConfig>{"full NMCDR", with_inc},
        std::pair<const char*, NmcdrConfig>{"w/o complementing",
                                            without_inc}}) {
    NmcdrModel model(data.View(), config, 42, 2e-3f);
    Trainer trainer(data.View(), train, &data.full_graph_z(),
                    &data.full_graph_zbar());
    trainer.Train(&model);
    const GroupMetrics groups =
        EvaluateByGroup(&model, DomainSide::kZbar, data, config.k_head);
    table.AddRow({label, "head",
                  FormatFloat(groups.head.hr * 100, 2),
                  FormatFloat(groups.head.ndcg * 100, 2),
                  std::to_string(groups.head.num_users)});
    table.AddRow({label, "tail",
                  FormatFloat(groups.tail.hr * 100, 2),
                  FormatFloat(groups.tail.ndcg * 100, 2),
                  std::to_string(groups.tail.num_users)});
    table.AddSeparator();

    // Fig. 5 statistic: head/tail separation per stage.
    const NmcdrModel::StageReps reps =
        model.ComputeStageReps(DomainSide::kZbar);
    std::vector<bool> is_head(data.scenario().zbar.num_users);
    for (int u = 0; u < data.scenario().zbar.num_users; ++u) {
      is_head[u] = data.train_graph_zbar().UserDegree(u) > config.k_head;
    }
    std::printf("%s — head/tail separation: encoder %.3f -> "
                "intra-to-inter %.3f -> complementing %.3f\n",
                label,
                ComputeHeadTailSeparation(reps.g1, is_head).separation_score,
                ComputeHeadTailSeparation(reps.g3, is_head).separation_score,
                ComputeHeadTailSeparation(reps.g4, is_head).separation_score);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
