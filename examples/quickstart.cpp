// Quickstart: generate a small partially-overlapped two-domain scenario,
// train NMCDR, and print test HR@10 / NDCG@10 for both domains.
//
//   ./build/examples/quickstart [overlap_ratio]
//
// Demonstrates the minimal public-API path: preset -> GenerateScenario ->
// ApplyOverlapRatio -> ExperimentData -> NmcdrModel -> Trainer -> Evaluate.

#include <cstdio>
#include <cstdlib>

#include "core/nmcdr_model.h"
#include "data/presets.h"
#include "train/experiment.h"

int main(int argc, char** argv) {
  using namespace nmcdr;

  double overlap_ratio = 0.5;
  if (argc > 1) overlap_ratio = std::atof(argv[1]);

  // 1. Build a Phone-Elec-shaped synthetic scenario (Table I, row 3).
  const SyntheticScenarioSpec spec = PhoneElecSpec(BenchScale::kSmoke);
  CdrScenario scenario = GenerateScenario(spec);
  std::printf("scenario %s\n  %s\n  %s\n  overlapping users: %d\n",
              scenario.name.c_str(), DomainStatsString(scenario.z).c_str(),
              DomainStatsString(scenario.zbar).c_str(),
              scenario.NumOverlapping());

  // 2. Hide a fraction of the identity links (the paper's K_u knob).
  Rng rng(1);
  scenario = ApplyOverlapRatio(scenario, overlap_ratio, &rng);
  std::printf("  visible overlap at K_u=%.1f%%: %d users\n",
              overlap_ratio * 100.0, scenario.NumOverlapping());

  // 3. Leave-one-out split + train/full interaction graphs.
  ExperimentData data(std::move(scenario), /*seed=*/11);

  // 4. Train NMCDR.
  NmcdrConfig config;
  config.hidden_dim = 16;
  NmcdrModel model(data.View(), config, /*seed=*/42, /*learning_rate=*/1e-3f);

  TrainConfig train_config;
  train_config.epochs = 6;
  train_config.batch_size = 128;
  train_config.verbose = true;
  Trainer trainer(data.View(), train_config, &data.full_graph_z(),
                  &data.full_graph_zbar());
  const TrainSummary summary = trainer.Train(&model);
  std::printf("trained %d epochs in %.1fs (final loss %.4f, %lld params)\n",
              summary.epochs_run, summary.train_seconds, summary.final_loss,
              static_cast<long long>(model.ParameterCount()));

  // 5. Leave-one-out ranking test: 1 positive vs 199 negatives, top-10.
  EvalConfig eval_config;
  const ScenarioMetrics test = EvaluateScenario(
      &model, data.full_graph_z(), data.full_graph_zbar(), data.split_z(),
      data.split_zbar(), EvalPhase::kTest, eval_config);
  std::printf("[%s]  HR@10 %.2f%%  NDCG@10 %.2f%%  (%d users)\n",
              data.scenario().z.name.c_str(), 100.0 * test.z.hr,
              100.0 * test.z.ndcg, test.z.num_users);
  std::printf("[%s]  HR@10 %.2f%%  NDCG@10 %.2f%%  (%d users)\n",
              data.scenario().zbar.name.c_str(), 100.0 * test.zbar.hr,
              100.0 * test.zbar.ndcg, test.zbar.num_users);
  std::printf("stability bound (Eq.31, Z): %.3f\n",
              model.StabilityUpperBound(DomainSide::kZ));
  return 0;
}
